//! The `ds-lint` binary: run the workspace static-analysis pass.
//!
//! ```text
//! ds-lint [--root DIR] [--deny] [--out FILE] [--baseline FILE]
//!         [--update-baseline] [--list-rules]
//! ```
//!
//! Human diagnostics go to stdout as `file:line:col: rule: message`; `--out`
//! additionally writes the byte-stable `ds-lint-report/v1` JSONL artifact.
//! `--deny` compares per-rule counts against the committed baseline
//! (`lint/baseline.json` by default) and exits 1 when any count rises; the
//! counts may only decrease (`--update-baseline` rewrites the file after a
//! burn-down).  Exit code 2 means the pass itself could not run.

use ds_lint::report::{self, Baseline};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    deny: bool,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        deny: false,
        out: None,
        baseline: None,
        update_baseline: false,
        list_rules: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => args.root = Some(PathBuf::from(iter.next().ok_or("--root needs a value")?)),
            "--out" => args.out = Some(PathBuf::from(iter.next().ok_or("--out needs a value")?)),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(
                    iter.next().ok_or("--baseline needs a value")?,
                ));
            }
            "--deny" => args.deny = true,
            "--update-baseline" => args.update_baseline = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                println!(
                    "ds-lint [--root DIR] [--deny] [--out FILE] [--baseline FILE] \
                     [--update-baseline] [--list-rules]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("ds-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        for rule in ds_lint::rules::ALL_RULES {
            println!("{rule}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    let root = match &args.root {
        Some(dir) => dir.clone(),
        None => ds_lint::find_root(&std::env::current_dir().map_err(|e| e.to_string())?)?,
    };
    let outcome = ds_lint::run(&root)?;

    let mut sorted = outcome.findings.clone();
    report::sort_findings(&mut sorted);
    for finding in &sorted {
        println!("{finding}");
    }
    let counts = report::count_by_rule(&sorted);
    println!(
        "# ds-lint: {} files scanned, {} findings in {} rules",
        outcome.files_scanned,
        sorted.len(),
        counts.len()
    );
    for (rule, n) in &counts {
        println!("#   {rule}: {n}");
    }

    if let Some(out) = &args.out {
        let jsonl = report::render_jsonl(&sorted, outcome.files_scanned);
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(out, jsonl).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!("# report: {}", out.display());
    }

    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint").join("baseline.json"));
    if args.update_baseline {
        let baseline = Baseline { counts };
        if let Some(parent) = baseline_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&baseline_path, baseline.render())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!("# baseline updated: {}", baseline_path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline = Baseline::parse(&baseline_text)?;
    let ratchet = report::ratchet(&sorted, &baseline);
    for (rule, live, allowed) in &ratchet.improvements {
        println!(
            "# ratchet: {rule} improved to {live} (baseline {allowed}) — run --update-baseline to lock it in"
        );
    }
    if !ratchet.regressions.is_empty() {
        for (rule, live, allowed) in &ratchet.regressions {
            eprintln!("ds-lint: {rule}: {live} findings exceed the baseline of {allowed}");
        }
        if args.deny {
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}
