//! Findings, the `ds-lint-report/v1` JSONL artifact, and the ratchet
//! baseline.
//!
//! The report is byte-stable: findings are sorted by `(file, line, col,
//! rule)`, paths use `/` separators, and nothing time- or host-dependent is
//! emitted.  The baseline (`lint/baseline.json`) records per-rule violation
//! counts that may only decrease; `--deny` fails when any rule's live count
//! exceeds its baselined count.

use ds_harness::json;
use std::collections::BTreeMap;
use std::fmt;

// These two literals are themselves covered by the `schema-once` invariant:
// the checker references these constants instead of repeating the literals.
/// Version tag carried on every line of the JSONL report.
pub const REPORT_SCHEMA: &str = "ds-lint-report/v1";
/// Version tag of the committed baseline file.
pub const BASELINE_SCHEMA: &str = "ds-lint-baseline/v1";

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule slug (`hot-path-alloc`, `no-panic-in-serve`, …).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators (empty for repo-level
    /// invariant findings that have no single file).
    pub file: String,
    /// 1-based line (0 for file- or repo-level findings).
    pub line: u32,
    /// 1-based column (0 for file- or repo-level findings).
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}: {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}:{}: {}: {}",
                self.file, self.line, self.col, self.rule, self.message
            )
        }
    }
}

/// Sorts findings into report order: `(file, line, col, rule)`.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Per-rule violation counts, ordered by rule slug.
pub fn count_by_rule(findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule.to_string()).or_insert(0) += 1;
    }
    counts
}

/// Renders the `ds-lint-report/v1` JSONL artifact: a header record, one
/// record per finding (sorted), and a trailing per-rule summary record.
pub fn render_jsonl(findings: &[Finding], files_scanned: usize) -> String {
    let mut sorted: Vec<Finding> = findings.to_vec();
    sort_findings(&mut sorted);
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":{},\"kind\":\"header\",\"files_scanned\":{files_scanned},\"findings\":{}}}\n",
        json::quote(REPORT_SCHEMA),
        sorted.len(),
    ));
    for f in &sorted {
        out.push_str(&format!(
            "{{\"schema\":{},\"kind\":\"finding\",\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}\n",
            json::quote(REPORT_SCHEMA),
            json::quote(f.rule),
            json::quote(&f.file),
            f.line,
            f.col,
            json::quote(&f.message),
        ));
    }
    let counts = count_by_rule(&sorted);
    let body: Vec<String> = counts
        .iter()
        .map(|(rule, n)| format!("{}:{n}", json::quote(rule)))
        .collect();
    out.push_str(&format!(
        "{{\"schema\":{},\"kind\":\"summary\",\"counts\":{{{}}}}}\n",
        json::quote(REPORT_SCHEMA),
        body.join(","),
    ));
    out
}

/// The committed ratchet baseline: per-rule counts that may only decrease.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Rule slug → allowed violation count.
    pub counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses `lint/baseline.json`.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a wrong `schema` tag.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = json::parse(text)?;
        let schema = value
            .get("schema")
            .and_then(json::Value::as_str)
            .ok_or("baseline missing \"schema\"")?;
        if schema != BASELINE_SCHEMA {
            return Err(format!(
                "baseline schema is {schema:?}, expected {BASELINE_SCHEMA:?}"
            ));
        }
        let mut counts = BTreeMap::new();
        if let Some(json::Value::Object(entries)) = value.get("counts") {
            for (rule, v) in entries {
                let n = v
                    .as_f64()
                    .ok_or_else(|| format!("baseline count for {rule:?} is not a number"))?;
                if n < 0.0 || n.fract() != 0.0 {
                    return Err(format!("baseline count for {rule:?} is not a whole number"));
                }
                counts.insert(rule.clone(), n as usize);
            }
        } else {
            return Err("baseline missing \"counts\" object".to_string());
        }
        Ok(Baseline { counts })
    }

    /// Renders the baseline file (trailing newline, sorted keys).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": {},\n",
            json::quote(BASELINE_SCHEMA)
        ));
        if self.counts.is_empty() {
            out.push_str("  \"counts\": {}\n}\n");
            return out;
        }
        out.push_str("  \"counts\": {\n");
        let body: Vec<String> = self
            .counts
            .iter()
            .map(|(rule, n)| format!("    {}: {n}", json::quote(rule)))
            .collect();
        out.push_str(&body.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }

    /// The allowed count for a rule (0 when absent).
    pub fn allowed(&self, rule: &str) -> usize {
        self.counts.get(rule).copied().unwrap_or(0)
    }
}

/// Outcome of comparing live counts against the baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Rules whose live count exceeds the baseline: `(rule, live, allowed)`.
    pub regressions: Vec<(String, usize, usize)>,
    /// Rules whose live count undercuts the baseline (the ratchet should be
    /// tightened): `(rule, live, allowed)`.
    pub improvements: Vec<(String, usize, usize)>,
}

/// Compares live findings against the baseline.
pub fn ratchet(findings: &[Finding], baseline: &Baseline) -> RatchetReport {
    let live = count_by_rule(findings);
    let mut report = RatchetReport::default();
    for (rule, &n) in &live {
        let allowed = baseline.allowed(rule);
        if n > allowed {
            report.regressions.push((rule.clone(), n, allowed));
        }
    }
    for (rule, &allowed) in &baseline.counts {
        let n = live.get(rule).copied().unwrap_or(0);
        if n < allowed {
            report.improvements.push((rule.clone(), n, allowed));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips_and_ratchet_cuts_both_ways() {
        let mut baseline = Baseline::default();
        baseline.counts.insert("lock-discipline".to_string(), 2);
        let reparsed = Baseline::parse(&baseline.render()).expect("round trip");
        assert_eq!(reparsed, baseline);

        let finding = |n: u32| Finding {
            rule: "lock-discipline",
            file: "crates/x/src/lib.rs".to_string(),
            line: n,
            col: 1,
            message: "m".to_string(),
        };
        // 3 live vs 2 allowed: regression.
        let r = ratchet(&[finding(1), finding(2), finding(3)], &baseline);
        assert_eq!(r.regressions, [("lock-discipline".to_string(), 3, 2)]);
        assert!(r.improvements.is_empty());
        // 1 live vs 2 allowed: improvement (tighten the ratchet).
        let r = ratchet(&[finding(1)], &baseline);
        assert!(r.regressions.is_empty());
        assert_eq!(r.improvements, [("lock-discipline".to_string(), 1, 2)]);
    }

    #[test]
    fn empty_baseline_renders_compactly_and_parses() {
        let b = Baseline::default();
        assert!(b.render().contains("\"counts\": {}"));
        assert_eq!(Baseline::parse(&b.render()).expect("parse"), b);
    }
}
