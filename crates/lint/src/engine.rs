//! Workspace discovery and the full lint pass.

use crate::invariants::{self, Member};
use crate::lexer;
use crate::report::Finding;
use crate::rules::{self, FileSource};
use std::path::{Path, PathBuf};

/// Everything one lint pass produced.
#[derive(Debug)]
pub struct Outcome {
    /// All findings, unsorted (the report sorts its own copy).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files lexed and rule-checked.
    pub files_scanned: usize,
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
///
/// # Errors
///
/// No ancestor qualifies.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("cannot canonicalize {}: {e}", start.display()))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return Err(format!("no workspace root above {}", start.display())),
        }
    }
}

/// Parses the workspace member list and each member's package name.
///
/// # Errors
///
/// Unreadable root manifest.
pub fn discover_members(root: &Path) -> Result<Vec<Member>, String> {
    let manifest = std::fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("cannot read root Cargo.toml: {e}"))?;
    let mut dirs: Vec<String> = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") && line.contains('[') {
            in_members = true;
            continue;
        }
        if in_members {
            if line.starts_with(']') {
                in_members = false;
                continue;
            }
            let entry = line.trim_matches(|c: char| c == '"' || c == ',' || c.is_whitespace());
            if !entry.is_empty() {
                dirs.push(entry.to_string());
            }
        }
    }
    let mut members = Vec::new();
    for dir in dirs {
        let text = std::fs::read_to_string(root.join(&dir).join("Cargo.toml"))
            .map_err(|e| format!("cannot read {dir}/Cargo.toml: {e}"))?;
        if let Some(name) = package_name(&text) {
            members.push(Member { name, dir });
        }
    }
    // The root manifest also declares the umbrella package.
    if let Some(name) = package_name(&manifest) {
        members.push(Member {
            name,
            dir: ".".to_string(),
        });
    }
    members.sort_by(|a, b| a.dir.cmp(&b.dir));
    Ok(members)
}

fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(value) = line.strip_prefix("name = ") {
                return Some(value.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// All `.rs` files under `dir`, recursively, in sorted order.
pub fn walk_rs(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk_rs_into(dir, &mut out);
    out
}

fn walk_rs_into(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs_into(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Collects and lexes every `src/**/*.rs` of every member (rule scope:
/// production code; integration tests, benches and examples are exempt from
/// rules but still covered by the tokenizer self-test).
///
/// # Errors
///
/// Unreadable source files.
pub fn load_sources(root: &Path, members: &[Member]) -> Result<Vec<FileSource>, String> {
    let mut files = Vec::new();
    for m in members {
        let src = if m.dir == "." {
            root.join("src")
        } else {
            root.join(&m.dir).join("src")
        };
        for path in walk_rs(&src) {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(FileSource {
                path: rel,
                package: m.name.clone(),
                lexed: lexer::lex(&text),
            });
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Runs the complete pass: token rules with waivers, then the repo invariants.
///
/// # Errors
///
/// Workspace discovery or I/O failures (never individual findings).
pub fn run(root: &Path) -> Result<Outcome, String> {
    let members = discover_members(root)?;
    let files = load_sources(root, &members)?;
    let mut findings = Vec::new();
    for file in &files {
        findings.extend(rules::check_file(file));
    }
    findings.extend(invariants::check_schema_once(&files));
    findings.extend(invariants::check_ci_refs(root, &members));
    findings.extend(invariants::check_dep_cycle(root, &members));
    findings.extend(invariants::check_readme_crate_map(root, &members));
    findings.extend(invariants::check_crate_roots(root, &members));
    Ok(Outcome {
        findings,
        files_scanned: files.len(),
    })
}
