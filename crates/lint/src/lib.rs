//! `ds-lint`: the workspace's static-analysis pass.
//!
//! Clippy cannot express repo-specific rules like "no panics on the daemon
//! request path" or "no allocation inside `_in`/`_into` kernels", and the
//! counting allocator in `tests/alloc_regression.rs` only sees the paths the
//! tests happen to exercise.  This crate closes the gap with a hand-rolled
//! Rust lexer (no `syn`, no new dependencies) feeding a small rule engine:
//!
//! * [`rules`] — per-file token rules (`hot-path-alloc`, `no-panic-in-serve`,
//!   `lock-discipline`, `unsafe-safety-comment`) with mandatory-reason inline
//!   waivers;
//! * [`invariants`] — cross-file repo invariants (`schema-once`, `ci-refs`,
//!   `dep-cycle`, `readme-crate-map`);
//! * [`report`] — `ds-lint-report/v1` JSONL output and the
//!   `lint/baseline.json` ratchet (per-rule counts that may only decrease);
//! * [`engine`] — workspace discovery and the full pass.
//!
//! The `ds-lint` binary runs it all; `--deny` (used by CI's `lint-smoke`
//! job) exits nonzero when any rule count rises above the committed baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod invariants;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{find_root, run, Outcome};
pub use report::{Baseline, Finding};
