//! A hand-rolled Rust lexer, just deep enough for reliable rule matching.
//!
//! The token stream is *lossy by design*: rules only need identifier/punct
//! sequences with positions, brace depth, and an `in_test` flag — not a full
//! grammar.  What the lexer must get exactly right is everything that can
//! hide or fake a token:
//!
//! * line comments and **nested** block comments (captured separately, with
//!   positions, so waivers and `// SAFETY:` checks can find them);
//! * string, byte-string, raw-string (`r#"…"#`, any hash count) and raw
//!   byte-string literals;
//! * `'a'` char literals (including `'\''`, `'\u{7FFF}'`) versus `'a` / `'static`
//!   lifetimes;
//! * raw identifiers (`r#fn`);
//! * `#[cfg(test)]`-gated items and `mod tests { … }` regions, which every
//!   rule skips.

/// What a token is; just enough classification for pattern matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `unsafe`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — distinct from char literals.
    Lifetime,
    /// A string / byte-string / raw-string literal (text is the *contents*).
    Str,
    /// A char or byte-char literal.
    Char,
    /// A numeric literal.
    Number,
    /// A single punctuation character (`.`, `!`, `:`, `{`, …).
    Punct,
}

/// One token with its source position and region metadata.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Str`], the literal's contents).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (byte-based).
    pub col: u32,
    /// Brace-nesting depth at the token (before any `{`/`}` effect).
    pub depth: u32,
    /// Whether the token sits inside a `#[cfg(test)]` item or `mod tests`.
    pub in_test: bool,
}

/// A comment, kept out of the token stream but retained for waiver and
/// `// SAFETY:` analysis.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based column the comment starts on.
    pub col: u32,
    /// Comment text without the `//` / `/* */` markers, trimmed.
    pub text: String,
    /// `true` when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The code tokens, in source order.
    pub toks: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes one file.  Unterminated literals/comments are tolerated (the rest of
/// the file is swallowed into the open token) — rules still see everything up
/// to that point, and the self-test flags files that end inside a literal.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    // Stack of brace depths at which a test region was *entered* (the depth
    // just before its opening `{`).  Non-empty ⇒ tokens are test code.
    let mut test_regions: Vec<u32> = Vec::new();
    // Set when `#[cfg(test)]` (or `mod tests`) has been seen and the next
    // block at the current depth belongs to it; cleared by `;` (attribute on
    // a non-block item such as `use`).
    let mut pending_test = false;
    let mut depth: u32 = 0;
    let mut line_has_code = false;
    let mut last_line = 1u32;

    while let Some(b) = cur.peek(0) {
        if cur.line != last_line {
            line_has_code = false;
            last_line = cur.line;
        }
        let (line, col) = (cur.line, cur.col);
        let in_test = !test_regions.is_empty();
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let own_line = !line_has_code;
                cur.bump();
                cur.bump();
                let start = cur.pos;
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = std::str::from_utf8(&cur.bytes[start..cur.pos])
                    .unwrap_or("")
                    .trim()
                    .to_string();
                out.comments.push(Comment {
                    line,
                    col,
                    text,
                    own_line,
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                let own_line = !line_has_code;
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut nest = 1usize;
                while nest > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            nest += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            nest -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let end = cur.pos.saturating_sub(2).max(start);
                let text = std::str::from_utf8(&cur.bytes[start..end])
                    .unwrap_or("")
                    .trim()
                    .to_string();
                out.comments.push(Comment {
                    line,
                    col,
                    text,
                    own_line,
                });
            }
            b'"' => {
                line_has_code = true;
                cur.bump();
                let text = read_string_body(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                    depth,
                    in_test,
                });
            }
            b'\'' => {
                line_has_code = true;
                cur.bump();
                // Lifetime iff `'` + ident-start and the char after the full
                // identifier is not a closing `'`.
                let mut is_lifetime = false;
                if cur.peek(0).is_some_and(is_ident_start) {
                    let mut k = 1usize;
                    while cur.peek(k).is_some_and(is_ident_cont) {
                        k += 1;
                    }
                    is_lifetime = cur.peek(k) != Some(b'\'');
                }
                if is_lifetime {
                    let start = cur.pos;
                    while cur.peek(0).is_some_and(is_ident_cont) {
                        cur.bump();
                    }
                    let text = std::str::from_utf8(&cur.bytes[start..cur.pos])
                        .unwrap_or("")
                        .to_string();
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                        col,
                        depth,
                        in_test,
                    });
                } else {
                    let start = cur.pos;
                    while let Some(c) = cur.peek(0) {
                        if c == b'\\' {
                            cur.bump();
                            cur.bump();
                            continue;
                        }
                        if c == b'\'' {
                            break;
                        }
                        cur.bump();
                    }
                    let text = std::str::from_utf8(&cur.bytes[start..cur.pos])
                        .unwrap_or("")
                        .to_string();
                    cur.bump(); // closing quote
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text,
                        line,
                        col,
                        depth,
                        in_test,
                    });
                }
            }
            _ if is_ident_start(b) => {
                line_has_code = true;
                // Raw strings / raw identifiers / byte strings share the
                // ident-start path: r" r#" br" b" rb is not a thing, r#ident.
                if (b == b'r' || b == b'b') && starts_raw_or_byte_string(&cur) {
                    let (kind, text) = read_prefixed_string(&mut cur);
                    out.toks.push(Tok {
                        kind,
                        text,
                        line,
                        col,
                        depth,
                        in_test,
                    });
                } else if b == b'r'
                    && cur.peek(1) == Some(b'#')
                    && cur.peek(2).is_some_and(is_ident_start)
                {
                    // Raw identifier `r#fn`.
                    cur.bump();
                    cur.bump();
                    let start = cur.pos;
                    while cur.peek(0).is_some_and(is_ident_cont) {
                        cur.bump();
                    }
                    let text = std::str::from_utf8(&cur.bytes[start..cur.pos])
                        .unwrap_or("")
                        .to_string();
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                        col,
                        depth,
                        in_test,
                    });
                } else {
                    let start = cur.pos;
                    while cur.peek(0).is_some_and(is_ident_cont) {
                        cur.bump();
                    }
                    let text = std::str::from_utf8(&cur.bytes[start..cur.pos])
                        .unwrap_or("")
                        .to_string();
                    if text == "mod" && !pending_test {
                        // `mod tests` / `mod test` opens a test region even
                        // without the attribute (the workspace convention).
                        let rest = &cur.bytes[cur.pos..];
                        let name_is_tests =
                            peek_next_ident(rest).is_some_and(|n| n == "tests" || n == "test");
                        if name_is_tests {
                            pending_test = true;
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                        col,
                        depth,
                        in_test,
                    });
                }
            }
            _ if b.is_ascii_digit() => {
                line_has_code = true;
                let start = cur.pos;
                cur.bump();
                while let Some(c) = cur.peek(0) {
                    if is_ident_cont(c) {
                        cur.bump();
                    } else if c == b'.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                        // `1.5` continues the number; `0..n` does not.
                        cur.bump();
                    } else if (c == b'+' || c == b'-')
                        && matches!(cur.bytes.get(cur.pos.wrapping_sub(1)), Some(b'e' | b'E'))
                        && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                    {
                        // Exponent sign: `1e-3`.
                        cur.bump();
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&cur.bytes[start..cur.pos])
                    .unwrap_or("")
                    .to_string();
                out.toks.push(Tok {
                    kind: TokKind::Number,
                    text,
                    line,
                    col,
                    depth,
                    in_test,
                });
            }
            _ => {
                line_has_code = true;
                cur.bump();
                if b == b'{' {
                    if pending_test {
                        test_regions.push(depth);
                        pending_test = false;
                    }
                    depth += 1;
                } else if b == b'}' {
                    depth = depth.saturating_sub(1);
                    if test_regions.last() == Some(&depth) {
                        test_regions.pop();
                    }
                } else if b == b';' && pending_test {
                    // Attribute attached to a block-less item (`use`, …).
                    pending_test = false;
                }
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                    depth,
                    in_test,
                });
                // `#[cfg(test)]` / `#[cfg(all(test, …))]` detection runs on
                // the token tail once the closing `]` arrives.
                if b == b']' && ends_cfg_test_attr(&out.toks) {
                    pending_test = true;
                }
            }
        }
    }
    out
}

/// After a `"`'s been consumed: read the body of a plain (escaped) string.
fn read_string_body(cur: &mut Cursor<'_>) -> String {
    let start = cur.pos;
    while let Some(c) = cur.peek(0) {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        if c == b'"' {
            break;
        }
        cur.bump();
    }
    let text = std::str::from_utf8(&cur.bytes[start..cur.pos])
        .unwrap_or("")
        .to_string();
    cur.bump(); // closing quote
    text
}

/// Does the cursor sit at `r"`, `r#…#"`, `b"`, `br"`, or `br#…#"`?
/// (`r#ident` is excluded: the byte after the hashes must be a quote.)
fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    let (raw, mut k) = match (cur.peek(0), cur.peek(1)) {
        (Some(b'b'), Some(b'r')) => (true, 2),
        (Some(b'b'), _) => (false, 1),
        (Some(b'r'), _) => (true, 1),
        _ => return false,
    };
    if raw {
        while cur.peek(k) == Some(b'#') {
            k += 1;
        }
    }
    cur.peek(k) == Some(b'"')
}

/// Reads `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` after [`starts_raw_or_byte_string`].
fn read_prefixed_string(cur: &mut Cursor<'_>) -> (TokKind, String) {
    let first = cur.bump(); // r or b
    let mut raw = first == Some(b'r');
    if first == Some(b'b') && cur.peek(0) == Some(b'r') {
        cur.bump();
        raw = true;
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        cur.bump();
        hashes += 1;
    }
    cur.bump(); // opening quote
    if !raw {
        // Plain byte string `b"…"`: escape-aware.
        return (TokKind::Str, read_string_body(cur));
    }
    let start = cur.pos;
    let end;
    loop {
        match cur.peek(0) {
            Some(b'"') => {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    end = cur.pos;
                    cur.bump();
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    break;
                }
                cur.bump();
            }
            Some(_) => {
                cur.bump();
            }
            None => {
                end = cur.pos;
                break;
            }
        }
    }
    (
        TokKind::Str,
        std::str::from_utf8(&cur.bytes[start..end])
            .unwrap_or("")
            .to_string(),
    )
}

/// The next identifier in `rest`, skipping only whitespace.
fn peek_next_ident(rest: &[u8]) -> Option<String> {
    let mut k = 0usize;
    while rest.get(k).is_some_and(|b| b.is_ascii_whitespace()) {
        k += 1;
    }
    if !rest.get(k).copied().is_some_and(is_ident_start) {
        return None;
    }
    let start = k;
    while rest.get(k).copied().is_some_and(is_ident_cont) {
        k += 1;
    }
    std::str::from_utf8(&rest[start..k]).ok().map(String::from)
}

/// Whether the token stream ends with `#[cfg(test…)]` (also matching
/// `#[cfg(all(test, …))]` and any form whose first `cfg` argument is `test`).
fn ends_cfg_test_attr(toks: &[Tok]) -> bool {
    // Walk backwards to the matching `#[`, bounded to keep this O(attr len).
    let n = toks.len();
    if n < 6 {
        return false;
    }
    let mut i = n - 1; // the `]`
    let mut bracket = 1i32;
    let mut steps = 0;
    while i > 0 {
        i -= 1;
        steps += 1;
        if steps > 64 {
            return false;
        }
        match (toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct, "]") => bracket += 1,
            (TokKind::Punct, "[") => {
                bracket -= 1;
                if bracket == 0 {
                    break;
                }
            }
            _ => {}
        }
    }
    if i == 0 || toks[i].text != "[" || toks[i - 1].text != "#" {
        return false;
    }
    // Inside: expect `cfg ( … test … )` where `test` appears as a bare ident.
    // `not(test)` / `any(test, …)` do NOT gate the item to test builds, so
    // their presence disqualifies the attribute (conservative: the item is
    // treated as production code and rules keep applying).
    let inner = &toks[i + 1..n - 1];
    if inner.first().map(|t| t.text.as_str()) != Some("cfg") {
        return false;
    }
    if inner
        .iter()
        .any(|t| t.kind == TokKind::Ident && (t.text == "not" || t.text == "any"))
    {
        return false;
    }
    inner
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "test")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents_from_the_token_stream() {
        let lexed = lex(r####"let s = r#"not .unwrap() and not "quote" either"#;"####);
        let strs: Vec<&Tok> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r#"not .unwrap() and not "quote" either"#);
        assert!(!idents(&lexed).contains(&"unwrap"));
        // The statement still terminates: the `;` after the raw string is a token.
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Punct && t.text == ";"));
    }

    #[test]
    fn raw_strings_with_more_hashes_and_byte_strings() {
        let lexed = lex(
            r#####"let a = r##"inner "# quote"##; let b = br"bytes"; let c = b"esc\"aped";"#####,
        );
        let strs: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, [r##"inner "# quote"##, "bytes", "esc\\\"aped"]);
    }

    #[test]
    fn nested_block_comments_swallow_tokens_and_keep_text() {
        let lexed = lex("a /* outer /* inner .unwrap() */ still comment */ b");
        assert_eq!(idents(&lexed), ["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner .unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let esc = '\\''; let s: &'static str = \"\"; }");
        let lifetimes: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        let chars: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
        assert_eq!(chars, ["z", "\\'"]);
    }

    #[test]
    fn cfg_test_regions_mark_tokens_in_test() {
        let src = "fn prod() { a(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b(); }\n}\nfn prod2() { c(); }\n";
        let lexed = lex(src);
        let flag = |name: &str| {
            lexed
                .toks
                .iter()
                .find(|t| ident_is(t, name))
                .map(|t| t.in_test)
        };
        assert_eq!(flag("a"), Some(false));
        assert_eq!(flag("b"), Some(true));
        assert_eq!(flag("c"), Some(false));
    }

    #[test]
    fn cfg_not_test_and_cfg_any_do_not_open_test_regions() {
        let src = "#[cfg(not(test))]\nfn prod() { a(); }\n#[cfg(any(test, feature = \"x\"))]\nfn maybe() { b(); }\n";
        let lexed = lex(src);
        assert!(lexed.toks.iter().all(|t| !t.in_test));
    }

    #[test]
    fn cfg_test_on_blockless_item_does_not_leak_to_the_next_block() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn prod() { a(); }\n";
        let lexed = lex(src);
        let a = lexed.toks.iter().find(|t| ident_is(t, "a")).unwrap();
        assert!(!a.in_test);
    }

    #[test]
    fn mod_tests_without_attribute_opens_a_test_region() {
        let src = "mod tests { fn t() { b(); } }\nfn prod() { c(); }\n";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| ident_is(t, "b")).unwrap();
        let c = lexed.toks.iter().find(|t| ident_is(t, "c")).unwrap();
        assert!(b.in_test);
        assert!(!c.in_test);
    }

    #[test]
    fn own_line_versus_trailing_comments() {
        let src = "    // own line\nlet x = 1; // trailing\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].own_line);
        assert_eq!(lexed.comments[0].text, "own line");
        assert!(!lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].text, "trailing");
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let lexed = lex("for i in 0..n { x = 1.5e-3; }");
        let nums: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "1.5e-3"]);
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let lexed = lex("let r#fn = r#type;");
        assert_eq!(idents(&lexed), ["let", "fn", "type"]);
    }

    fn ident_is(t: &Tok, name: &str) -> bool {
        t.kind == TokKind::Ident && t.text == name
    }
}
