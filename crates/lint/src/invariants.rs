//! Repo-level invariant checks that cut across files: schema strings defined
//! exactly once, CI references that must resolve, an acyclic path-dependency
//! graph, the README crate map, and crate-root `#![forbid(unsafe_code)]`.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::{FileSource, UNSAFE_SAFETY_COMMENT};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Rule slug: each schema version string is defined in exactly one place.
pub const SCHEMA_ONCE: &str = "schema-once";
/// Rule slug: the CI workflow only references tests/bins/packages/paths that exist.
pub const CI_REFS: &str = "ci-refs";
/// Rule slug: the workspace path-dependency graph is acyclic.
pub const DEP_CYCLE: &str = "dep-cycle";
/// Rule slug: every `crates/*` member appears in the README crate map.
pub const README_CRATE_MAP: &str = "readme-crate-map";

/// Crates allowed to contain `unsafe` (they must still `#![deny(unsafe_code)]`
/// at the root and scope each block with `#[allow(unsafe_code)]` + `// SAFETY:`).
pub const UNSAFE_ALLOWLIST: &[&str] = &["ds-serve"];

/// One workspace member, as discovered from the root manifest.
#[derive(Debug, Clone)]
pub struct Member {
    /// Package name (`ds-linalg`).
    pub name: String,
    /// Workspace-relative directory (`crates/linalg`), `.` for the root package.
    pub dir: String,
}

/// The schema version strings whose literal must appear exactly once in
/// non-test code.  Foreign needles are assembled from split literals so this
/// file does not count as a second definition site.
fn schema_needles() -> Vec<(&'static str, String)> {
    vec![
        (
            "check-report",
            concat!("ds-check-report", "/v2").to_string(),
        ),
        ("serve-stats", concat!("ds-serve-stats", "/v1").to_string()),
        ("trace", concat!("ds-trace", "/v1").to_string()),
        (
            "bench-baseline",
            concat!("ds-bench/perf-baseline", "/v2").to_string(),
        ),
        ("lint-report", crate::report::REPORT_SCHEMA.to_string()),
        ("lint-baseline", crate::report::BASELINE_SCHEMA.to_string()),
        // Prometheus metric families: the exported name of each series is an
        // external contract (dashboards, alerts), so like a schema string it
        // must have a single definition site (`ds_obs::metrics::names`).
        (
            "metric-check-seconds",
            concat!("ds_serve_check", "_seconds").to_string(),
        ),
        (
            "metric-queue-wait-seconds",
            concat!("ds_serve_queue_wait", "_seconds").to_string(),
        ),
        (
            "metric-stage-seconds",
            concat!("ds_check_stage", "_seconds").to_string(),
        ),
        (
            "metric-requests-total",
            concat!("ds_serve_requests", "_total").to_string(),
        ),
        (
            "metric-cache-hits-total",
            concat!("ds_serve_cache_hits", "_total").to_string(),
        ),
        (
            "metric-errors-total",
            concat!("ds_serve_errors", "_total").to_string(),
        ),
        (
            "metric-queue-depth",
            concat!("ds_serve_queue", "_depth").to_string(),
        ),
    ]
}

/// `schema-once`: each schema string literal and the `GOLDEN_VERSION` const
/// must have exactly one (non-test) definition site in the workspace.
pub fn check_schema_once(files: &[FileSource]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (label, needle) in schema_needles() {
        let mut sites: Vec<String> = Vec::new();
        for f in files {
            for t in &f.lexed.toks {
                if t.kind == TokKind::Str && !t.in_test && t.text == needle {
                    sites.push(format!("{}:{}", f.path, t.line));
                }
            }
        }
        if sites.len() != 1 {
            out.push(Finding {
                rule: SCHEMA_ONCE,
                file: sites.first().cloned().unwrap_or_default(),
                line: 0,
                col: 0,
                message: format!(
                    "schema string {needle:?} ({label}) has {} non-test definition sites (expected 1): [{}]",
                    sites.len(),
                    sites.join(", ")
                ),
            });
        }
    }
    // `const GOLDEN_VERSION` — the golden-fixture format version.
    let mut sites: Vec<String> = Vec::new();
    for f in files {
        let toks = &f.lexed.toks;
        for i in 0..toks.len() {
            if toks[i].kind == TokKind::Ident
                && toks[i].text == "GOLDEN_VERSION"
                && !toks[i].in_test
                && i > 0
                && toks[i - 1].kind == TokKind::Ident
                && toks[i - 1].text == "const"
            {
                sites.push(format!("{}:{}", f.path, toks[i].line));
            }
        }
    }
    if sites.len() != 1 {
        out.push(Finding {
            rule: SCHEMA_ONCE,
            file: sites.first().cloned().unwrap_or_default(),
            line: 0,
            col: 0,
            message: format!(
                "`const GOLDEN_VERSION` has {} definition sites (expected 1): [{}]",
                sites.len(),
                sites.join(", ")
            ),
        });
    }
    out
}

fn read(root: &Path, rel: &str) -> Option<String> {
    std::fs::read_to_string(root.join(rel)).ok()
}

/// Section-aware scan of a `Cargo.toml`, returning `(package_name, bins,
/// dependency names)` where dependencies are restricted to `[dependencies]` /
/// `[build-dependencies]` entries resolved inside the workspace
/// (dev-dependency cycles are legal in Cargo and are not flagged).
fn parse_manifest(text: &str) -> (Option<String>, Vec<String>, Vec<String>) {
    let mut section = String::new();
    let mut name = None;
    let mut bins = Vec::new();
    let mut deps = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        if let Some(value) = line.strip_prefix("name = ") {
            let value = value.trim_matches('"').to_string();
            match section.as_str() {
                "package" => name = Some(value),
                "bin" => bins.push(value),
                _ => {}
            }
        }
        if matches!(section.as_str(), "dependencies" | "build-dependencies") {
            if let Some(dep) = line.split('=').next() {
                let dep = dep.trim();
                let dep = dep.strip_suffix(".workspace").unwrap_or(dep);
                if !dep.is_empty()
                    && dep
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                {
                    deps.push(dep.to_string());
                }
            }
        }
    }
    (name, bins, deps)
}

/// `dep-cycle`: the `path =` dependency graph over workspace members must be
/// acyclic (checked on `[dependencies]`/`[build-dependencies]` only).
pub fn check_dep_cycle(root: &Path, members: &[Member]) -> Vec<Finding> {
    let names: BTreeSet<&str> = members.iter().map(|m| m.name.as_str()).collect();
    let mut edges: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for m in members {
        let manifest = if m.dir == "." {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", m.dir)
        };
        let Some(text) = read(root, &manifest) else {
            continue;
        };
        let (_, _, deps) = parse_manifest(&text);
        edges.insert(
            m.name.as_str(),
            deps.into_iter()
                .filter(|d| names.contains(d.as_str()))
                .collect(),
        );
    }
    // Iterative DFS with colors; report the first cycle found.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white, 1 grey, 2 black
    fn visit<'a>(
        node: &'a str,
        edges: &'a BTreeMap<&str, Vec<String>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        color.insert(node, 1);
        stack.push(node);
        if let Some(next) = edges.get(node) {
            for dep in next {
                match color.get(dep.as_str()).copied().unwrap_or(0) {
                    1 => {
                        let from = stack.iter().position(|n| *n == dep.as_str()).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            stack[from..].iter().map(|s| s.to_string()).collect();
                        cycle.push(dep.clone());
                        return Some(cycle);
                    }
                    0 => {
                        // Borrow the edge-map's own key so lifetimes line up.
                        let key = edges.keys().find(|k| **k == dep.as_str());
                        if let Some(&key) = key {
                            if let Some(cycle) = visit(key, edges, color, stack) {
                                return Some(cycle);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        stack.pop();
        color.insert(node, 2);
        None
    }
    let keys: Vec<&str> = edges.keys().copied().collect();
    for node in keys {
        if color.get(node).copied().unwrap_or(0) == 0 {
            let mut stack = Vec::new();
            if let Some(cycle) = visit(node, &edges, &mut color, &mut stack) {
                return vec![Finding {
                    rule: DEP_CYCLE,
                    file: "Cargo.toml".to_string(),
                    line: 0,
                    col: 0,
                    message: format!("workspace path-dependency cycle: {}", cycle.join(" -> ")),
                }];
            }
        }
    }
    Vec::new()
}

/// `readme-crate-map`: every `crates/*` member directory must be mentioned in
/// the README (the crate-map table references each as `crates/<name>`).
pub fn check_readme_crate_map(root: &Path, members: &[Member]) -> Vec<Finding> {
    let Some(readme) = read(root, "README.md") else {
        return vec![Finding {
            rule: README_CRATE_MAP,
            file: "README.md".to_string(),
            line: 0,
            col: 0,
            message: "README.md is missing".to_string(),
        }];
    };
    let mut out = Vec::new();
    for m in members {
        if !m.dir.starts_with("crates/") {
            continue;
        }
        if !readme.contains(&m.dir) {
            out.push(Finding {
                rule: README_CRATE_MAP,
                file: "README.md".to_string(),
                line: 0,
                col: 0,
                message: format!(
                    "crate `{}` ({}) is missing from the README crate map",
                    m.name, m.dir
                ),
            });
        }
    }
    out
}

/// `unsafe-safety-comment` (crate-root half): every member's `src/lib.rs`
/// must carry `#![forbid(unsafe_code)]`, except allowlisted crates which may
/// downgrade to `#![deny(unsafe_code)]` (so a module can opt back in with an
/// explicit `#[allow(unsafe_code)]`).
pub fn check_crate_roots(root: &Path, members: &[Member]) -> Vec<Finding> {
    let mut out = Vec::new();
    for m in members {
        let rel = if m.dir == "." {
            "src/lib.rs".to_string()
        } else {
            format!("{}/src/lib.rs", m.dir)
        };
        let Some(text) = read(root, &rel) else {
            continue; // bin-only member; no crate root to police
        };
        let allowlisted = UNSAFE_ALLOWLIST.contains(&m.name.as_str());
        let forbids = text.contains("#![forbid(unsafe_code)]");
        let denies = text.contains("#![deny(unsafe_code)]");
        if allowlisted {
            if !forbids && !denies {
                out.push(Finding {
                    rule: UNSAFE_SAFETY_COMMENT,
                    file: rel,
                    line: 0,
                    col: 0,
                    message: format!(
                        "allowlisted crate `{}` must still `#![deny(unsafe_code)]` at the root",
                        m.name
                    ),
                });
            }
        } else if !forbids {
            out.push(Finding {
                rule: UNSAFE_SAFETY_COMMENT,
                file: rel,
                line: 0,
                col: 0,
                message: format!(
                    "crate `{}` is missing `#![forbid(unsafe_code)]` (only {:?} may contain unsafe)",
                    m.name, UNSAFE_ALLOWLIST
                ),
            });
        }
    }
    out
}

/// `ci-refs`: every `--test` / `--bin` / `--example` / `-p` reference and
/// every repo-relative path mentioned in the CI workflow must exist.
pub fn check_ci_refs(root: &Path, members: &[Member]) -> Vec<Finding> {
    let workflow = ".github/workflows/ci.yml";
    let Some(text) = read(root, workflow) else {
        return vec![Finding {
            rule: CI_REFS,
            file: workflow.to_string(),
            line: 0,
            col: 0,
            message: "CI workflow is missing".to_string(),
        }];
    };

    // Known targets, collected from the manifests and conventional dirs.
    let mut packages: BTreeSet<String> = BTreeSet::new();
    let mut bins: BTreeSet<String> = BTreeSet::new();
    let mut tests: BTreeSet<String> = BTreeSet::new();
    let mut examples: BTreeSet<String> = BTreeSet::new();
    for m in members {
        packages.insert(m.name.clone());
        let dir = if m.dir == "." {
            String::new()
        } else {
            format!("{}/", m.dir)
        };
        let manifest = read(root, &format!("{dir}Cargo.toml")).unwrap_or_default();
        let (_, manifest_bins, _) = parse_manifest(&manifest);
        bins.extend(manifest_bins);
        for (sub, set) in [
            ("src/bin", &mut bins),
            ("tests", &mut tests),
            ("examples", &mut examples),
        ] {
            if let Ok(entries) = std::fs::read_dir(root.join(format!("{dir}{sub}"))) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().is_some_and(|e| e == "rs") {
                        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                            set.insert(stem.to_string());
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut flag: Option<&str> = None;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = (lineno + 1) as u32;
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        for word in trimmed.split_whitespace() {
            let word = word.trim_matches(|c| matches!(c, '"' | '\'' | ';' | '(' | ')'));
            if let Some(prev) = flag.take() {
                let (set, kind): (&BTreeSet<String>, &str) = match prev {
                    "--test" => (&tests, "test"),
                    "--bin" => (&bins, "binary"),
                    "--example" => (&examples, "example"),
                    _ => (&packages, "package"),
                };
                if !set.contains(word) {
                    out.push(Finding {
                        rule: CI_REFS,
                        file: workflow.to_string(),
                        line: lineno,
                        col: 0,
                        message: format!("CI references nonexistent {kind} `{word}`"),
                    });
                }
                continue;
            }
            if matches!(word, "--test" | "--bin" | "--example" | "-p") {
                flag = Some(word);
                continue;
            }
            // Repo-relative path tokens: plain, glob-free, not generated.
            // Requiring a letter excludes shard ratios like `0/2`.
            let pathish = !word.is_empty()
                && word
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '/' | '-'))
                && word.chars().any(|c| c.is_ascii_alphabetic())
                && !word.starts_with('-')
                && !word.starts_with("target/")
                && !word.starts_with('.')
                && (word.contains('/') || word.ends_with(".json"))
                && !word.ends_with('.');
            if pathish && !root.join(word).exists() {
                out.push(Finding {
                    rule: CI_REFS,
                    file: workflow.to_string(),
                    line: lineno,
                    col: 0,
                    message: format!("CI references nonexistent path `{word}`"),
                });
            }
        }
        // `--flag value` pairs never span lines in the workflow.
        flag = None;
    }
    out
}
