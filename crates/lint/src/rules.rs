//! The per-file token rules and the inline-waiver machinery.
//!
//! Every rule skips `#[cfg(test)]` / `mod tests` regions — test code may
//! panic and allocate freely.  Findings can be waived inline:
//!
//! ```text
//! // ds-lint: allow(no-panic-in-serve) -- worker startup, not the request path
//! ```
//!
//! The reason after `--` is mandatory; a reasonless waiver is itself a
//! finding (`waiver-syntax`), as is a waiver that suppresses nothing
//! (`waiver-unused`) — stale waivers would otherwise silently outlive the
//! code they excused.  A waiver on its own line covers the next code line; a
//! trailing waiver covers its own line.

use crate::lexer::{Comment, Lexed, Tok, TokKind};
use crate::report::Finding;

/// Rule slug: allocation inside `_in`/`_into` kernels of `ds-linalg`.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule slug: panicking calls in `ds-serve` / `ds-harness::store`.
pub const NO_PANIC_IN_SERVE: &str = "no-panic-in-serve";
/// Rule slug: `.lock().unwrap()` anywhere in the workspace.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule slug: undocumented `unsafe` blocks / missing crate-root forbids.
pub const UNSAFE_SAFETY_COMMENT: &str = "unsafe-safety-comment";
/// Rule slug: malformed waiver comments.
pub const WAIVER_SYNTAX: &str = "waiver-syntax";
/// Rule slug: waivers that suppressed nothing.
pub const WAIVER_UNUSED: &str = "waiver-unused";

/// Every rule slug ds-lint can emit, for `--list-rules` and waiver validation.
pub const ALL_RULES: &[&str] = &[
    HOT_PATH_ALLOC,
    NO_PANIC_IN_SERVE,
    LOCK_DISCIPLINE,
    UNSAFE_SAFETY_COMMENT,
    WAIVER_SYNTAX,
    WAIVER_UNUSED,
    crate::invariants::SCHEMA_ONCE,
    crate::invariants::CI_REFS,
    crate::invariants::DEP_CYCLE,
    crate::invariants::README_CRATE_MAP,
];

/// One source file ready for rule matching.
#[derive(Debug)]
pub struct FileSource {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Owning package name (`ds-linalg`, …).
    pub package: String,
    /// Token/comment streams.
    pub lexed: Lexed,
}

/// A parsed inline waiver.
#[derive(Debug)]
struct Waiver {
    rules: Vec<String>,
    line: u32,
    col: u32,
    target_line: u32,
    used: bool,
    malformed: Option<String>,
}

fn parse_waivers(lexed: &Lexed) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("ds-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let target_line = if c.own_line {
            // The first code token after the comment line carries the waiver.
            lexed
                .toks
                .iter()
                .find(|t| t.line > c.line)
                .map_or(c.line + 1, |t| t.line)
        } else {
            c.line
        };
        let mut waiver = Waiver {
            rules: Vec::new(),
            line: c.line,
            col: c.col,
            target_line,
            used: false,
            malformed: None,
        };
        let parsed = (|| -> Result<Vec<String>, String> {
            let body = rest
                .strip_prefix("allow(")
                .ok_or("expected `ds-lint: allow(<rule>) -- <reason>`")?;
            let close = body.find(')').ok_or("unclosed `allow(` in waiver")?;
            let rules: Vec<String> = body[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if rules.is_empty() {
                return Err("waiver names no rules".to_string());
            }
            for rule in &rules {
                if !ALL_RULES.contains(&rule.as_str()) {
                    return Err(format!("waiver names unknown rule {rule:?}"));
                }
            }
            let tail = body[close + 1..].trim();
            let reason = tail
                .strip_prefix("--")
                .map(str::trim)
                .ok_or("waiver reason is mandatory: `-- <reason>`")?;
            if reason.is_empty() {
                return Err("waiver reason is empty".to_string());
            }
            Ok(rules)
        })();
        match parsed {
            Ok(rules) => waiver.rules = rules,
            Err(msg) => waiver.malformed = Some(msg),
        }
        waivers.push(waiver);
    }
    waivers
}

/// Runs all token rules over one file and applies its waivers.
pub fn check_file(file: &FileSource) -> Vec<Finding> {
    let mut raw = Vec::new();
    let toks = &file.lexed.toks;

    if file.path.starts_with("crates/linalg/src/") {
        hot_path_alloc(file, toks, &mut raw);
    }
    if file.path.starts_with("crates/serve/src/") || file.path == "crates/harness/src/store.rs" {
        no_panic(file, toks, &mut raw);
    }
    lock_discipline(file, toks, &mut raw);
    unsafe_safety(file, toks, &file.lexed.comments, &mut raw);

    // Waivers: drop findings covered by a well-formed waiver on their line.
    let mut waivers = parse_waivers(&file.lexed);
    let mut kept: Vec<Finding> = Vec::new();
    for finding in raw {
        let mut waived = false;
        for w in &mut waivers {
            if w.malformed.is_none()
                && w.target_line == finding.line
                && w.rules.iter().any(|r| r == finding.rule)
            {
                w.used = true;
                waived = true;
            }
        }
        if !waived {
            kept.push(finding);
        }
    }
    for w in &waivers {
        if let Some(msg) = &w.malformed {
            kept.push(Finding {
                rule: WAIVER_SYNTAX,
                file: file.path.clone(),
                line: w.line,
                col: w.col,
                message: msg.clone(),
            });
        } else if !w.used {
            kept.push(Finding {
                rule: WAIVER_UNUSED,
                file: file.path.clone(),
                line: w.line,
                col: w.col,
                message: format!(
                    "waiver for {} suppressed nothing on line {}",
                    w.rules.join(", "),
                    w.target_line
                ),
            });
        }
    }
    kept
}

fn ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn punct(t: &Tok, ch: char) -> bool {
    t.kind == TokKind::Punct && t.text.len() == 1 && t.text.as_bytes()[0] == ch as u8
}

/// Matches `.name` at `toks[i]` (i.e. `toks[i] == '.'`, `toks[i+1] == name`).
fn dot_call(toks: &[Tok], i: usize, name: &str) -> bool {
    punct(&toks[i], '.') && toks.get(i + 1).is_some_and(|t| ident(t, name))
}

/// Matches `A::b` starting at `toks[i]`.
fn path_call(toks: &[Tok], i: usize, head: &str, tail: &str) -> bool {
    ident(&toks[i], head)
        && toks.get(i + 1).is_some_and(|t| punct(t, ':'))
        && toks.get(i + 2).is_some_and(|t| punct(t, ':'))
        && toks.get(i + 3).is_some_and(|t| ident(t, tail))
}

/// Matches `name!` starting at `toks[i]`.
fn bang_macro(toks: &[Tok], i: usize, name: &str) -> bool {
    ident(&toks[i], name) && toks.get(i + 1).is_some_and(|t| punct(t, '!'))
}

fn finding(rule: &'static str, file: &FileSource, tok: &Tok, message: String) -> Finding {
    Finding {
        rule,
        file: file.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// `hot-path-alloc`: inside the body of any function whose name ends in
/// `_in` / `_into`, the allocating constructs that
/// `tests/alloc_regression.rs` polices dynamically are forbidden statically.
fn hot_path_alloc(file: &FileSource, toks: &[Tok], out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if ident(&toks[i], "fn") && !toks[i].in_test {
            if let Some(name_tok) = toks.get(i + 1) {
                let name = name_tok.text.as_str();
                if name_tok.kind == TokKind::Ident
                    && (name.ends_with("_in") || name.ends_with("_into"))
                {
                    if let Some((body_start, body_end)) = body_span(toks, i + 2) {
                        scan_alloc(file, &toks[body_start..body_end], name, out);
                        i = body_end;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
}

/// Finds the `{ … }` body following a function signature that starts at
/// `from` (just past the name).  Returns token index range of the body, or
/// `None` for a body-less declaration (trait method, `;`-terminated).
fn body_span(toks: &[Tok], from: usize) -> Option<(usize, usize)> {
    let mut paren = 0i32;
    let mut i = from;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'(' => paren += 1,
                b')' => paren -= 1,
                b';' if paren == 0 => return None,
                b'{' if paren == 0 => {
                    // Matching close: count braces.
                    let mut depth = 1i32;
                    let mut j = i + 1;
                    while j < toks.len() && depth > 0 {
                        if punct(&toks[j], '{') {
                            depth += 1;
                        } else if punct(&toks[j], '}') {
                            depth -= 1;
                        }
                        j += 1;
                    }
                    return Some((i + 1, j.saturating_sub(1)));
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

fn scan_alloc(file: &FileSource, body: &[Tok], fn_name: &str, out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.in_test {
            i += 1;
            continue;
        }
        let hit: Option<&str> =
            if path_call(body, i, "Vec", "new") || path_call(body, i, "Vec", "with_capacity") {
                Some("Vec allocation")
            } else if path_call(body, i, "Box", "new") {
                Some("Box::new")
            } else if path_call(body, i, "Matrix", "zeros") {
                Some("Matrix::zeros")
            } else if bang_macro(body, i, "vec") {
                Some("vec! macro")
            } else if bang_macro(body, i, "format") {
                Some("format! macro")
            } else if dot_call(body, i, "to_vec") {
                Some(".to_vec()")
            } else if dot_call(body, i, "collect") {
                Some(".collect()")
            } else if dot_call(body, i, "clone")
                && body.get(i + 2).is_some_and(|t| punct(t, '('))
                && body.get(i + 3).is_some_and(|t| punct(t, ')'))
            {
                Some(".clone()")
            } else if ident(t, "with_capacity") && i > 0 && punct(&body[i - 1], '.') {
                Some(".with_capacity()")
            } else {
                None
            };
        if let Some(what) = hit {
            let at = if punct(t, '.') { &body[i + 1] } else { t };
            out.push(finding(
                HOT_PATH_ALLOC,
                file,
                at,
                format!("{what} inside zero-allocation kernel `{fn_name}`"),
            ));
            i += 2;
            continue;
        }
        i += 1;
    }
}

/// `no-panic-in-serve`: `.unwrap()` / `.expect(` / `panic!` / `unreachable!`
/// (plus `todo!` / `unimplemented!`) forbidden in non-test daemon code.
fn no_panic(file: &FileSource, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        let hit: Option<(&Tok, &str)> = if dot_call(toks, i, "unwrap")
            && toks.get(i + 2).is_some_and(|t| punct(t, '('))
            && toks.get(i + 3).is_some_and(|t| punct(t, ')'))
        {
            Some((&toks[i + 1], ".unwrap() can panic"))
        } else if dot_call(toks, i, "expect") && toks.get(i + 2).is_some_and(|t| punct(t, '(')) {
            Some((&toks[i + 1], ".expect() can panic"))
        } else if bang_macro(toks, i, "panic") {
            Some((t, "panic! in daemon code"))
        } else if bang_macro(toks, i, "unreachable") {
            Some((t, "unreachable! in daemon code"))
        } else if bang_macro(toks, i, "todo") || bang_macro(toks, i, "unimplemented") {
            Some((t, "unfinished-code macro in daemon code"))
        } else {
            None
        };
        if let Some((at, msg)) = hit {
            out.push(finding(NO_PANIC_IN_SERVE, file, at, msg.to_string()));
        }
    }
}

/// `lock-discipline`: `.lock().unwrap()` / `.lock().expect(` forbidden —
/// a panicked holder poisons the mutex and every later lock panics too;
/// use `ds_harness::sync::lock_infallible` instead.
fn lock_discipline(file: &FileSource, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        if dot_call(toks, i, "lock")
            && toks.get(i + 2).is_some_and(|t| punct(t, '('))
            && toks.get(i + 3).is_some_and(|t| punct(t, ')'))
            && toks.get(i + 4).is_some_and(|t| punct(t, '.'))
            && toks
                .get(i + 5)
                .is_some_and(|t| ident(t, "unwrap") || ident(t, "expect"))
        {
            out.push(finding(
                LOCK_DISCIPLINE,
                file,
                &toks[i + 5],
                "poison-intolerant .lock().unwrap(); use ds_harness::sync::lock_infallible"
                    .to_string(),
            ));
        }
    }
}

/// `unsafe-safety-comment` (token half): every `unsafe {` block needs a
/// `// SAFETY:` comment on the same line or within the four lines above it.
fn unsafe_safety(file: &FileSource, toks: &[Tok], comments: &[Comment], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || !ident(t, "unsafe") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| punct(n, '{')) {
            continue; // `unsafe fn` / `unsafe impl` headers document elsewhere
        }
        // Accept `SAFETY:` anywhere in the contiguous comment block ending on
        // the line directly above the `unsafe`, or in a same-line comment.
        let comment_lines: std::collections::HashMap<u32, &str> = comments
            .iter()
            .filter(|c| c.own_line)
            .map(|c| (c.line, c.text.as_str()))
            .collect();
        let mut documented = comments
            .iter()
            .any(|c| c.line == t.line && c.text.contains("SAFETY:"));
        let mut line = t.line.saturating_sub(1);
        while let Some(text) = comment_lines.get(&line) {
            if text.contains("SAFETY:") {
                documented = true;
                break;
            }
            if line == 0 {
                break;
            }
            line -= 1;
        }
        if !documented {
            out.push(finding(
                UNSAFE_SAFETY_COMMENT,
                file,
                t,
                "unsafe block without a preceding `// SAFETY:` comment".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(path: &str, package: &str, src: &str) -> FileSource {
        FileSource {
            path: path.to_string(),
            package: package.to_string(),
            lexed: lex(src),
        }
    }

    #[test]
    fn lock_unwrap_is_flagged_everywhere_but_not_in_tests() {
        let src = "fn f(m: &Mutex<u8>) { let _ = m.lock().unwrap(); }\nmod tests { fn t(m: &Mutex<u8>) { let _ = m.lock().unwrap(); } }\n";
        let findings = check_file(&file("crates/x/src/lib.rs", "ds-x", src));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LOCK_DISCIPLINE);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn own_line_waiver_covers_the_next_code_line_and_is_marked_used() {
        let src = "fn f(m: &Mutex<u8>) {\n    // ds-lint: allow(lock-discipline) -- exercising the waiver path\n    let _ = m.lock().unwrap();\n}\n";
        let findings = check_file(&file("crates/x/src/lib.rs", "ds-x", src));
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src = "fn f(m: &Mutex<u8>) { let _ = m.lock().unwrap(); } // ds-lint: allow(lock-discipline) -- trailing form\n";
        let findings = check_file(&file("crates/x/src/lib.rs", "ds-x", src));
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn reasonless_waiver_is_a_syntax_finding() {
        let src = "// ds-lint: allow(lock-discipline)\nfn f(m: &Mutex<u8>) { let _ = m.lock().unwrap(); }\n";
        let findings = check_file(&file("crates/x/src/lib.rs", "ds-x", src));
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&WAIVER_SYNTAX), "got {rules:?}");
        // The reasonless waiver must NOT suppress the finding it sat above.
        assert!(rules.contains(&LOCK_DISCIPLINE), "got {rules:?}");
    }

    #[test]
    fn unknown_rule_waiver_is_a_syntax_finding() {
        let src = "// ds-lint: allow(no-such-rule) -- why not\nfn f() {}\n";
        let findings = check_file(&file("crates/x/src/lib.rs", "ds-x", src));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, WAIVER_SYNTAX);
        assert!(findings[0].message.contains("no-such-rule"));
    }

    #[test]
    fn unused_waiver_is_flagged() {
        let src = "// ds-lint: allow(lock-discipline) -- nothing here needs it\nfn f() {}\n";
        let findings = check_file(&file("crates/x/src/lib.rs", "ds-x", src));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, WAIVER_UNUSED);
    }

    #[test]
    fn hot_path_alloc_only_fires_in_linalg_kernel_functions() {
        let src = "pub fn solve_in(a: &Matrix) -> f64 { let v = Vec::new(); 0.0 }\npub fn solve(a: &Matrix) -> f64 { let v = Vec::new(); 0.0 }\n";
        let in_linalg = check_file(&file("crates/linalg/src/solve.rs", "ds-linalg", src));
        assert_eq!(in_linalg.len(), 1, "got {in_linalg:?}");
        assert_eq!(in_linalg[0].rule, HOT_PATH_ALLOC);
        assert_eq!(in_linalg[0].line, 1);
        let elsewhere = check_file(&file("crates/core/src/solve.rs", "ds-passivity", src));
        assert!(elsewhere.is_empty());
    }

    #[test]
    fn no_panic_scope_is_serve_and_store_only() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let serve = check_file(&file("crates/serve/src/service.rs", "ds-serve", src));
        assert_eq!(serve.len(), 1);
        assert_eq!(serve[0].rule, NO_PANIC_IN_SERVE);
        let store = check_file(&file("crates/harness/src/store.rs", "ds-harness", src));
        assert_eq!(store.len(), 1);
        let other = check_file(&file("crates/harness/src/sweep.rs", "ds-harness", src));
        assert!(other.is_empty());
    }

    #[test]
    fn unsafe_block_requires_a_safety_comment_but_accepts_multiline_blocks() {
        let bad = "fn f() { unsafe { ffi(); } }\n";
        let findings = check_file(&file("crates/serve/src/x.rs", "ds-serve", bad));
        assert!(findings.iter().any(|f| f.rule == UNSAFE_SAFETY_COMMENT));

        let good = "fn f() {\n    // SAFETY: the pointer outlives the call because the arena\n    // owning it is pinned for the whole program.\n    // (continuation lines are fine too)\n    unsafe { ffi(); }\n}\n";
        let findings = check_file(&file("crates/serve/src/x.rs", "ds-serve", good));
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn panics_inside_strings_do_not_count() {
        let src = "pub fn f() -> &'static str { \"call .unwrap() for fun\" }\n";
        let findings = check_file(&file("crates/serve/src/x.rs", "ds-serve", src));
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }
}
