//! The linter's own conformance suite: lex every `.rs` file in the
//! workspace without falling over, run the full pass twice, and assert the
//! `ds-lint-report/v1` JSONL is byte-identical across runs.

use ds_lint::engine::{discover_members, walk_rs};
use ds_lint::lexer::{lex, TokKind};
use ds_lint::report::render_jsonl;
use ds_lint::{find_root, run};
use std::path::Path;

fn root() -> std::path::PathBuf {
    find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn every_workspace_source_file_lexes_cleanly() {
    let root = root();
    let members = discover_members(&root).expect("workspace members");
    let mut files_seen = 0usize;
    for member in &members {
        let src_dir = root.join(&member.dir).join("src");
        if !src_dir.is_dir() {
            continue;
        }
        for path in walk_rs(&src_dir) {
            let src = std::fs::read_to_string(&path).expect("readable source");
            let lexed = lex(&src);
            files_seen += 1;
            assert!(
                !lexed.toks.is_empty(),
                "{} lexed to zero tokens",
                path.display()
            );
            // Brace depth must balance back to zero: if it does not, a
            // string/comment heuristic swallowed real code somewhere.
            let mut depth: i64 = 0;
            for t in &lexed.toks {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                }
            }
            assert_eq!(
                depth,
                0,
                "unbalanced braces after lexing {}",
                path.display()
            );
            // Positions are sane: 1-based, non-decreasing lines.
            let mut last_line = 0u32;
            for t in &lexed.toks {
                assert!(t.line >= 1 && t.col >= 1);
                assert!(
                    t.line >= last_line,
                    "line went backwards in {}",
                    path.display()
                );
                last_line = t.line;
            }
        }
    }
    assert!(
        files_seen > 50,
        "self-test only saw {files_seen} files — member discovery broke"
    );
}

#[test]
fn full_pass_is_deterministic_and_report_is_byte_stable() {
    let root = root();
    let first = run(&root).expect("first lint pass");
    let second = run(&root).expect("second lint pass");
    assert_eq!(first.files_scanned, second.files_scanned);
    let report_a = render_jsonl(&first.findings, first.files_scanned);
    let report_b = render_jsonl(&second.findings, second.files_scanned);
    assert_eq!(report_a, report_b, "report JSONL must be byte-stable");
    assert!(report_a.starts_with("{\"schema\":\"ds-lint-report/v1\""));
    // Every line is one JSON object; the last is the summary.
    let lines: Vec<&str> = report_a.lines().collect();
    assert!(lines.len() >= 2);
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
    }
    assert!(lines[lines.len() - 1].contains("\"kind\":\"summary\""));
    assert!(lines[0].contains("\"kind\":\"header\""));
}

#[test]
fn the_workspace_is_clean_under_its_own_rules() {
    let root = root();
    let outcome = run(&root).expect("lint pass");
    assert!(
        outcome.findings.is_empty(),
        "the tree must lint clean; found:\n{}",
        outcome
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
