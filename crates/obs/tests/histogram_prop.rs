//! Property tests for the `ds-obs` histogram: sharding a sample stream
//! across any number of histograms and merging them back must yield exactly
//! the quantiles of one histogram fed the concatenated stream, and those
//! quantiles must sit within one bucket width (√2 ratio) of the true
//! sample quantile.

use ds_obs::metrics::Histogram;
use proptest::prelude::*;

/// Deterministic sample stream: xorshift64* mapped onto (0, ~4 s].
fn samples(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let unit =
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
            // Log-uniform over roughly 1 µs .. 4 s.
            1e-6 * 22f64.exp2().powf(unit)
        })
        .collect()
}

fn true_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_shards_quantile_matches_concatenated(
        seed in 1u64..1_000_000,
        n in 1usize..400,
        shards in 1usize..7,
    ) {
        let values = samples(seed, n);
        let all = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, v) in values.iter().enumerate() {
            all.observe(*v);
            parts[i % shards].observe(*v);
        }
        let merged = Histogram::new();
        for part in &parts {
            merged.merge_from(part);
        }
        prop_assert_eq!(merged.snapshot(), all.snapshot());
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.5, 0.9, 0.99] {
            let from_merged = merged.snapshot().quantile(q);
            let from_all = all.snapshot().quantile(q);
            prop_assert_eq!(from_merged, from_all);
            // Reported value is the bucket upper bound: at most one bucket
            // ratio above the true sample quantile, never below it.
            let truth = true_quantile(&sorted, q);
            prop_assert!(
                from_all >= truth * (1.0 - 1e-12),
                "q={} reported {} below true {}", q, from_all, truth
            );
            prop_assert!(
                from_all <= truth * 2f64.sqrt() * (1.0 + 1e-12),
                "q={} reported {} more than one bucket above true {}", q, from_all, truth
            );
        }
    }
}
