//! Atomic metrics: counters, gauges, log-bucketed latency histograms, and a
//! registry that renders the Prometheus text exposition format.
//!
//! Histograms use a fixed geometric bucket ladder (ratio √2, from 1 µs to
//! ~67 s) so two properties hold by construction:
//!
//! * **mergeable** — the buckets of every shard line up, so merging is a
//!   per-bucket add and the quantile of merged shards equals the quantile
//!   of the concatenated samples (pinned by a proptest);
//! * **derivable quantiles** — p50/p90/p99 are an exact function of the
//!   bucket counts (the reported value is the upper bound of the bucket
//!   holding the rank), accurate to one bucket width (√2 ≈ 41 %).
//!
//! Everything is lock-free on the hot path: `observe`/`inc`/`set` are
//! relaxed atomic ops on pre-resolved `Arc` handles; the registry mutex is
//! only taken at registration and exposition time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// The stable metric names exported by the suite.  Each name is defined
/// exactly once here (enforced by the ds-lint `schema-once` invariant) and
/// referenced through these constants everywhere else.
pub mod names {
    /// Histogram: server-side end-to-end `/check` latency in seconds
    /// (queue wait + compute or cache lookup), labelled by nothing.
    pub const CHECK_SECONDS: &str = "ds_serve_check_seconds";
    /// Histogram: time a job spent in the bounded queue before a worker
    /// picked it up, in seconds.
    pub const QUEUE_WAIT_SECONDS: &str = "ds_serve_queue_wait_seconds";
    /// Histogram family: per-stage check-pipeline latency in seconds,
    /// labelled `stage="<name>"` with the [`crate::STAGES`] names.
    pub const STAGE_SECONDS: &str = "ds_check_stage_seconds";
    /// Counter: `/check` requests accepted by the service.
    pub const REQUESTS_TOTAL: &str = "ds_serve_requests_total";
    /// Counter family: cache answers, labelled `tier="memory"|"store"|"coalesced"`.
    pub const CACHE_HITS_TOTAL: &str = "ds_serve_cache_hits_total";
    /// Counter: requests that ended in an error response.
    pub const ERRORS_TOTAL: &str = "ds_serve_errors_total";
    /// Gauge: jobs currently waiting in the bounded queue.
    pub const QUEUE_DEPTH: &str = "ds_serve_queue_depth";
}

/// Number of finite histogram buckets; one overflow slot follows them.
pub const FINITE_BUCKETS: usize = 52;

/// Upper bound, in seconds, of finite bucket `k` (k < [`FINITE_BUCKETS`]):
/// `1e-6 · 2^((k+1)/2)` — a √2 ladder from ~1.41 µs up to ~67 s.
pub fn bucket_bound(k: usize) -> f64 {
    1e-6 * 2f64.powf((k as f64 + 1.0) / 2.0)
}

fn bucket_index(secs: f64) -> usize {
    // NaN and non-positive observations both land in the first bucket.
    if secs.is_nan() || secs <= 0.0 {
        return 0;
    }
    let mut k = 0;
    while k < FINITE_BUCKETS && secs > bucket_bound(k) {
        k += 1;
    }
    k
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-bucketed latency histogram over seconds, safe to share across
/// threads; all updates are relaxed atomic increments.
#[derive(Debug)]
pub struct Histogram {
    // Finite buckets then one overflow slot.
    counts: [AtomicU64; FINITE_BUCKETS + 1],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation of `secs` seconds.  Non-positive and NaN
    /// values land in the first bucket rather than being dropped, so
    /// `count` always equals the number of `observe` calls.
    pub fn observe(&self, secs: f64) {
        let ns = if secs.is_finite() && secs > 0.0 {
            (secs * 1e9).round() as u64
        } else {
            0
        };
        self.counts[bucket_index(secs)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one observation given in integer nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        self.observe(ns as f64 / 1e9);
    }

    /// Folds another histogram's counts into this one (per-bucket add).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current counts (buckets are read
    /// relaxed; counters are monotonic, so quantiles from a snapshot are
    /// always quantiles of *some* recent prefix of the observations).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts: [`FINITE_BUCKETS`] finite slots then overflow.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations in nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (0 < q ≤ 1) in seconds: the upper bound of the
    /// bucket containing the rank-⌈q·count⌉ observation — an exact
    /// function of the bucket counts, so merged shards and concatenated
    /// samples agree bit-for-bit.  Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Overflow bucket reports one rung above the last finite
                // bound — a saturated, finite estimate.
                return bucket_bound(k.min(FINITE_BUCKETS));
            }
        }
        bucket_bound(FINITE_BUCKETS)
    }

    /// [`Self::quantile`] in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) * 1e3
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn exposition_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Key: (family name, rendered label pair or empty).
type Key = (String, String);

#[derive(Default)]
struct Inner {
    families: BTreeMap<String, (Kind, String)>,
    counters: BTreeMap<Key, Arc<Counter>>,
    gauges: BTreeMap<Key, Arc<Gauge>>,
    histograms: BTreeMap<Key, Arc<Histogram>>,
}

/// A registry of named instruments with Prometheus text exposition.
///
/// Instruments are created on first use and shared afterwards: callers
/// resolve an `Arc` handle once and update it lock-free.  A family's kind
/// and help text are fixed by its first registration.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

fn label_key(label: Option<(&str, &str)>) -> String {
    match label {
        None => String::new(),
        Some((k, v)) => format!("{k}=\"{}\"", escape_label(v)),
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter `name` (optionally labelled), created on first use.
    pub fn counter(&self, name: &str, help: &str, label: Option<(&str, &str)>) -> Arc<Counter> {
        let mut inner = lock(&self.inner);
        inner
            .families
            .entry(name.to_string())
            .or_insert((Kind::Counter, help.to_string()));
        inner
            .counters
            .entry((name.to_string(), label_key(label)))
            .or_default()
            .clone()
    }

    /// The gauge `name` (optionally labelled), created on first use.
    pub fn gauge(&self, name: &str, help: &str, label: Option<(&str, &str)>) -> Arc<Gauge> {
        let mut inner = lock(&self.inner);
        inner
            .families
            .entry(name.to_string())
            .or_insert((Kind::Gauge, help.to_string()));
        inner
            .gauges
            .entry((name.to_string(), label_key(label)))
            .or_default()
            .clone()
    }

    /// The histogram `name` (optionally labelled), created on first use.
    pub fn histogram(&self, name: &str, help: &str, label: Option<(&str, &str)>) -> Arc<Histogram> {
        let mut inner = lock(&self.inner);
        inner
            .families
            .entry(name.to_string())
            .or_insert((Kind::Histogram, help.to_string()));
        inner
            .histograms
            .entry((name.to_string(), label_key(label)))
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Renders every registered instrument in the Prometheus text
    /// exposition format (version 0.0.4): `# HELP` / `# TYPE` per family,
    /// then samples sorted by name and label.
    pub fn render_prometheus(&self) -> String {
        let inner = lock(&self.inner);
        let mut out = String::new();
        for (family, (kind, help)) in &inner.families {
            out.push_str(&format!("# HELP {family} {help}\n"));
            out.push_str(&format!("# TYPE {family} {}\n", kind.exposition_name()));
            match kind {
                Kind::Counter => {
                    for ((name, labels), c) in inner.counters.range(family_range(family)) {
                        out.push_str(&sample_line(name, labels, &[], &c.get().to_string()));
                    }
                }
                Kind::Gauge => {
                    for ((name, labels), g) in inner.gauges.range(family_range(family)) {
                        out.push_str(&sample_line(name, labels, &[], &g.get().to_string()));
                    }
                }
                Kind::Histogram => {
                    for ((name, labels), h) in inner.histograms.range(family_range(family)) {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (k, &c) in snap.counts.iter().take(FINITE_BUCKETS).enumerate() {
                            cumulative += c;
                            out.push_str(&sample_line(
                                &format!("{name}_bucket"),
                                labels,
                                &[("le", &format!("{}", bucket_bound(k)))],
                                &cumulative.to_string(),
                            ));
                        }
                        out.push_str(&sample_line(
                            &format!("{name}_bucket"),
                            labels,
                            &[("le", "+Inf")],
                            &snap.count.to_string(),
                        ));
                        out.push_str(&sample_line(
                            &format!("{name}_sum"),
                            labels,
                            &[],
                            &format!("{}", snap.sum_ns as f64 / 1e9),
                        ));
                        out.push_str(&sample_line(
                            &format!("{name}_count"),
                            labels,
                            &[],
                            &snap.count.to_string(),
                        ));
                    }
                }
            }
        }
        out
    }
}

fn family_range(family: &str) -> std::ops::RangeInclusive<Key> {
    (family.to_string(), String::new())..=(family.to_string(), "\u{10FFFF}".to_string())
}

fn sample_line(name: &str, labels: &str, extra: &[(&str, &str)], value: &str) -> String {
    let mut all = String::new();
    if !labels.is_empty() {
        all.push_str(labels);
    }
    for (k, v) in extra {
        if !all.is_empty() {
            all.push(',');
        }
        all.push_str(&format!("{k}=\"{}\"", escape_label(v)));
    }
    if all.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{all}}} {value}\n")
    }
}

/// The process-wide registry backing the `ds-serve` `/metrics` endpoint.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ladder_is_geometric_and_monotone() {
        for k in 1..FINITE_BUCKETS {
            let ratio = bucket_bound(k) / bucket_bound(k - 1);
            assert!((ratio - 2f64.sqrt()).abs() < 1e-12, "ratio {ratio}");
        }
        assert!(bucket_bound(FINITE_BUCKETS - 1) > 60.0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e9), FINITE_BUCKETS);
        // Values at a bound land in that bucket (`<=` boundary).
        assert_eq!(bucket_index(bucket_bound(7)), 7);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0.0);
        for _ in 0..90 {
            h.observe(0.001);
        }
        for _ in 0..10 {
            h.observe(0.1);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        let p50 = snap.quantile(0.5);
        assert!((0.001..0.002).contains(&p50), "p50 {p50}");
        let p99 = snap.quantile(0.99);
        assert!((0.1..0.2).contains(&p99), "p99 {p99}");
        // The p50 bucket bound is within one bucket ratio of the sample.
        assert!(p50 / 0.001 <= 2f64.sqrt() + 1e-9);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..1000u64 {
            let v = 1e-5 * (1.0 + i as f64);
            if i % 2 == 0 { &a } else { &b }.observe(v);
            all.observe(v);
        }
        let merged = Histogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.snapshot(), all.snapshot());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.snapshot().quantile(q), all.snapshot().quantile(q));
        }
    }

    #[test]
    fn registry_renders_valid_exposition() {
        let r = Registry::new();
        r.counter("demo_requests_total", "Requests.", None).add(3);
        r.counter("demo_hits_total", "Hits.", Some(("tier", "memory")))
            .inc();
        r.gauge("demo_depth", "Depth.", None).set(2);
        r.histogram("demo_seconds", "Latency.", Some(("stage", "split")))
            .observe(0.01);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE demo_requests_total counter\n"));
        assert!(text.contains("demo_requests_total 3\n"));
        assert!(text.contains("demo_hits_total{tier=\"memory\"} 1\n"));
        assert!(text.contains("# TYPE demo_depth gauge\n"));
        assert!(text.contains("demo_depth 2\n"));
        assert!(text.contains("# TYPE demo_seconds histogram\n"));
        assert!(text.contains("demo_seconds_bucket{stage=\"split\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("demo_seconds_count{stage=\"split\"} 1\n"));
        // Every sample line parses as `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_part, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name_part.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
        }
        // Same handle comes back for the same (name, label).
        let again = r.counter("demo_requests_total", "ignored", None);
        assert_eq!(again.get(), 3);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("esc_total", "Escapes.", Some(("k", "a\"b\\c\nd")))
            .inc();
        let text = r.render_prometheus();
        assert!(text.contains("esc_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }
}
