//! `ds-obs` — the workspace's observability layer, hand-rolled with zero
//! dependencies (repo convention: the build environment has no registry
//! access).
//!
//! Two halves, both designed for the check pipeline's shape:
//!
//! * [`trace`] — span-based tracing over thread-local span stacks and
//!   [`std::time::Instant`].  Spans are nestable, carry the stable stage
//!   names of [`STAGES`], export to byte-stable `ds-trace/v1` JSONL, and
//!   render as a text flame tree.  Tracing is off by default: until a
//!   thread calls [`trace::begin`], every [`trace::span`] /
//!   [`trace::emit_ns`] is a no-op whose cost is one thread-local read —
//!   library users pay effectively nothing.
//! * [`metrics`] — atomic counters, gauges and log-bucketed latency
//!   histograms (mergeable across threads, p50/p90/p99 derivable exactly
//!   from the bucket counts) in a [`metrics::Registry`] with Prometheus
//!   text exposition.  A process-wide [`metrics::global`] registry backs
//!   the `ds-serve` `/metrics` endpoint.
//!
//! The bench binaries (`perf_baseline`, `stage_profile`) and the daemon
//! both read per-stage cost from the same span path, so "what the bench
//! gates" and "what production reports" can never drift apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

/// The canonical per-check stage names, in pipeline order, with the
/// end-to-end `total` last.  These are the span names the pipeline emits,
/// the row labels of `perf_baseline`/`stage_profile`, the `stage` label
/// values of the `/metrics` stage histograms, and the layout of the
/// volatile per-task stage timings on `SweepRecord` — one list, defined
/// here once.
pub const STAGES: [&str; 8] = [
    "build_phi",
    "impulse",
    "nondynamic",
    "residue",
    "regularize",
    "split",
    "pr_test",
    "total",
];

/// Stage names of the sparse reduce-then-verify path, which run *before* the
/// [`STAGES`] pipeline when a check requests Krylov reduction.  Kept separate
/// from `STAGES` so the per-task stage-timing layout on `SweepRecord` (and
/// every artifact pinned to it) stays eight slots wide; the daemon's stage
/// histograms register both lists.
pub const EXTRA_STAGES: [&str; 2] = ["stamp_sparse", "reduce"];

#[cfg(test)]
mod tests {
    use super::{EXTRA_STAGES, STAGES};

    #[test]
    fn stage_names_are_distinct_and_end_with_total() {
        let set: std::collections::HashSet<&str> = STAGES.iter().copied().collect();
        assert_eq!(set.len(), STAGES.len());
        assert_eq!(STAGES[STAGES.len() - 1], "total");
    }

    #[test]
    fn extra_stage_names_do_not_collide_with_the_pipeline_stages() {
        let set: std::collections::HashSet<&str> =
            STAGES.iter().chain(EXTRA_STAGES.iter()).copied().collect();
        assert_eq!(set.len(), STAGES.len() + EXTRA_STAGES.len());
    }
}
