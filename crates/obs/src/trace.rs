//! Span-based tracing: thread-local span stacks over [`Instant`], a
//! byte-stable `ds-trace/v1` JSONL export, a text flame-tree renderer, a
//! bounded ring of recent traces, and process-unique trace ids.
//!
//! The recorder is opt-in per thread: [`begin`] arms collection on the
//! calling thread, [`end`] disarms it and returns the collected
//! [`Trace`].  While disarmed (the default), [`span`] and [`emit_ns`]
//! cost one thread-local read and allocate nothing, so instrumented
//! library code is effectively free for callers that never trace.
//!
//! # `ds-trace/v1`
//!
//! One JSON object per line, one line per span, integer-nanosecond
//! timestamps (no float formatting → byte-stable across platforms):
//!
//! ```text
//! {"schema":"ds-trace/v1","trace":"<id>","seq":0,"parent":null,"depth":0,"span":"total","start_ns":0,"elapsed_ns":152000}
//! ```
//!
//! `seq` numbers spans in open order, `parent` is the `seq` of the
//! enclosing span (`null` at the root), `depth` its nesting level, and
//! `start_ns` the offset from the trace origin.  Lines are emitted in
//! `seq` order, so parents always precede their children.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// The trace export schema identifier.
pub const TRACE_SCHEMA: &str = "ds-trace/v1";

/// One completed span inside a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Open-order sequence number, unique within the trace.
    pub seq: usize,
    /// `seq` of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Nesting depth (root spans are 0).
    pub depth: usize,
    /// Span name (a [`crate::STAGES`] entry for pipeline stages).
    pub name: String,
    /// Offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub elapsed_ns: u64,
}

/// A completed trace: an id plus its spans in `seq` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The trace id (the daemon echoes it as `X-Trace-Id`).
    pub id: String,
    /// Spans in open (`seq`) order: parents precede children.
    pub spans: Vec<SpanRecord>,
}

fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Trace {
    /// Builds the common flat shape — a root span covering `root_ns` with
    /// one child per `(name, elapsed_ns)` stage laid end to end — used by
    /// `ds-sweep --trace` to export per-task stage timings.
    pub fn from_stage_durations(
        id: &str,
        root: &str,
        root_ns: u64,
        stages: &[(&str, u64)],
    ) -> Trace {
        let mut spans = Vec::with_capacity(stages.len() + 1);
        spans.push(SpanRecord {
            seq: 0,
            parent: None,
            depth: 0,
            name: root.to_string(),
            start_ns: 0,
            elapsed_ns: root_ns,
        });
        let mut cursor = 0u64;
        for (i, (name, ns)) in stages.iter().enumerate() {
            spans.push(SpanRecord {
                seq: i + 1,
                parent: Some(0),
                depth: 1,
                name: (*name).to_string(),
                start_ns: cursor,
                elapsed_ns: *ns,
            });
            cursor = cursor.saturating_add(*ns);
        }
        Trace {
            id: id.to_string(),
            spans,
        }
    }

    /// Renders the trace as `ds-trace/v1` JSONL (one line per span, `seq`
    /// order, trailing newline).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        let id = json_quote(&self.id);
        for s in &self.spans {
            let parent = match s.parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"schema\":\"{TRACE_SCHEMA}\",\"trace\":{id},\"seq\":{},\"parent\":{parent},\"span\":{},\"depth\":{},\"start_ns\":{},\"elapsed_ns\":{}}}\n",
                s.seq,
                json_quote(&s.name),
                s.depth,
                s.start_ns,
                s.elapsed_ns,
            ));
        }
        out
    }

    /// [`Self::render_jsonl`] with `start_ns`/`elapsed_ns` zeroed — the
    /// timestamp-normalized form two identical runs must reproduce
    /// byte-for-byte (pinned by the determinism test).
    pub fn render_jsonl_normalized(&self) -> String {
        let mut zeroed = self.clone();
        for s in &mut zeroed.spans {
            s.start_ns = 0;
            s.elapsed_ns = 0;
        }
        zeroed.render_jsonl()
    }

    /// Total nanoseconds covered by the root spans.
    pub fn root_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.elapsed_ns)
            .sum()
    }
}

struct Collector {
    id: String,
    origin: Instant,
    next_seq: usize,
    open: Vec<usize>,
    spans: Vec<SpanRecord>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Arms span collection on the calling thread under trace id `id`,
/// discarding any trace already in progress there.
pub fn begin(id: &str) {
    COLLECTOR.with(|c| {
        *c.borrow_mut() = Some(Collector {
            id: id.to_string(),
            origin: Instant::now(),
            next_seq: 0,
            open: Vec::new(),
            spans: Vec::new(),
        });
    });
}

/// Disarms collection on the calling thread and returns the trace, if one
/// was armed.  Spans come back in `seq` order.
pub fn end() -> Option<Trace> {
    COLLECTOR.with(|c| c.borrow_mut().take()).map(|collector| {
        let mut spans = collector.spans;
        spans.sort_by_key(|s| s.seq);
        Trace {
            id: collector.id,
            spans,
        }
    })
}

/// Whether the calling thread is currently collecting spans.
pub fn is_active() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// An RAII span: opened by [`span`], closed (and recorded) on drop.
/// Disarmed guards (no active trace at open time) do nothing on drop.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    armed: Option<ArmedSpan>,
}

struct ArmedSpan {
    seq: usize,
    parent: Option<usize>,
    depth: usize,
    name: String,
    start_ns: u64,
    started: Instant,
}

/// Opens a span named `name` on the calling thread.  A no-op returning a
/// disarmed guard unless [`begin`] armed this thread.
pub fn span(name: &str) -> SpanGuard {
    let armed = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let collector = slot.as_mut()?;
        let seq = collector.next_seq;
        collector.next_seq += 1;
        let parent = collector.open.last().copied();
        let depth = collector.open.len();
        collector.open.push(seq);
        Some(ArmedSpan {
            seq,
            parent,
            depth,
            name: name.to_string(),
            start_ns: collector.origin.elapsed().as_nanos() as u64,
            started: Instant::now(),
        })
    });
    SpanGuard { armed }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else {
            return;
        };
        let elapsed_ns = armed.started.elapsed().as_nanos() as u64;
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            let Some(collector) = slot.as_mut() else {
                return; // trace ended while the span was open: drop it
            };
            // Guards drop LIFO in straight-line code; tolerate skews from
            // early `end()` calls by removing this seq wherever it sits.
            collector.open.retain(|&s| s != armed.seq);
            collector.spans.push(SpanRecord {
                seq: armed.seq,
                parent: armed.parent,
                depth: armed.depth,
                name: armed.name,
                start_ns: armed.start_ns,
                elapsed_ns,
            });
        });
    }
}

/// Records a pre-measured span of `elapsed_ns` under the currently open
/// span (used to replay stage timings measured elsewhere onto the trace).
/// A no-op unless [`begin`] armed this thread.
pub fn emit_ns(name: &str, elapsed_ns: u64) {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let Some(collector) = slot.as_mut() else {
            return;
        };
        let seq = collector.next_seq;
        collector.next_seq += 1;
        collector.spans.push(SpanRecord {
            seq,
            parent: collector.open.last().copied(),
            depth: collector.open.len(),
            name: name.to_string(),
            start_ns: collector.origin.elapsed().as_nanos() as u64,
            elapsed_ns,
        });
    });
}

/// A process-unique trace id: 16 lowercase hex chars — a per-process seed
/// salted with the pid and start time, then a sequence number.
pub fn next_trace_id() -> String {
    static SEED: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // FNV-1a style mix of time and pid.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ nanos;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        h ^= u64::from(std::process::id());
        h.wrapping_mul(0x0000_0100_0000_01B3)
    });
    format!(
        "{:08x}{:08x}",
        (seed >> 32) as u32,
        SEQ.fetch_add(1, Ordering::Relaxed) as u32
    )
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bounded ring of recently rendered traces, keyed by trace id — the
/// store behind the daemon's `GET /trace/<id>` endpoint.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<VecDeque<(String, String)>>,
}

impl TraceRing {
    /// A ring holding at most `capacity` traces (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Inserts a rendered trace body under `id`, evicting the oldest
    /// entry when full.
    pub fn insert(&self, id: &str, body: String) {
        let mut ring = lock(&self.inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back((id.to_string(), body));
    }

    /// The rendered body stored under `id`, if still in the ring.
    pub fn get(&self, id: &str) -> Option<String> {
        let ring = lock(&self.inner);
        ring.iter()
            .rev()
            .find(|(k, _)| k == id)
            .map(|(_, body)| body.clone())
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Default)]
struct FlameNode {
    total_ns: u64,
    count: u64,
    children: BTreeMap<String, FlameNode>,
}

/// Renders one or more traces as a sorted text flame tree: siblings are
/// ordered by aggregated time (descending), each line shows the span
/// name, total milliseconds, share of the root total, and hit count; a
/// per-span-name totals table follows.
pub fn render_flame(traces: &[Trace]) -> String {
    let mut root = FlameNode::default();
    let mut by_name: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for trace in traces {
        let by_seq: BTreeMap<usize, &SpanRecord> = trace.spans.iter().map(|s| (s.seq, s)).collect();
        for span in &trace.spans {
            // Path from root to this span via the parent chain.
            let mut path = vec![span.name.as_str()];
            let mut cursor = span.parent;
            while let Some(p) = cursor {
                let Some(parent) = by_seq.get(&p) else { break };
                path.push(parent.name.as_str());
                cursor = parent.parent;
            }
            path.reverse();
            let mut node = &mut root;
            for name in path {
                node = node.children.entry(name.to_string()).or_default();
            }
            node.total_ns = node.total_ns.saturating_add(span.elapsed_ns);
            node.count += 1;
            let entry = by_name.entry(span.name.clone()).or_default();
            entry.0 = entry.0.saturating_add(span.elapsed_ns);
            entry.1 += 1;
        }
    }
    let denom: u64 = root
        .children
        .values()
        .map(|n| n.total_ns)
        .sum::<u64>()
        .max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "flame tree ({} trace{}, root total {:.3} ms)\n",
        traces.len(),
        if traces.len() == 1 { "" } else { "s" },
        denom as f64 / 1e6
    ));
    render_children(&root, 0, denom, &mut out);
    out.push_str("\nper-span totals\n");
    let mut rows: Vec<(&String, &(u64, u64))> = by_name.iter().collect();
    rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(b.0)));
    for (name, (ns, count)) in rows {
        out.push_str(&format!(
            "  {name:<24} {:>12.3} ms {:>6.1}%  n={count}\n",
            *ns as f64 / 1e6,
            100.0 * *ns as f64 / denom as f64,
        ));
    }
    out
}

fn render_children(node: &FlameNode, depth: usize, denom: u64, out: &mut String) {
    let mut kids: Vec<(&String, &FlameNode)> = node.children.iter().collect();
    kids.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| a.0.cmp(b.0)));
    for (name, child) in kids {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{name}");
        out.push_str(&format!(
            "{label:<32} {:>12.3} ms {:>6.1}%  n={}\n",
            child.total_ns as f64 / 1e6,
            100.0 * child.total_ns as f64 / denom as f64,
            child.count
        ));
        render_children(child, depth + 1, denom, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_with_parents_depths_and_seq_order() {
        begin("nest");
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
                emit_ns("leaf", 42);
            }
            let _sibling = span("sibling");
        }
        let trace = end().expect("trace");
        assert!(end().is_none(), "end() disarms");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "leaf", "sibling"]);
        let outer = &trace.spans[0];
        let inner = &trace.spans[1];
        let leaf = &trace.spans[2];
        let sibling = &trace.spans[3];
        assert_eq!((outer.parent, outer.depth), (None, 0));
        assert_eq!((inner.parent, inner.depth), (Some(outer.seq), 1));
        assert_eq!((leaf.parent, leaf.depth), (Some(inner.seq), 2));
        assert_eq!((sibling.parent, sibling.depth), (Some(outer.seq), 1));
        assert_eq!(leaf.elapsed_ns, 42);
        assert!(outer.elapsed_ns >= inner.elapsed_ns);
    }

    #[test]
    fn disarmed_spans_are_noops() {
        assert!(!is_active());
        let _s = span("ignored");
        emit_ns("ignored", 1);
        assert!(end().is_none());
    }

    #[test]
    fn identical_runs_render_byte_identical_normalized_jsonl() {
        let run = || {
            begin("determinism");
            {
                let _a = span("build_phi");
                emit_ns("split", 7);
            }
            end().expect("trace")
        };
        let first = run().render_jsonl_normalized();
        let second = run().render_jsonl_normalized();
        assert_eq!(first, second);
        assert!(first.contains("\"schema\":\"ds-trace/v1\""));
        assert!(first.contains("\"start_ns\":0"));
        assert!(first.contains("\"elapsed_ns\":0"));
    }

    #[test]
    fn jsonl_lines_carry_the_full_schema() {
        let trace =
            Trace::from_stage_durations("tid-1", "total", 10, &[("build_phi", 4), ("split", 6)]);
        let text = trace.render_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"schema\":\"ds-trace/v1\",\"trace\":\"tid-1\",\"seq\":0,\"parent\":null,\
             \"span\":\"total\",\"depth\":0,\"start_ns\":0,\"elapsed_ns\":10}"
        );
        assert_eq!(
            lines[2],
            "{\"schema\":\"ds-trace/v1\",\"trace\":\"tid-1\",\"seq\":2,\"parent\":0,\
             \"span\":\"split\",\"depth\":1,\"start_ns\":4,\"elapsed_ns\":6}"
        );
        assert_eq!(trace.root_ns(), 10);
    }

    #[test]
    fn trace_ids_are_unique_and_well_formed() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let ring = TraceRing::new(2);
        assert!(ring.is_empty());
        ring.insert("a", "A".to_string());
        ring.insert("b", "B".to_string());
        ring.insert("c", "C".to_string());
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.get("a"), None);
        assert_eq!(ring.get("b").as_deref(), Some("B"));
        assert_eq!(ring.get("c").as_deref(), Some("C"));
    }

    #[test]
    fn flame_tree_sorts_by_time_and_reports_shares() {
        let trace = Trace::from_stage_durations(
            "t",
            "total",
            10_000_000,
            &[("fast", 2_000_000), ("slow", 8_000_000)],
        );
        let text = render_flame(&[trace]);
        let slow_at = text.find("slow").expect("slow row");
        let fast_at = text.find("fast").expect("fast row");
        assert!(slow_at < fast_at, "children sorted by time:\n{text}");
        assert!(text.contains("80.0%"), "share column:\n{text}");
        assert!(text.contains("per-span totals"), "{text}");
    }
}
