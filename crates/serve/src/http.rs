//! A minimal, bounded HTTP/1.1 layer over blocking streams.
//!
//! Hand-rolled on purpose: the build environment has no registry access, and
//! the daemon's needs are narrow — parse one request per connection
//! (`Connection: close` semantics), enforce hard limits on every input
//! dimension, and write one response.  Anything outside the envelope maps to
//! a 4xx before any work is scheduled.

use std::io::{BufRead, Write};

/// Hard limit on the request-line length (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Hard limit on a single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Hard limit on the number of headers.
pub const MAX_HEADERS: usize = 64;

/// One parsed request: method, split target, lower-cased headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Target path without the query string.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order.
    pub headers: Vec<(String, String)>,
    /// Raw request body (`Content-Length` framed; no chunked support).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; each variant maps to one status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Malformed request line, header, or framing → 400.
    BadRequest(String),
    /// Declared or actual body size above the configured cap → 413.
    PayloadTooLarge {
        /// The configured cap the request exceeded, in bytes.
        limit: usize,
    },
    /// The peer vanished mid-request; no response can be delivered.
    Disconnected,
}

fn read_line_limited(
    reader: &mut impl BufRead,
    limit: usize,
    what: &str,
) -> Result<String, RequestError> {
    let mut line = Vec::with_capacity(128);
    loop {
        let byte = {
            let buf = reader.fill_buf().map_err(|_| RequestError::Disconnected)?;
            if buf.is_empty() {
                return Err(RequestError::Disconnected);
            }
            buf[0]
        };
        reader.consume(1);
        if byte == b'\n' {
            break;
        }
        line.push(byte);
        if line.len() > limit {
            return Err(RequestError::BadRequest(format!(
                "{what} exceeds {limit} bytes"
            )));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| RequestError::BadRequest(format!("{what} is not UTF-8")))
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// Reads one request from the stream, enforcing all limits.
///
/// # Errors
///
/// [`RequestError::BadRequest`] on any framing violation,
/// [`RequestError::PayloadTooLarge`] when the body exceeds `max_body_bytes`,
/// [`RequestError::Disconnected`] when the peer closes early.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Request, RequestError> {
    let request_line = read_line_limited(reader, MAX_REQUEST_LINE, "request line")?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::BadRequest(format!(
                "malformed request line: '{request_line}'"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::BadRequest(format!(
            "unsupported protocol version '{version}'"
        )));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line_limited(reader, MAX_HEADER_LINE, "header line")?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::BadRequest(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::BadRequest(format!("malformed header: '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| RequestError::BadRequest(format!("bad Content-Length: '{v}'")))?,
        None => 0,
    };
    if content_length > max_body_bytes {
        return Err(RequestError::PayloadTooLarge {
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        let chunk = reader.fill_buf().map_err(|_| RequestError::Disconnected)?;
        if chunk.is_empty() {
            return Err(RequestError::Disconnected);
        }
        let take = chunk.len().min(content_length - filled);
        body[filled..filled + take].copy_from_slice(&chunk[..take]);
        reader.consume(take);
        filled += take;
    }

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// One response: status, extra headers, body.  `Content-Length`,
/// `Content-Type` and `Connection: close` are always emitted.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Additional headers (name, value), written verbatim.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json".to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A response with an explicit content type (Prometheus exposition,
    /// trace JSONL, plain text).
    pub fn text(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: content_type.to_string(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response to the stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying writer.
    pub fn write_to(&self, writer: &mut impl Write) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// Reason phrase for the status codes this daemon emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(text.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_query_and_body() {
        let req = parse(
            "POST /check?method=lmi&repair=true HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/check");
        assert_eq!(req.query_param("method"), Some("lmi"));
        assert_eq!(req.query_param("repair"), Some("true"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse("NONSENSE\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1 extra\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies_by_declared_length() {
        let err = parse("POST /check HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert_eq!(err, RequestError::PayloadTooLarge { limit: 1024 });
    }

    #[test]
    fn rejects_bad_framing() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse("GET /health HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/health");
    }

    #[test]
    fn responses_carry_framing_headers() {
        let mut out = Vec::new();
        Response::json(429, "{}")
            .with_header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn text_responses_carry_their_content_type() {
        let mut out = Vec::new();
        Response::text(200, "text/plain; charset=utf-8", "x 1\n")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; charset=utf-8\r\n"));
        assert!(text.ends_with("\r\n\r\nx 1\n"));
    }
}
