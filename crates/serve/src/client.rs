//! A minimal blocking HTTP/1.1 client for one-shot requests against the
//! daemon — used by the integration tests, the CI smoke job, and the
//! `serve-load` generator.  `Connection: close` semantics only: one request
//! per connection, body read to EOF or `Content-Length`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lower-cased names, in order.
    pub headers: Vec<(String, String)>,
    /// Response body as text.
    pub body: String,
}

impl HttpResponse {
    /// First value of a (lower-case) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Reports connection, I/O and response-framing failures as text.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpResponse, String> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("setting read timeout: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cloning stream: {e}"))?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )
    .map_err(|e| format!("writing request: {e}"))?;
    writer.flush().map_err(|e| format!("flushing: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("reading status line: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: '{}'", status_line.trim_end()))?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }

    let mut body_bytes = Vec::new();
    match content_length {
        Some(n) => {
            body_bytes.resize(n, 0);
            reader
                .read_exact(&mut body_bytes)
                .map_err(|e| format!("reading body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body_bytes)
                .map_err(|e| format!("reading body: {e}"))?;
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body: String::from_utf8_lossy(&body_bytes).into_owned(),
    })
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> Result<HttpResponse, String> {
    request(addr, "GET", path, None)
}

/// `POST path` with a text body.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<HttpResponse, String> {
    request(addr, "POST", path, Some(body))
}
