//! `ds-serve`: the passivity-check daemon.
//!
//! ```console
//! $ cargo run -p ds-serve --release -- --addr 127.0.0.1:7878 --store target/serve-store
//! ds-serve listening on http://127.0.0.1:7878
//! ```
//!
//! Options:
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7878`; port 0
//!   picks an ephemeral port, printed on the ready line);
//! * `--workers N` — worker-pool size (default: available parallelism);
//! * `--queue N` — bounded queue capacity, beyond which `/check` answers
//!   429 (default 64);
//! * `--cache N` — in-memory LRU capacity in entries (default 1024);
//! * `--store DIR` — persistent result store shared with `ds-sweep`
//!   (default: none — memory-only);
//! * `--max-body BYTES` — request-body cap (default 1 MiB).
//!
//! SIGINT/SIGTERM (or `POST /shutdown`) trigger graceful shutdown: the
//! queue drains, the store segment flushes, and the process exits 0.

use ds_serve::{signal, Server, ServerConfig};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--cache" => {
                config.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--store" => config.store_dir = Some(value("--store")?.into()),
            "--max-body" => {
                config.max_body_bytes = value("--max-body")?
                    .parse()
                    .map_err(|e| format!("--max-body: {e}"))?
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("ds-serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    signal::install_handlers();
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("ds-serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!("ds-serve listening on http://{}", server.local_addr());
    let _ = std::io::stdout().flush();

    while !signal::shutdown_requested() && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("ds-serve: shutting down (draining queue, flushing store)");
    match server.stop() {
        Ok(()) => {
            eprintln!("ds-serve: bye");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("ds-serve: shutdown flush failed: {error}");
            ExitCode::FAILURE
        }
    }
}
