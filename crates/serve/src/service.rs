//! The check service: a bounded job queue, a worker pool, a two-tier verdict
//! cache, and the persistent result store.
//!
//! Every deck check is keyed by the same content fingerprint the sweep
//! engine's result store uses (`family|order|ports|seed|margin|method`, with
//! the canonical deck hash riding in the seed), so the three tiers answer
//! identically:
//!
//! 1. **memory** — an [`LruCache`] of rendered report bodies (`X-Cache: hit`);
//! 2. **store** — the persistent [`ResultStore`] shared with `ds-sweep`
//!    (`X-Cache: hit-store`): verdicts computed by *any* earlier run, or by a
//!    server process since restarted, are replayed without recomputation;
//! 3. **compute** — the unified pipeline (`X-Cache: miss`), through the very
//!    same `run_single` entry point the sweep engine uses, so a served
//!    verdict can never diverge from `ds-sweep --decks`.
//!
//! Identical decks arriving concurrently are *coalesced*: one computes, the
//! rest wait on the in-flight slot and receive the same bytes
//! (`X-Cache: coalesced`).

use crate::cache::LruCache;
use ds_obs::metrics::{names, Counter, Gauge, Histogram};
use ds_obs::trace::TraceRing;
use ds_passivity_suite::harness::json;
use ds_passivity_suite::harness::sync::{lock_infallible, wait_timeout_infallible};
use ds_passivity_suite::harness::{task_fingerprint, Method, ResultStore, SweepRecord, SweepTask};
use ds_passivity_suite::netlist::Deck;
use ds_passivity_suite::{CheckOutcome, PassivityCheck, RepairOutcome, SuiteError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Version tag of the `/stats` response body.
pub const STATS_SCHEMA: &str = "ds-serve-stats/v1";

/// Pending store records are flushed to a segment once this many accumulate
/// (and unconditionally on shutdown).
pub const FLUSH_THRESHOLD: usize = 64;

/// How many recent traces `GET /trace/<id>` can replay before eviction.
pub const TRACE_RING_CAPACITY: usize = 256;

/// One deck check to run.
#[derive(Debug, Clone)]
pub struct CheckJob {
    /// Display name (by convention the canonical hash in hex — names are not
    /// part of the serialized report).
    pub name: String,
    /// The parsed deck.
    pub deck: Deck,
    /// The passivity test to run.
    pub method: Method,
    /// Whether to attempt enforcement on non-passive verdicts.
    pub repair: bool,
    /// Whether to route the check through the sparse-stamp + Krylov
    /// reduction (`?reduce=auto`, with the default [`ReduceSpec`]).
    pub reduce: bool,
}

impl CheckJob {
    /// The store fingerprint of this job — identical to the fingerprint
    /// `ds-sweep --decks` records the same canonical deck under.
    pub fn fingerprint(&self) -> String {
        let scenario =
            ds_passivity_suite::harness::scenario::Scenario::from_deck(&self.name, &self.deck);
        task_fingerprint(&SweepTask {
            scenario,
            method: self.method,
        })
    }

    /// The cache key: the store fingerprint plus the repair and reduce flags
    /// (both change the response body, so each variant caches separately).
    pub fn cache_key(&self) -> String {
        let mut key = self.fingerprint();
        if self.repair {
            key.push_str("|repair");
        }
        if self.reduce {
            key.push_str("|reduce");
        }
        key
    }
}

/// What a submitted job resolves to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckReply {
    /// The verdict report, with the cache tier that answered it
    /// (`"hit"`, `"hit-store"`, `"coalesced"`, or `"miss"`).
    Done {
        /// Serialized report body.
        body: String,
        /// Cache tier slug for the `X-Cache` header.
        cache: &'static str,
    },
    /// The check failed; maps directly to an HTTP status + JSON error body.
    Failed {
        /// HTTP status code.
        status: u16,
        /// JSON error body.
        body: String,
    },
}

/// Why a job could not be accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — the caller should answer 429.
    QueueFull,
    /// The service is shutting down — the caller should answer 503.
    ShuttingDown,
}

struct QueuedJob {
    job: CheckJob,
    fingerprint: String,
    cache_key: String,
    trace_id: String,
    submitted: Instant,
    reply: Sender<CheckReply>,
}

/// A request attached to an identical in-flight computation; it receives the
/// computing job's bytes but keeps its own trace identity.
struct Waiter {
    reply: Sender<CheckReply>,
    trace_id: String,
    submitted: Instant,
}

struct StoreState {
    store: ResultStore,
    pending: Vec<SweepRecord>,
    pending_fingerprints: HashSet<String>,
    flushes: u64,
}

/// Monotone counters exposed on `/stats`.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Total `/check` jobs submitted (all tiers).
    pub checks: AtomicU64,
    /// Answered from the in-memory LRU.
    pub hits_memory: AtomicU64,
    /// Answered from the persistent store.
    pub hits_store: AtomicU64,
    /// Attached to an identical in-flight computation.
    pub coalesced: AtomicU64,
    /// Computed fresh through the pipeline.
    pub computed: AtomicU64,
    /// Rejected with 429 because the queue was full.
    pub rejected: AtomicU64,
    /// Jobs that ended in a pipeline error.
    pub errors: AtomicU64,
    /// Jobs answered 503 because shutdown drained them (workers = 0 only;
    /// with workers the queue is drained by computing, not discarding).
    pub drained: AtomicU64,
}

/// Handles into the process-wide [`ds_obs::metrics::global`] registry; one
/// set per service, but names are shared, so a second service in the same
/// process (tests) accumulates into the same series.
struct Metrics {
    hits_memory: Arc<Counter>,
    hits_store: Arc<Counter>,
    coalesced: Arc<Counter>,
    errors: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    check_seconds: Arc<Histogram>,
    queue_wait_seconds: Arc<Histogram>,
    /// One histogram per [`ds_obs::STAGES`] and [`ds_obs::EXTRA_STAGES`]
    /// entry, labelled `stage=<name>`.
    stage_seconds: Vec<(&'static str, Arc<Histogram>)>,
}

impl Metrics {
    fn register() -> Metrics {
        let reg = ds_obs::metrics::global();
        let hits = |tier: &str| {
            reg.counter(
                names::CACHE_HITS_TOTAL,
                "Checks answered without recomputation, by cache tier",
                Some(("tier", tier)),
            )
        };
        Metrics {
            hits_memory: hits("memory"),
            hits_store: hits("store"),
            coalesced: hits("coalesced"),
            errors: reg.counter(
                names::ERRORS_TOTAL,
                "Checks that ended in a pipeline error or panic",
                None,
            ),
            queue_depth: reg.gauge(
                names::QUEUE_DEPTH,
                "Jobs currently waiting in the bounded check queue",
                None,
            ),
            check_seconds: reg.histogram(
                names::CHECK_SECONDS,
                "Server-side /check latency (parse to reply), seconds",
                None,
            ),
            queue_wait_seconds: reg.histogram(
                names::QUEUE_WAIT_SECONDS,
                "Time jobs spent queued before a worker picked them up, seconds",
                None,
            ),
            stage_seconds: ds_obs::STAGES
                .iter()
                .chain(ds_obs::EXTRA_STAGES.iter())
                .map(|stage| {
                    (
                        *stage,
                        reg.histogram(
                            names::STAGE_SECONDS,
                            "Per-stage pipeline time for computed checks, seconds",
                            Some(("stage", stage)),
                        ),
                    )
                })
                .collect(),
        }
    }
}

struct Inner {
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    queue_capacity: usize,
    workers: usize,
    shutdown: AtomicBool,
    cache: Mutex<LruCache>,
    inflight: Mutex<HashMap<String, Vec<Waiter>>>,
    store: Option<Mutex<StoreState>>,
    stats: ServiceStats,
    metrics: Metrics,
    traces: TraceRing,
}

/// Records a minimal single-span trace for a request answered without a
/// fresh computation (cache tiers), so `GET /trace/<id>` works for every
/// trace id the daemon handed out while it stays in the ring.
fn record_hit_trace(inner: &Inner, trace_id: &str, started: Instant) {
    let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let trace = ds_obs::trace::Trace::from_stage_durations(trace_id, "check", elapsed_ns, &[]);
    inner.traces.insert(trace_id, trace.render_jsonl());
}

/// The worker-pool service behind the daemon's `/check` endpoint.
pub struct CheckService {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A passive verdict needs no perturbation: the repair outcome is a constant,
/// so store-tier hits can answer repair requests for passive decks without
/// recomputation (byte-identical to the fresh path in `pipeline::run_deck`).
fn trivial_repair(passive: bool) -> RepairOutcome {
    RepairOutcome {
        enforced: false,
        resistance: 0.0,
        passive_after: passive,
        reason: String::new(),
    }
}

/// Maps a pipeline error to the HTTP status and JSON body of an error
/// response; parse failures keep their line/column as structured fields.
pub fn error_response(error: &SuiteError) -> (u16, String) {
    let status = match error {
        SuiteError::Parse(_) | SuiteError::InvalidRequest(_) => 400,
        SuiteError::Unsupported(_) => 422,
        _ => 500,
    };
    let mut body = format!(
        "{{\"error\":{},\"kind\":{}",
        json::quote(&error.to_string()),
        json::quote(error.kind())
    );
    if let Some((line, column)) = error.parse_location() {
        body.push_str(&format!(",\"line\":{line},\"column\":{column}"));
    }
    body.push('}');
    (status, body)
}

fn immediate(reply: CheckReply) -> Receiver<CheckReply> {
    let (tx, rx) = channel();
    let _ = tx.send(reply);
    rx
}

impl CheckService {
    /// Starts the worker pool.  `store_dir` opens (or creates) the persistent
    /// result store; `None` runs memory-only.
    ///
    /// # Errors
    ///
    /// Fails when the store directory cannot be opened.
    pub fn start(
        workers: usize,
        queue_capacity: usize,
        cache_capacity: usize,
        store_dir: Option<&std::path::Path>,
    ) -> Result<Self, SuiteError> {
        let store = match store_dir {
            Some(dir) => Some(Mutex::new(StoreState {
                store: ResultStore::open(dir).map_err(SuiteError::Harness)?,
                pending: Vec::new(),
                pending_fingerprints: HashSet::new(),
                flushes: 0,
            })),
            None => None,
        };
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queue_capacity: queue_capacity.max(1),
            workers,
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(LruCache::new(cache_capacity)),
            inflight: Mutex::new(HashMap::new()),
            store,
            stats: ServiceStats::default(),
            metrics: Metrics::register(),
            traces: TraceRing::new(TRACE_RING_CAPACITY),
        });
        let handles = (0..workers)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ds-serve-worker-{index}"))
                    .spawn(move || worker_loop(&inner))
                    // ds-lint: allow(no-panic-in-serve) -- startup-time spawn failure, before any request is accepted
                    .expect("spawning worker thread")
            })
            .collect();
        Ok(CheckService {
            inner,
            workers: Mutex::new(handles),
        })
    }

    /// Submits a job; the reply arrives on the returned channel (immediately
    /// for cache hits).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] (429) when the bounded queue is at
    /// capacity, [`SubmitError::ShuttingDown`] (503) after shutdown began.
    pub fn submit(&self, job: CheckJob) -> Result<Receiver<CheckReply>, SubmitError> {
        self.submit_traced(job, ds_obs::trace::next_trace_id())
    }

    /// [`CheckService::submit`] with a caller-chosen trace id (the daemon
    /// generates one per request and echoes it as `X-Trace-Id`); the
    /// completed check's trace is retrievable from [`CheckService::trace_body`]
    /// while it stays in the bounded ring.
    ///
    /// # Errors
    ///
    /// Same as [`CheckService::submit`].
    pub fn submit_traced(
        &self,
        job: CheckJob,
        trace_id: String,
    ) -> Result<Receiver<CheckReply>, SubmitError> {
        let inner = &self.inner;
        let submitted = Instant::now();
        inner.stats.checks.fetch_add(1, Ordering::Relaxed);
        if inner.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let fingerprint = job.fingerprint();
        let cache_key = job.cache_key();

        // Tier 1: memory.
        if let Some(body) = lock_infallible(&inner.cache).get(&cache_key) {
            inner.stats.hits_memory.fetch_add(1, Ordering::Relaxed);
            inner.metrics.hits_memory.inc();
            record_hit_trace(inner, &trace_id, submitted);
            return Ok(immediate(CheckReply::Done { body, cache: "hit" }));
        }

        // Tier 2: the persistent store.  Repair requests can only be answered
        // here when the stored verdict is passive (no perturbation to
        // compute); non-passive repairs carry enforcement results that the
        // store's record schema does not persist, so they recompute.  Reduce
        // requests bypass the store entirely: its records hold *dense*
        // verdicts under the same fingerprint, and a reduced report carries
        // reduction fields no dense record can replay.
        if let (Some(store), false) = (&inner.store, job.reduce) {
            let state = lock_infallible(store);
            if let Some(record) = state.store.get(&fingerprint) {
                let passive = record.passive;
                let usable = !job.repair || passive == Some(true);
                if usable {
                    let mut outcome = CheckOutcome::from_record(record);
                    if job.repair {
                        outcome.repair = Some(trivial_repair(true));
                    }
                    let body = outcome.report_json();
                    drop(state);
                    lock_infallible(&inner.cache).put(&cache_key, body.clone());
                    inner.stats.hits_store.fetch_add(1, Ordering::Relaxed);
                    inner.metrics.hits_store.inc();
                    record_hit_trace(inner, &trace_id, submitted);
                    return Ok(immediate(CheckReply::Done {
                        body,
                        cache: "hit-store",
                    }));
                }
            }
        }

        // Tier 3: compute, coalescing identical in-flight decks.
        let (tx, rx) = channel();
        {
            let mut inflight = lock_infallible(&inner.inflight);
            if let Some(waiters) = inflight.get_mut(&cache_key) {
                waiters.push(Waiter {
                    reply: tx,
                    trace_id,
                    submitted,
                });
                inner.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                inner.metrics.coalesced.inc();
                return Ok(rx);
            }
            let mut queue = lock_infallible(&inner.queue);
            if queue.len() >= inner.queue_capacity {
                inner.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
            inflight.insert(cache_key.clone(), Vec::new());
            queue.push_back(QueuedJob {
                job,
                fingerprint,
                cache_key,
                trace_id,
                submitted,
                reply: tx,
            });
            inner.metrics.queue_depth.set(queue.len() as i64);
            inner.available.notify_one();
        }
        Ok(rx)
    }

    /// The `ds-trace/v1` JSONL body for a trace id, while it remains in the
    /// bounded ring (capacity [`TRACE_RING_CAPACITY`], oldest evicted first).
    pub fn trace_body(&self, id: &str) -> Option<String> {
        self.inner.traces.get(id)
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: workers finish every queued job, leftovers (when
    /// running with zero workers) are answered 503, and all pending store
    /// records are flushed to a segment with the merged artifacts rewritten.
    ///
    /// # Errors
    ///
    /// Reports store-flush failures (the queue is always drained).
    /// Idempotent: a second call finds nothing left to drain or flush.
    pub fn stop(&self) -> Result<(), SuiteError> {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        let handles: Vec<JoinHandle<()>> = lock_infallible(&self.workers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        // With zero workers the queue may still hold jobs: answer 503.
        let leftovers: Vec<QueuedJob> = lock_infallible(&self.inner.queue).drain(..).collect();
        self.inner.metrics.queue_depth.set(0);
        for queued in leftovers {
            self.inner.stats.drained.fetch_add(1, Ordering::Relaxed);
            lock_infallible(&self.inner.inflight).remove(&queued.cache_key);
            let _ = queued.reply.send(CheckReply::Failed {
                status: 503,
                body: "{\"error\":\"server shutting down\",\"kind\":\"shutdown\"}".to_string(),
            });
        }
        if let Some(store) = &self.inner.store {
            let mut state = lock_infallible(store);
            flush_locked(&mut state).map_err(SuiteError::Harness)?;
            state.store.write_merged().map_err(SuiteError::Harness)?;
        }
        Ok(())
    }

    /// The store segments flushed so far (for observability and tests).
    pub fn store_dir(&self) -> Option<PathBuf> {
        self.inner
            .store
            .as_ref()
            .map(|s| lock_infallible(s).store.dir().to_path_buf())
    }

    /// Renders the `/stats` body: the `ds-serve-stats/v1` counters, plus a
    /// compatibly-added `check_latency_ms` object with the server-side
    /// latency quantiles of every `/check` answered so far.
    pub fn stats_json(&self) -> String {
        let inner = &self.inner;
        let stats = &inner.stats;
        let queue_depth = lock_infallible(&inner.queue).len();
        let cache_entries = lock_infallible(&inner.cache).len();
        let store_records = inner.store.as_ref().map(|s| lock_infallible(s).store.len());
        let latency = inner.metrics.check_seconds.snapshot();
        let quantile_ms = |q: f64| {
            if latency.count == 0 {
                0.0
            } else {
                latency.quantile_ms(q)
            }
        };
        format!(
            "{{\"schema\":{},\"checks\":{},\"hits_memory\":{},\"hits_store\":{},\"coalesced\":{},\"computed\":{},\"rejected\":{},\"errors\":{},\"drained\":{},\"queue_depth\":{queue_depth},\"queue_capacity\":{},\"workers\":{},\"cache_entries\":{cache_entries},\"store_records\":{},\"check_latency_ms\":{{\"count\":{},\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3}}}}}",
            json::quote(STATS_SCHEMA),
            stats.checks.load(Ordering::Relaxed),
            stats.hits_memory.load(Ordering::Relaxed),
            stats.hits_store.load(Ordering::Relaxed),
            stats.coalesced.load(Ordering::Relaxed),
            stats.computed.load(Ordering::Relaxed),
            stats.rejected.load(Ordering::Relaxed),
            stats.errors.load(Ordering::Relaxed),
            stats.drained.load(Ordering::Relaxed),
            inner.queue_capacity,
            inner.workers,
            json::opt_usize(store_records),
            latency.count,
            quantile_ms(0.5),
            quantile_ms(0.9),
            quantile_ms(0.99),
        )
    }

    /// Records one server-side `/check` latency observation (the daemon calls
    /// this once per answered request, whatever tier answered it).
    pub fn observe_check_latency(&self, elapsed: Duration) {
        self.inner
            .metrics
            .check_seconds
            .observe(elapsed.as_secs_f64());
    }
}

fn flush_locked(state: &mut StoreState) -> Result<(), String> {
    if state.pending.is_empty() {
        return Ok(());
    }
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos());
    let stamp = format!("{nanos}-{}-{}", std::process::id(), state.flushes);
    state.flushes += 1;
    let pending = std::mem::take(&mut state.pending);
    state.pending_fingerprints.clear();
    state.store.append_segment(&stamp, &pending)?;
    Ok(())
}

fn worker_loop(inner: &Inner) {
    loop {
        let queued = {
            let mut queue = lock_infallible(&inner.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    inner.metrics.queue_depth.set(queue.len() as i64);
                    break job;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) =
                    wait_timeout_infallible(&inner.available, queue, Duration::from_millis(100));
                queue = guard;
            }
        };
        inner
            .metrics
            .queue_wait_seconds
            .observe(queued.submitted.elapsed().as_secs_f64());
        let reply = run_job(inner, &queued);
        let waiters = lock_infallible(&inner.inflight)
            .remove(&queued.cache_key)
            .unwrap_or_default();
        let coalesced_reply = match &reply {
            CheckReply::Done { body, .. } => CheckReply::Done {
                body: body.clone(),
                cache: "coalesced",
            },
            failed => failed.clone(),
        };
        for waiter in waiters {
            record_hit_trace(inner, &waiter.trace_id, waiter.submitted);
            let _ = waiter.reply.send(coalesced_reply.clone());
        }
        let _ = queued.reply.send(reply);
    }
}

/// Test-only panic injection: lets the panic-containment test force a job to
/// panic mid-compute without depending on a pipeline crash.
#[cfg(test)]
fn panic_hook(name: &str) {
    if name == "__ds-serve-test-panic__" {
        panic!("injected test panic");
    }
}

#[cfg(not(test))]
fn panic_hook(_name: &str) {}

fn run_job(inner: &Inner, queued: &QueuedJob) -> CheckReply {
    let job = &queued.job;
    // A panicking check must not take down the worker thread (nor poison any
    // service lock): contain it and answer 500, exactly like a pipeline
    // error.  All service state is locked *after* this point, so an unwind
    // here cannot leave a guard mid-update.
    ds_obs::trace::begin(&queued.trace_id);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        panic_hook(&job.name);
        let mut check = PassivityCheck::deck(&job.name, job.deck.clone())
            .method(job.method)
            .repair(job.repair);
        if job.reduce {
            check = check.reduce(ds_passivity_suite::shh::krylov::ReduceSpec::default());
        }
        check.run()
    }));
    // Close the collector even when the check panicked: span guards were
    // dropped during the unwind, so the trace is complete either way, and a
    // leftover collector must not leak into this worker's next job.
    if let Some(trace) = ds_obs::trace::end() {
        for span in &trace.spans {
            if let Some((_, hist)) = inner
                .metrics
                .stage_seconds
                .iter()
                .find(|(name, _)| *name == span.name)
            {
                hist.observe_ns(span.elapsed_ns);
            }
        }
        inner.traces.insert(&trace.id, trace.render_jsonl());
    }
    let result = match result {
        Ok(result) => result,
        Err(_) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            inner.metrics.errors.inc();
            return CheckReply::Failed {
                status: 500,
                body: "{\"error\":\"check panicked\",\"kind\":\"panic\"}".to_string(),
            };
        }
    };
    match result {
        Ok(outcome) => {
            inner.stats.computed.fetch_add(1, Ordering::Relaxed);
            let body = outcome.report_json();
            if let (Some(store), Some(record)) = (&inner.store, &outcome.record) {
                let mut state = lock_infallible(store);
                if !state.store.contains(&queued.fingerprint)
                    && !state.pending_fingerprints.contains(&queued.fingerprint)
                {
                    state.pending.push(record.clone());
                    state
                        .pending_fingerprints
                        .insert(queued.fingerprint.clone());
                    if state.pending.len() >= FLUSH_THRESHOLD {
                        if let Err(e) = flush_locked(&mut state) {
                            eprintln!("ds-serve: store flush failed: {e}");
                        }
                    }
                }
            }
            lock_infallible(&inner.cache).put(&queued.cache_key, body.clone());
            CheckReply::Done {
                body,
                cache: "miss",
            }
        }
        Err(error) => {
            inner.stats.errors.fetch_add(1, Ordering::Relaxed);
            inner.metrics.errors.inc();
            let (status, body) = error_response(&error);
            CheckReply::Failed { status, body }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_passivity_suite::netlist::parse_deck;

    const DECK: &str = "R1 in mid 2\nL1 mid out 0.5\nC1 out 0 1\nR2 out 0 10\n.port in\n.end\n";

    fn job(method: Method, repair: bool) -> CheckJob {
        let deck = parse_deck(DECK).unwrap();
        CheckJob {
            name: format!("{:016x}", deck.content_hash()),
            deck,
            method,
            repair,
            reduce: false,
        }
    }

    #[test]
    fn fingerprints_match_the_sweep_engine() {
        let job = job(Method::Proposed, false);
        assert!(job.fingerprint().starts_with("deck|"));
        assert!(job.fingerprint().ends_with("|proposed"));
        assert_eq!(job.cache_key(), job.fingerprint());
        let repair = CheckJob {
            repair: true,
            ..job
        };
        assert!(repair.cache_key().ends_with("|repair"));
    }

    #[test]
    fn second_submit_hits_the_memory_cache() {
        let service = CheckService::start(1, 8, 16, None).unwrap();
        let first = service.submit(job(Method::Proposed, false)).unwrap();
        let CheckReply::Done { body, cache } = first.recv().unwrap() else {
            panic!("first check failed");
        };
        assert_eq!(cache, "miss");
        let second = service.submit(job(Method::Proposed, false)).unwrap();
        let CheckReply::Done {
            body: cached,
            cache,
        } = second.recv().unwrap()
        else {
            panic!("second check failed");
        };
        assert_eq!(cache, "hit");
        assert_eq!(cached, body);
        service.stop().unwrap();
    }

    #[test]
    fn zero_workers_fill_the_queue_and_reject() {
        let service = CheckService::start(0, 1, 16, None).unwrap();
        let _queued = service.submit(job(Method::Proposed, false)).unwrap();
        // Identical jobs coalesce instead of queueing, so overflow with a
        // different method.
        let err = service.submit(job(Method::Lmi, false)).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        service.stop().unwrap();
    }

    #[test]
    fn drained_jobs_answer_503() {
        let service = CheckService::start(0, 4, 16, None).unwrap();
        let rx = service.submit(job(Method::Proposed, false)).unwrap();
        service.stop().unwrap();
        let CheckReply::Failed { status, .. } = rx.recv().unwrap() else {
            panic!("drained job should fail");
        };
        assert_eq!(status, 503);
    }

    #[test]
    fn panicking_job_answers_500_and_queue_keeps_serving() {
        let service = CheckService::start(1, 8, 16, None).unwrap();
        // The injected panic unwinds inside the worker; keep its backtrace
        // noise out of the test output.
        let saved_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut poison = job(Method::Proposed, false);
        poison.name = "__ds-serve-test-panic__".to_string();
        let rx = service.submit(poison).unwrap();
        let CheckReply::Failed { status, body } = rx.recv().unwrap() else {
            panic!("panicking job should fail");
        };
        std::panic::set_hook(saved_hook);
        assert_eq!(status, 500);
        assert!(body.contains("\"kind\":\"panic\""));
        // The same worker (there is only one) must still serve new jobs, and
        // no service mutex may be left poisoned.
        let rx = service.submit(job(Method::Proposed, false)).unwrap();
        let CheckReply::Done { cache, .. } = rx.recv().unwrap() else {
            panic!("check after a panicked job failed");
        };
        assert_eq!(cache, "miss");
        assert_eq!(service.inner.stats.errors.load(Ordering::Relaxed), 1);
        service.stop().unwrap();
    }

    #[test]
    fn computed_checks_leave_a_stage_trace_in_the_ring() {
        let service = CheckService::start(1, 8, 16, None).unwrap();
        let rx = service
            .submit_traced(job(Method::Proposed, false), "trace-ring-miss".to_string())
            .unwrap();
        let CheckReply::Done { cache, .. } = rx.recv().unwrap() else {
            panic!("computed check failed");
        };
        assert_eq!(cache, "miss");
        let body = service.trace_body("trace-ring-miss").unwrap();
        for stage in ds_obs::STAGES {
            assert!(
                body.contains(&format!("\"span\":\"{stage}\"")),
                "trace is missing stage '{stage}': {body}"
            );
        }
        assert!(body.contains("\"span\":\"check\""));

        // A memory hit records a minimal single-span trace under its own id.
        let rx = service
            .submit_traced(job(Method::Proposed, false), "trace-ring-hit".to_string())
            .unwrap();
        let CheckReply::Done { cache, .. } = rx.recv().unwrap() else {
            panic!("cached check failed");
        };
        assert_eq!(cache, "hit");
        let hit = service.trace_body("trace-ring-hit").unwrap();
        assert!(hit.contains("\"span\":\"check\""));
        assert!(!hit.contains("\"span\":\"total\""));
        service.stop().unwrap();
    }

    #[test]
    fn reduce_jobs_compute_reduced_reports_and_cache_separately() {
        let service = CheckService::start(1, 8, 16, None).unwrap();
        let mut reduce = job(Method::Proposed, false);
        reduce.reduce = true;
        assert!(reduce.cache_key().ends_with("|reduce"));
        let rx = service.submit(reduce.clone()).unwrap();
        let CheckReply::Done { body, cache } = rx.recv().unwrap() else {
            panic!("reduce check failed");
        };
        assert_eq!(cache, "miss");
        // Order 4 passes through the projection exactly.
        assert!(body.contains("\"reduced_order\":4"), "{body}");
        assert!(body.contains("\"passive\":true"), "{body}");
        // The dense variant of the same deck computes (and caches) separately.
        let rx = service.submit(job(Method::Proposed, false)).unwrap();
        let CheckReply::Done { body: dense, cache } = rx.recv().unwrap() else {
            panic!("dense check failed");
        };
        assert_eq!(cache, "miss");
        assert!(dense.contains("\"reduced_order\":null"), "{dense}");
        // A repeated reduce request is a memory hit with identical bytes.
        let rx = service.submit(reduce).unwrap();
        let CheckReply::Done { body: again, cache } = rx.recv().unwrap() else {
            panic!("cached reduce check failed");
        };
        assert_eq!(cache, "hit");
        assert_eq!(again, body);
        service.stop().unwrap();
    }

    #[test]
    fn stats_carry_server_side_latency_quantiles() {
        let service = CheckService::start(1, 8, 16, None).unwrap();
        service.observe_check_latency(Duration::from_millis(5));
        let stats = service.stats_json();
        assert!(stats.contains("\"check_latency_ms\":{\"count\":"));
        assert!(stats.contains("\"p50\":"));
        assert!(stats.contains("\"p99\":"));
        // The 5 ms observation pushes every quantile off zero (the registry
        // is process-global, so other tests can only add observations).
        assert!(!stats.contains("\"p50\":0.000"));
        service.stop().unwrap();
    }

    #[test]
    fn error_responses_carry_parse_positions() {
        let err = SuiteError::from(ds_passivity_suite::netlist::ParseError::new(3, 7, "boom"));
        let (status, body) = error_response(&err);
        assert_eq!(status, 400);
        assert!(body.contains("\"kind\":\"parse\""));
        assert!(body.contains("\"line\":3"));
        assert!(body.contains("\"column\":7"));
    }
}
