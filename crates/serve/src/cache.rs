//! A small in-memory LRU for rendered verdict reports — the hot tier in
//! front of the persistent result store.
//!
//! Keys are cache fingerprints (store fingerprint plus the repair flag),
//! values are the exact serialized report bodies, so a hit is a pure byte
//! copy: no recomputation, no re-serialization, byte-identical to the miss
//! that filled it.
//!
//! Recency is a monotone tick per entry; eviction scans for the minimum.
//! That is O(capacity), which at the daemon's cache sizes (hundreds to a few
//! thousand entries) is cheaper and far simpler than an intrusive list —
//! eviction only happens on insert after the cache is full.

use std::collections::HashMap;

/// Least-recently-used map from fingerprint to serialized report body.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (u64, String)>,
}

impl LruCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a body and marks it most-recently used.
    pub fn get(&mut self, key: &str) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|entry| {
            entry.0 = tick;
            entry.1.clone()
        })
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used one
    /// when full.
    pub fn put(&mut self, key: &str, value: String) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key.to_string(), (self.tick, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_the_least_recently_used_entry() {
        let mut cache = LruCache::new(2);
        cache.put("a", "A".into());
        cache.put("b", "B".into());
        assert_eq!(cache.get("a"), Some("A".into())); // refresh a
        cache.put("c", "C".into()); // evicts b
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some("A".into()));
        assert_eq!(cache.get("c"), Some("C".into()));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsertion_refreshes_instead_of_evicting() {
        let mut cache = LruCache::new(2);
        cache.put("a", "A".into());
        cache.put("b", "B".into());
        cache.put("a", "A2".into());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), Some("A2".into()));
        assert_eq!(cache.get("b"), Some("B".into()));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache = LruCache::new(0);
        cache.put("a", "A".into());
        assert!(cache.is_empty());
        assert_eq!(cache.get("a"), None);
    }
}
