//! The daemon itself: a blocking `TcpListener` accept loop, one thread per
//! connection, work handed to the [`CheckService`] pool.
//!
//! Endpoints:
//!
//! * `GET /health` — liveness probe;
//! * `GET /stats` — cache/queue/worker counters (`ds-serve-stats/v1`) plus
//!   server-side `/check` latency quantiles (`check_latency_ms`);
//! * `GET /metrics` — Prometheus text exposition of the process-wide
//!   registry: request/queue/stage latency histograms, cache-hit counters,
//!   and the queue-depth gauge;
//! * `GET /trace/<id>` — the `ds-trace/v1` span log of a recent check (ids
//!   are handed out per request in the `X-Trace-Id` response header and kept
//!   in a bounded ring);
//! * `POST /check?method=proposed|weierstrass|lmi&repair=true&reduce=auto` —
//!   body is a SPICE deck; answers the `ds-check-report/v2` verdict with
//!   `X-Cache` (tier that answered), `X-Deck-Hash` (full canonical content
//!   hash), and `X-Trace-Id` headers.  `reduce=auto` routes the check through
//!   the sparse-stamp + Krylov reduction (the order-10⁴ path; reduced reports
//!   bypass the store tier).  Malformed decks get a 400 whose body carries
//!   the parser's exact `line`/`column`; a full queue gets 429 +
//!   `Retry-After`.
//! * `POST /shutdown` — request graceful shutdown (same path as SIGTERM).
//!
//! The accept loop polls a shutdown flag (set by `Server::stop`, by
//! `POST /shutdown`, or — in the binary — by SIGINT/SIGTERM), then drains:
//! queued checks finish, pending store records flush as a segment, and the
//! merged artifacts are rewritten, so a restarted server answers every
//! verdict it ever computed from its store tier.

use crate::http::{read_request, Request, RequestError, Response};
use crate::service::{error_response, CheckJob, CheckReply, CheckService, SubmitError};
use ds_obs::metrics::names;
use ds_passivity_suite::harness::json;
use ds_passivity_suite::harness::sync::lock_infallible;
use ds_passivity_suite::harness::Method;
use ds_passivity_suite::netlist::parse_deck;
use ds_passivity_suite::{SuiteError, REPORT_SCHEMA};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs; `Default` is a sensible local daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker-pool size (0 is legal and means nothing ever computes — used
    /// by the backpressure tests).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it answer 429.
    pub queue_capacity: usize,
    /// In-memory LRU capacity (entries).
    pub cache_capacity: usize,
    /// Persistent result-store directory (`None` = memory-only).
    pub store_dir: Option<PathBuf>,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_capacity: 64,
            cache_capacity: 1024,
            store_dir: None,
            max_body_bytes: 1 << 20,
        }
    }
}

struct Ctx {
    service: CheckService,
    shutdown: Arc<AtomicBool>,
    max_body_bytes: usize,
}

/// A running daemon; dropped handles keep serving until [`Server::stop`].
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    ctx: Arc<Ctx>,
    accept_handle: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, starts the worker pool, and begins accepting.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound or the store cannot open.
    pub fn start(config: ServerConfig) -> Result<Server, SuiteError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| SuiteError::Io(format!("binding {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| SuiteError::Io(format!("local addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SuiteError::Io(format!("nonblocking listener: {e}")))?;
        let service = CheckService::start(
            config.workers,
            config.queue_capacity,
            config.cache_capacity,
            config.store_dir.as_deref(),
        )?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(Ctx {
            service,
            shutdown: Arc::clone(&shutdown),
            max_body_bytes: config.max_body_bytes,
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let ctx = Arc::clone(&ctx);
            let connections = Arc::clone(&connections);
            std::thread::Builder::new()
                .name("ds-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shutdown, &ctx, &connections))
                .map_err(|e| SuiteError::Io(format!("spawning accept thread: {e}")))?
        };
        Ok(Server {
            local_addr,
            shutdown,
            ctx,
            accept_handle: Some(accept_handle),
            connections,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether shutdown has been requested (via [`Server::stop`] or
    /// `POST /shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The `/stats` body, for in-process observers.
    pub fn stats_json(&self) -> String {
        self.ctx.service.stats_json()
    }

    /// Graceful shutdown: stop accepting, let in-flight connections finish,
    /// drain the queue, flush the store.
    ///
    /// # Errors
    ///
    /// Reports store-flush failures; the listener and workers are always
    /// torn down.
    pub fn stop(mut self) -> Result<(), SuiteError> {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Unblock queued connections before joining them: draining the
        // service answers every parked request (computed or 503).
        let result = self.ctx.service.stop();
        let handles: Vec<JoinHandle<()>> = lock_infallible(&self.connections).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        result
    }
}

fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    ctx: &Arc<Ctx>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let ctx = Arc::clone(ctx);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("ds-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &ctx))
                {
                    let mut held = lock_infallible(connections);
                    held.retain(|h| !h.is_finished());
                    held.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn error_body(kind: &str, message: &str) -> String {
    format!(
        "{{\"error\":{},\"kind\":{}}}",
        json::quote(message),
        json::quote(kind)
    )
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = stream;
    let response = match read_request(&mut reader, ctx.max_body_bytes) {
        Ok(request) => route(&request, ctx),
        Err(RequestError::BadRequest(message)) => {
            Response::json(400, error_body("bad_request", &message))
        }
        Err(RequestError::PayloadTooLarge { limit }) => Response::json(
            413,
            error_body(
                "payload_too_large",
                &format!("request body exceeds the {limit}-byte limit"),
            ),
        ),
        Err(RequestError::Disconnected) => return,
    };
    let _ = response.write_to(&mut write_half);
    let _ = write_half.flush();
}

/// The Prometheus text-exposition content type.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

fn route_slug(path: &str) -> &'static str {
    match path {
        "/health" => "health",
        "/stats" => "stats",
        "/metrics" => "metrics",
        "/check" => "check",
        "/shutdown" => "shutdown",
        p if p.starts_with("/trace/") => "trace",
        _ => "other",
    }
}

fn route(request: &Request, ctx: &Ctx) -> Response {
    ds_obs::metrics::global()
        .counter(
            names::REQUESTS_TOTAL,
            "HTTP requests answered, by route",
            Some(("route", route_slug(&request.path))),
        )
        .inc();
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"report_schema\":{}}}",
                json::quote(REPORT_SCHEMA)
            ),
        ),
        ("GET", "/stats") => Response::json(200, ctx.service.stats_json()),
        ("GET", "/metrics") => Response::text(
            200,
            PROMETHEUS_CONTENT_TYPE,
            ds_obs::metrics::global().render_prometheus(),
        ),
        ("GET", path) if path.starts_with("/trace/") => {
            let id = &path["/trace/".len()..];
            match ctx.service.trace_body(id) {
                Some(body) => Response::text(200, "application/jsonl; charset=utf-8", body),
                None => Response::json(
                    404,
                    error_body("not_found", &format!("no trace '{id}' in the ring")),
                ),
            }
        }
        ("POST", "/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"status\":\"shutting-down\"}")
        }
        ("POST", "/check") => check(request, ctx),
        (_, "/health" | "/stats" | "/metrics") => {
            Response::json(405, error_body("method_not_allowed", "use GET"))
                .with_header("Allow", "GET")
        }
        (_, path) if path.starts_with("/trace/") => {
            Response::json(405, error_body("method_not_allowed", "use GET"))
                .with_header("Allow", "GET")
        }
        (_, "/check" | "/shutdown") => {
            Response::json(405, error_body("method_not_allowed", "use POST"))
                .with_header("Allow", "POST")
        }
        (_, path) => Response::json(404, error_body("not_found", &format!("no route '{path}'"))),
    }
}

fn check(request: &Request, ctx: &Ctx) -> Response {
    let started = Instant::now();
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::json(400, error_body("bad_request", "deck body is not UTF-8"));
    };
    let method_name = request.query_param("method").unwrap_or("proposed");
    let Some(method) = Method::parse(method_name) else {
        return Response::json(
            400,
            error_body(
                "invalid_request",
                &format!("unknown method '{method_name}' (expected proposed, weierstrass, or lmi)"),
            ),
        );
    };
    let repair = match request.query_param("repair") {
        None | Some("false") | Some("0") => false,
        Some("true") | Some("1") => true,
        Some(other) => {
            return Response::json(
                400,
                error_body(
                    "invalid_request",
                    &format!("repair must be true or false, got '{other}'"),
                ),
            )
        }
    };
    let reduce = match request.query_param("reduce") {
        None | Some("off") => false,
        Some("auto") => true,
        Some(other) => {
            return Response::json(
                400,
                error_body(
                    "invalid_request",
                    &format!("reduce must be auto or off, got '{other}'"),
                ),
            )
        }
    };
    let deck = match parse_deck(text) {
        Ok(deck) => deck,
        Err(parse_error) => {
            let (status, body) = error_response(&SuiteError::from(parse_error));
            return Response::json(status, body);
        }
    };
    let hash = deck.content_hash();
    let job = CheckJob {
        name: format!("{hash:016x}"),
        deck,
        method,
        repair,
        reduce,
    };
    let trace_id = ds_obs::trace::next_trace_id();
    let receiver = match ctx.service.submit_traced(job, trace_id.clone()) {
        Ok(receiver) => receiver,
        Err(SubmitError::QueueFull) => {
            return Response::json(429, error_body("overloaded", "request queue is full"))
                .with_header("Retry-After", "1")
        }
        Err(SubmitError::ShuttingDown) => {
            return Response::json(503, error_body("shutdown", "server is shutting down"))
        }
    };
    match receiver.recv() {
        Ok(CheckReply::Done { body, cache }) => {
            ctx.service.observe_check_latency(started.elapsed());
            Response::json(200, body)
                .with_header("X-Cache", cache)
                .with_header("X-Deck-Hash", format!("{hash:016x}"))
                .with_header("X-Trace-Id", trace_id)
        }
        Ok(CheckReply::Failed { status, body }) => {
            ctx.service.observe_check_latency(started.elapsed());
            Response::json(status, body)
                .with_header("X-Deck-Hash", format!("{hash:016x}"))
                .with_header("X-Trace-Id", trace_id)
        }
        Err(_) => Response::json(503, error_body("shutdown", "worker pool unavailable")),
    }
}
