//! # ds-serve
//!
//! A long-running passivity-check daemon over the suite's unified pipeline
//! API: POST a SPICE deck, get back a versioned JSON verdict report
//! (`ds-check-report/v2`) keyed by the deck's canonical content hash.
//!
//! The stack is deliberately dependency-free (the build environment has no
//! registry access): a hand-rolled, hard-limited HTTP/1.1 layer over
//! `std::net::TcpListener` with a blocking accept loop and a thread per
//! connection, handing checks to a bounded worker pool.  Verdicts are served
//! from a two-tier cache — an in-memory LRU in front of the persistent
//! result store shared with `ds-sweep` — so a re-POSTed deck (even
//! reformatted: keys are *canonical* hashes) never recomputes, and a
//! restarted server still remembers every verdict it ever produced.
//! Overload answers 429 with `Retry-After`; SIGTERM/SIGINT (or
//! `POST /shutdown`) drain the queue, flush the store segment, and exit 0.
//!
//! ```no_run
//! use ds_serve::{client, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::start(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServerConfig::default()
//! })?;
//! let reply = client::post(
//!     server.local_addr(),
//!     "/check?method=proposed",
//!     "R1 in 0 50\n.port in\n.end\n",
//! )?;
//! assert_eq!(reply.status, 200);
//! server.stop()?;
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod server;
pub mod service;
pub mod signal;

pub use server::{Server, ServerConfig};
pub use service::{CheckJob, CheckReply, CheckService, SubmitError, STATS_SCHEMA};
