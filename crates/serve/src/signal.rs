//! Graceful-shutdown signals: SIGINT / SIGTERM set a process-wide flag that
//! the daemon's run loop polls.
//!
//! The handler itself does the only async-signal-safe thing possible — a
//! relaxed atomic store — and everything else (queue drain, store flush)
//! happens on the main thread.  The `signal(2)` registration is the one
//! unavoidable FFI call in the workspace, confined to this module.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a shutdown signal (or `POST /shutdown`) has been received.
pub static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically (used by `POST /shutdown` and tests).
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SHUTDOWN_REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)`: registering a plain function handler is all the
        // daemon needs, and it avoids depending on the layout of `sigaction`.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as *const () as usize;
        // SAFETY: `signal(2)` is called with valid signal numbers and the
        // address of an `extern "C" fn(i32)` whose ABI matches the handler
        // type the kernel expects.  The handler itself only performs a
        // relaxed-to-SeqCst atomic store, which is async-signal-safe (no
        // allocation, no locking, no FFI re-entry).  Replacing a previous
        // disposition is the intent, so the returned old handler is
        // deliberately discarded.
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Installs the SIGINT/SIGTERM handlers (no-op on non-Unix targets, where
/// only `POST /shutdown` triggers graceful shutdown).
pub fn install_handlers() {
    #[cfg(unix)]
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_sets_the_flag() {
        install_handlers();
        assert!(!shutdown_requested() || SHUTDOWN_REQUESTED.load(Ordering::SeqCst));
        request_shutdown();
        assert!(shutdown_requested());
    }
}
