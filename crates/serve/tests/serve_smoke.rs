//! End-to-end smoke test of the `ds-serve` binary — the same scenario the CI
//! `serve-smoke` job runs: start the daemon with a persistent store, POST the
//! committed deck corpus twice (second pass must be 100% cache hits with zero
//! new computations), terminate gracefully with SIGTERM (exit 0, segment
//! flushed), then restart on the same store and verify every verdict replays
//! from disk without recomputation.

#![cfg(unix)]

use ds_serve::client;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn decks() -> Vec<(PathBuf, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/decks");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cir"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 4, "deck corpus shrank to {}", paths.len());
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).unwrap();
            (p, text)
        })
        .collect()
}

fn spawn_daemon(store: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ds-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--store",
            store.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning ds-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut ready = String::new();
    BufReader::new(stdout).read_line(&mut ready).unwrap();
    let addr: SocketAddr = ready
        .trim()
        .strip_prefix("ds-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected ready line: '{}'", ready.trim()))
        .parse()
        .expect("parsing bound address");
    (child, addr)
}

fn stat(stats_body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let rest = &stats_body[stats_body.find(&needle).expect(key) + needle.len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn daemon_serves_the_corpus_and_shuts_down_gracefully() {
    let store = std::env::temp_dir().join(format!("ds-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let corpus = decks();

    let (mut child, addr) = spawn_daemon(&store);

    // Pass 1: every deck computes.
    let mut bodies = Vec::new();
    for (path, text) in &corpus {
        let reply = client::post(addr, "/check", text).unwrap();
        assert_eq!(reply.status, 200, "{}: {}", path.display(), reply.body);
        assert_eq!(reply.header("x-cache"), Some("miss"), "{}", path.display());
        bodies.push(reply.body);
    }
    let stats = client::get(addr, "/stats").unwrap().body;
    let computed_after_first = stat(&stats, "computed");
    assert_eq!(computed_after_first, corpus.len() as u64);

    // Pass 2: 100% cache hits, zero new computations, byte-identical bodies.
    for ((path, text), first_body) in corpus.iter().zip(&bodies) {
        let reply = client::post(addr, "/check", text).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-cache"), Some("hit"), "{}", path.display());
        assert_eq!(&reply.body, first_body, "{}", path.display());
    }
    let stats = client::get(addr, "/stats").unwrap().body;
    assert_eq!(stat(&stats, "computed"), computed_after_first);
    assert_eq!(stat(&stats, "hits_memory"), corpus.len() as u64);
    assert!(
        stats.contains("\"check_latency_ms\":{\"count\":"),
        "stats lost the server-side latency quantiles: {stats}"
    );

    // Observability surface: every /check reply carries an X-Trace-Id whose
    // span log is retrievable from the bounded ring.
    let reply = client::post(addr, "/check", &corpus[0].1).unwrap();
    let trace_id = reply.header("x-trace-id").expect("X-Trace-Id").to_string();
    let trace = client::get(addr, &format!("/trace/{trace_id}")).unwrap();
    assert_eq!(trace.status, 200, "{}", trace.body);
    assert!(!trace.body.is_empty());
    for line in trace.body.lines() {
        assert!(
            line.starts_with("{\"schema\":\"ds-trace/v1\""),
            "bad trace line: {line}"
        );
    }
    assert!(trace.body.contains("\"span\":\"check\""));
    let missing = client::get(addr, "/trace/no-such-id").unwrap();
    assert_eq!(missing.status, 404);

    // /metrics speaks the Prometheus text exposition and the computed pass
    // fed the per-stage histograms.
    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    assert!(metrics
        .body
        .contains("# TYPE ds_serve_check_seconds histogram"));
    assert!(metrics.body.contains("# TYPE ds_serve_queue_depth gauge"));
    let stage_count_line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("ds_check_stage_seconds_count{stage=\"total\"}"))
        .expect("stage histogram sample");
    let observed: u64 = stage_count_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        observed >= corpus.len() as u64,
        "stage histograms missed computed checks: {stage_count_line}"
    );

    // SIGTERM → graceful exit 0 with the segment flushed.
    let pid = child.id().to_string();
    let status = Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    assert!(status.success(), "kill -TERM failed");
    let exit = child.wait().unwrap();
    assert!(exit.success(), "daemon exited with {exit:?}");
    let segments = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("segment-"))
        .count();
    assert_eq!(segments, 1, "SIGTERM must flush exactly one segment");
    assert!(store.join("merged.jsonl").is_file());

    // Restart on the same store: verdicts replay from disk, nothing computes.
    let (mut child, addr) = spawn_daemon(&store);
    for ((path, text), first_body) in corpus.iter().zip(&bodies) {
        let reply = client::post(addr, "/check", text).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(
            reply.header("x-cache"),
            Some("hit-store"),
            "{}",
            path.display()
        );
        assert_eq!(&reply.body, first_body, "{}", path.display());
    }
    let stats = client::get(addr, "/stats").unwrap().body;
    assert_eq!(stat(&stats, "computed"), 0);
    assert_eq!(stat(&stats, "hits_store"), corpus.len() as u64);

    // POST /shutdown works as the cross-platform SIGTERM equivalent.
    let reply = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(reply.status, 200);
    let exit = child.wait().unwrap();
    assert!(exit.success(), "daemon exited with {exit:?}");

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn sigint_also_exits_cleanly() {
    let store = std::env::temp_dir().join(format!("ds-serve-smoke-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let (mut child, addr) = spawn_daemon(&store);
    assert_eq!(client::get(addr, "/health").unwrap().status, 200);
    let pid = child.id().to_string();
    assert!(Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .unwrap()
        .success());
    // Give the poll loop a moment; wait() then reaps the clean exit.
    std::thread::sleep(Duration::from_millis(10));
    let exit = child.wait().unwrap();
    assert!(exit.success(), "daemon exited with {exit:?}");
    let _ = std::fs::remove_dir_all(&store);
}
