//! Integration tests of the daemon's HTTP surface: routing and framing
//! errors, backpressure, cache-tier behavior across reformats and restarts,
//! concurrency, and byte-identity with the sweep engine.

use ds_passivity_suite::harness::scenario::Scenario;
use ds_passivity_suite::harness::{run_single, Method, SweepTask};
use ds_passivity_suite::netlist::parse_deck;
use ds_passivity_suite::CheckOutcome;
use ds_serve::{client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

const DECK: &str =
    "* divider\nR1 in mid 2\nL1 mid out 0.5\nC1 out 0 1\nR2 out 0 10\n.port in\n.end\n";

/// The same circuit as [`DECK`] after a formatting storm: comments, blank
/// lines, case changes, engineering-notation values, renamed internal nodes.
/// Element order is untouched — canonical form preserves it — so the
/// canonical content hash is identical and the daemon must treat it as the
/// same deck.
const DECK_REFORMATTED: &str = "* the very same divider, reformatted\n\nr1 in  middle    2000m   ; 2 ohm\nl1   middle o  500m\n\nc1 o 0 1\nR2   o 0    10   ; terminator\n.port in\n.end\n";

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ds-serve-test-{}-{tag}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn decks_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/decks")
}

#[test]
fn health_stats_and_routing() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();

    let health = client::get(addr, "/health").unwrap();
    assert_eq!(health.status, 200);
    assert!(health
        .body
        .contains("\"report_schema\":\"ds-check-report/v2\""));

    let stats = client::get(addr, "/stats").unwrap();
    assert_eq!(stats.status, 200);
    assert!(stats.body.contains("\"schema\":\"ds-serve-stats/v1\""));

    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    let put = client::request(addr, "PUT", "/check", Some(DECK)).unwrap();
    assert_eq!(put.status, 405);
    assert_eq!(put.header("allow"), Some("POST"));
    let get_check = client::get(addr, "/check").unwrap();
    assert_eq!(get_check.status, 405);
    let post_health = client::post(addr, "/health", "").unwrap();
    assert_eq!(post_health.status, 405);
    assert_eq!(post_health.header("allow"), Some("GET"));

    server.stop().unwrap();
}

#[test]
fn malformed_request_line_answers_400() {
    let server = Server::start(test_config()).unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 400 "),
        "got: {}",
        response.lines().next().unwrap_or("")
    );
    assert!(response.contains("\"kind\":\"bad_request\""));
    server.stop().unwrap();
}

#[test]
fn oversized_body_answers_413() {
    let server = Server::start(ServerConfig {
        max_body_bytes: 64,
        ..test_config()
    })
    .unwrap();
    let big_deck = format!("* {}\nR1 in 0 50\n.port in\n.end\n", "x".repeat(200));
    let reply = client::post(server.local_addr(), "/check", &big_deck).unwrap();
    assert_eq!(reply.status, 413);
    assert!(reply.body.contains("\"kind\":\"payload_too_large\""));
    server.stop().unwrap();
}

#[test]
fn full_queue_answers_429() {
    // Zero workers: the first request parks in the queue forever, the second
    // (a *different* deck — identical ones would coalesce, not queue) finds
    // the size-1 queue full.
    let server = Server::start(ServerConfig {
        workers: 0,
        queue_capacity: 1,
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr();
    let parked = std::thread::spawn(move || client::post(addr, "/check", DECK).unwrap());
    // Wait until the parked request occupies the queue.
    let mut queued = false;
    for _ in 0..100 {
        if client::get(addr, "/stats")
            .unwrap()
            .body
            .contains("\"queue_depth\":1")
        {
            queued = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(queued, "first request never reached the queue");

    let other_deck = "R1 in 0 50\nC1 in 0 1\n.port in\n.end\n";
    let rejected = client::post(addr, "/check", other_deck).unwrap();
    assert_eq!(rejected.status, 429);
    assert!(rejected.header("retry-after").is_some());
    assert!(rejected.body.contains("\"kind\":\"overloaded\""));

    // Graceful shutdown answers the parked request with 503 instead of
    // hanging the client.
    server.stop().unwrap();
    let parked_reply = parked.join().unwrap();
    assert_eq!(parked_reply.status, 503);
}

#[test]
fn reformatted_deck_is_a_memory_cache_hit() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();

    let first = client::post(addr, "/check", DECK).unwrap();
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(first.header("x-cache"), Some("miss"));

    let second = client::post(addr, "/check", DECK_REFORMATTED).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(second.body, first.body, "cache hit must be byte-identical");
    assert_eq!(second.header("x-deck-hash"), first.header("x-deck-hash"));

    server.stop().unwrap();
}

#[test]
fn restarted_server_answers_from_the_persistent_store() {
    let store = temp_dir("restart");
    let config = || ServerConfig {
        store_dir: Some(store.clone()),
        ..test_config()
    };

    let server = Server::start(config()).unwrap();
    let first = client::post(server.local_addr(), "/check", DECK).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    server.stop().unwrap(); // flushes the segment

    let segments = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("segment-"))
        .count();
    assert_eq!(segments, 1, "shutdown must flush exactly one segment");

    let server = Server::start(config()).unwrap();
    let replay = client::post(server.local_addr(), "/check", DECK_REFORMATTED).unwrap();
    assert_eq!(replay.status, 200);
    assert_eq!(replay.header("x-cache"), Some("hit-store"));
    assert_eq!(
        replay.body, first.body,
        "store replay must be byte-identical"
    );
    server.stop().unwrap();

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn concurrent_identical_decks_get_byte_identical_responses() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();
    let clients: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(move || client::post(addr, "/check", DECK).unwrap()))
        .collect();
    let replies: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for reply in &replies {
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        assert_eq!(reply.body, replies[0].body, "responses diverged");
        let cache = reply.header("x-cache").unwrap();
        assert!(
            ["miss", "hit", "coalesced"].contains(&cache),
            "unexpected cache tier '{cache}'"
        );
    }
    // Exactly one computation happened for all eight clients.
    let stats = server.stats_json();
    assert!(stats.contains("\"computed\":1"), "stats: {stats}");
    server.stop().unwrap();
}

#[test]
fn served_verdicts_are_byte_identical_to_the_sweep_engine() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();
    let mut checked = 0;
    let mut paths: Vec<PathBuf> = std::fs::read_dir(decks_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cir"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let deck = parse_deck(&text).unwrap();
        for method in [Method::Proposed, Method::Weierstrass, Method::Lmi] {
            // What `ds-sweep --decks` would record for this deck and method.
            let task = SweepTask {
                scenario: Scenario::from_deck(format!("{:016x}", deck.content_hash()), &deck),
                method,
            };
            let expected = CheckOutcome::from_record(&run_single(&task, 0)).report_json();

            let reply =
                client::post(addr, &format!("/check?method={}", method.name()), &text).unwrap();
            assert_eq!(reply.status, 200, "{}: {}", path.display(), reply.body);
            assert_eq!(
                reply.body,
                expected,
                "{} via {} diverged from the sweep engine",
                path.display(),
                method.name()
            );
            checked += 1;
        }
    }
    assert!(checked >= 12, "deck corpus shrank? checked {checked}");
    server.stop().unwrap();
}

#[test]
fn reduce_auto_serves_a_reduced_report() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();

    let reduced = client::post(addr, "/check?reduce=auto", DECK).unwrap();
    assert_eq!(reduced.status, 200, "body: {}", reduced.body);
    assert_eq!(reduced.header("x-cache"), Some("miss"));
    // The 4-state divider passes through the projection exactly.
    assert!(
        reduced.body.contains("\"reduced_order\":4"),
        "body: {}",
        reduced.body
    );
    assert!(reduced.body.contains("\"residual\":0"), "{}", reduced.body);
    assert!(
        reduced.body.contains("\"passive\":true"),
        "{}",
        reduced.body
    );

    // Reduce and direct checks cache under different keys.
    let direct = client::post(addr, "/check", DECK).unwrap();
    assert_eq!(direct.header("x-cache"), Some("miss"));
    assert!(direct.body.contains("\"reduced_order\":null"));

    let again = client::post(addr, "/check?reduce=auto", DECK).unwrap();
    assert_eq!(again.header("x-cache"), Some("hit"));
    assert_eq!(again.body, reduced.body);

    let bad = client::post(addr, "/check?reduce=yes", DECK).unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("\"kind\":\"invalid_request\""));

    server.stop().unwrap();
}

#[test]
fn parse_errors_return_400_with_line_and_column() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();

    let bad = client::post(addr, "/check", "R1 in 0 nonsense\n.port in\n.end\n").unwrap();
    assert_eq!(bad.status, 400);
    assert!(
        bad.body.contains("\"kind\":\"parse\""),
        "body: {}",
        bad.body
    );
    assert!(bad.body.contains("\"line\":1"), "body: {}", bad.body);
    assert!(bad.body.contains("\"column\":"), "body: {}", bad.body);

    let unknown_method = client::post(addr, "/check?method=magic", DECK).unwrap();
    assert_eq!(unknown_method.status, 400);
    assert!(unknown_method.body.contains("\"kind\":\"invalid_request\""));

    let bad_repair = client::post(addr, "/check?repair=banana", DECK).unwrap();
    assert_eq!(bad_repair.status, 400);

    let not_utf8_free = client::post(addr, "/check", "").unwrap();
    assert_eq!(not_utf8_free.status, 400, "empty deck must not 500");

    server.stop().unwrap();
}

#[test]
fn repair_flag_reports_enforcement() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr();

    // A passive deck asks for no perturbation.
    let passive = client::post(addr, "/check?repair=true", DECK).unwrap();
    assert_eq!(passive.status, 200, "body: {}", passive.body);
    assert!(
        passive
            .body
            .contains("\"repair\":{\"enforced\":false,\"resistance\":0,\"passive_after\":true"),
        "body: {}",
        passive.body
    );

    // The committed non-passive ladder is repairable by series resistance.
    let text = std::fs::read_to_string(decks_dir().join("nonpassive_ladder.cir")).unwrap();
    let repaired = client::post(addr, "/check?repair=true", &text).unwrap();
    assert_eq!(repaired.status, 200, "body: {}", repaired.body);
    assert!(
        repaired.body.contains("\"repair\":{\"enforced\":true"),
        "body: {}",
        repaired.body
    );
    assert!(
        repaired.body.contains("\"passive_after\":true"),
        "body: {}",
        repaired.body
    );

    // Without the flag the report keeps repair null.
    let plain = client::post(addr, "/check", &text).unwrap();
    assert!(plain.body.contains("\"repair\":null"));

    server.stop().unwrap();
}
