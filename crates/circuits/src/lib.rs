//! # ds-circuits
//!
//! Synthetic RLC / MNA circuit-model generators producing descriptor systems.
//!
//! The DAC 2006 paper evaluates its passivity test on "practical RLC circuit
//! models of different orders and number of impulsive modes"; those models are
//! not publicly available, so this crate generates equivalent synthetic
//! workloads: modified-nodal-analysis (MNA) descriptor systems of RC/RLC
//! ladders and grids, with
//!
//! * singular `E` (nodes without capacitance give nondynamic modes),
//! * impulsive modes on request (ports fed through series inductors),
//! * passive instances by construction, and non-passive perturbations
//!   (negative resistances) for verdict testing.
//!
//! # Example
//!
//! ```
//! use ds_circuits::generators;
//!
//! # fn main() -> Result<(), ds_circuits::CircuitError> {
//! let model = generators::rlc_ladder_with_impulsive(20)?;
//! assert_eq!(model.system.order(), 20);
//! assert!(model.expected_passive);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod generators;
pub mod mna;
pub mod multiport;
pub mod netlist;
pub mod random;

pub use error::CircuitError;
pub use netlist::{Element, Netlist, Port};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::error::CircuitError;
    pub use crate::generators::CircuitModel;
    pub use crate::netlist::{Element, Netlist, Port};
}
