//! Multiport and near-boundary scenario generators.
//!
//! [`crate::generators`] covers the paper's original single-port ladders and
//! grids; this module widens the scenario space for the sweep harness:
//!
//! * [`multiport_rlc_ladder`] — `m ≥ 1` coupled RLC ladder chains, one port
//!   per chain, optionally fed through series port inductors (impulsive modes),
//! * [`coupled_inductor_mesh`] — an RLC grid whose inductor branches carry
//!   genuine mutual inductance (a full, diagonally dominant `L` block in `E`),
//! * [`lossy_tline_chain`] — a cascade of lossy RLGC transmission-line π
//!   segments between two ports,
//! * [`perturbed_boundary_model`] — a randomized model sitting exactly on the
//!   passivity boundary at `margin = 0` and violating it by exactly `margin`
//!   (in the Popov function at `ω → ∞`) for `margin > 0`,
//! * [`banded_boundary_model`] — the band-limited counterpart whose violation
//!   sits at a **finite** witness frequency `ω₀` (positive again at DC and at
//!   `ω → ∞`), exercising the interior Hamiltonian-eigenvalue classification
//!   path.
//!
//! All circuit-based generators stay passive by construction (every element is
//! individually passive and mutual couplings keep `L ⪰ 0`).

use crate::error::CircuitError;
use crate::generators::CircuitModel;
use crate::mna;
use crate::netlist::{Element, Netlist, Port};
use crate::random::random_orthogonal;
use ds_descriptor::{transform, DescriptorSystem};
use ds_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `m`-port RLC ladder: `ports` parallel chains of `sections` series R∥L
/// branches with shunt capacitors, resistively coupled between neighbouring
/// chains, each chain driven from its own grounded port.
///
/// With `impulsive = false` the state dimension is
/// `ports · (2·sections + 1)`; with `impulsive = true` each port is fed
/// through an extra series inductor (adding one node and one branch current
/// per chain, so `ports · (2·sections + 3)` states) and the impedance behaves
/// like `s·L_port` per port at high frequency — a nonzero `M₁ ⪰ 0` of rank
/// `ports`.
///
/// # Errors
///
/// Returns [`CircuitError::UnrealizableOrder`] for `ports == 0` or
/// `sections == 0`; propagates stamping failures.
pub fn multiport_rlc_ladder(
    ports: usize,
    sections: usize,
    impulsive: bool,
) -> Result<CircuitModel, CircuitError> {
    if ports == 0 || sections == 0 {
        return Err(CircuitError::UnrealizableOrder {
            requested: ports * sections,
            details: "multiport_rlc_ladder needs ports ≥ 1 and sections ≥ 1".into(),
        });
    }
    // Chain p occupies nodes p·stride + 1 ..= p·stride + stride, laid out as
    // [port node, (feed node when impulsive), ladder nodes...].
    let stride = sections + if impulsive { 2 } else { 1 };
    let num_nodes = ports * stride;
    let mut net = Netlist::new(num_nodes);
    for p in 0..ports {
        let base = p * stride;
        let port_node = base + 1;
        net.port(Port::to_ground(port_node));
        let mut prev = port_node;
        if impulsive {
            // Series port inductor: Z ~ s·L_port at infinity (impulsive modes).
            let feed = base + 2;
            net.inductor(port_node, feed, 0.6 + 0.1 * p as f64);
            net.resistor(feed, 0, 40.0 + 5.0 * p as f64);
            prev = feed;
        }
        for k in 0..sections {
            let node = base + if impulsive { 3 } else { 2 } + k;
            net.resistor(prev, node, 1.0 + 0.03 * (k + p) as f64);
            net.inductor(prev, node, 0.5 + 0.02 * (k + 2 * p) as f64);
            net.capacitor(node, 0, 1.0 + 0.05 * (k + p) as f64);
            prev = node;
        }
        // Terminating load keeps the DC impedance bounded per chain.
        net.resistor(prev, 0, 8.0 + p as f64);
    }
    // Resistive coupling between corresponding ladder nodes of adjacent chains.
    for p in 0..ports.saturating_sub(1) {
        for k in 0..sections {
            let off = if impulsive { 3 } else { 2 } + k;
            let a = p * stride + off;
            let b = (p + 1) * stride + off;
            net.resistor(a, b, 5.0 + 0.5 * (k + p) as f64);
        }
    }
    let system = mna::stamp(&net)?;
    let expected_order = num_nodes + net.num_inductors();
    debug_assert_eq!(system.order(), expected_order, "order bookkeeping is off");
    Ok(CircuitModel {
        name: format!(
            "multiport_rlc_ladder(ports={ports},sections={sections},impulsive={impulsive})"
        ),
        system,
        expected_passive: true,
        has_impulsive_modes: impulsive,
    })
}

/// Coupled-inductor mesh: a `rows × cols` grid of nodes whose horizontal
/// branches are series R∥L pairs and vertical branches are resistors, with
/// shunt capacitors on interior nodes and ports at two opposite corners.
/// Inductor branches that share a node carry genuine mutual inductance
/// through native netlist `K` couplings (`M_pq = k·√(L_p·L_q)`), so the
/// inductance block of `E` becomes a full symmetric matrix.  The common
/// coefficient `k` is rescaled to keep the matrix strictly diagonally
/// dominant (hence `L ≻ 0` and the model remains passive).
///
/// `coupling ∈ [0, 1)` selects the fraction of the maximum diagonal-dominance
/// budget used by the mutual terms (0 decouples the mesh).
/// State dimension = `rows·cols + rows·(cols − 1)`.
///
/// # Errors
///
/// Returns [`CircuitError::UnrealizableOrder`] for grids smaller than 2×2 and
/// [`CircuitError::BadElementValue`] for `coupling` outside `[0, 1)`;
/// propagates stamping failures.
pub fn coupled_inductor_mesh(
    rows: usize,
    cols: usize,
    coupling: f64,
) -> Result<CircuitModel, CircuitError> {
    if rows < 2 || cols < 2 {
        return Err(CircuitError::UnrealizableOrder {
            requested: rows * cols,
            details: "coupled_inductor_mesh needs at least a 2x2 grid".into(),
        });
    }
    if !(0.0..1.0).contains(&coupling) {
        return Err(CircuitError::BadElementValue {
            details: format!("coupling must lie in [0, 1), got {coupling}"),
        });
    }
    let node = |i: usize, j: usize| i * cols + j + 1;
    let mut net = Netlist::new(rows * cols);
    net.port(Port::to_ground(node(0, 0)));
    net.port(Port::to_ground(node(rows - 1, cols - 1)));
    let mut n_ind = 0usize;
    for i in 0..rows {
        for j in 0..cols {
            let here = node(i, j);
            if j + 1 < cols {
                // Horizontal branch: series R∥L (stamped in element order, so
                // inductor k is the k-th horizontal branch row-major).
                net.resistor(here, node(i, j + 1), 1.0 + 0.05 * (i + j) as f64);
                net.named_inductor(
                    format!("L{n_ind}"),
                    here,
                    node(i, j + 1),
                    0.4 + 0.03 * (i + 2 * j) as f64,
                );
                n_ind += 1;
            }
            if i + 1 < rows {
                net.resistor(here, node(i + 1, j), 2.0 + 0.04 * (i * j) as f64);
            }
            let is_port_corner = (i == 0 && j == 0) || (i == rows - 1 && j == cols - 1);
            if !is_port_corner {
                net.capacitor(here, 0, 0.8 + 0.02 * (2 * i + j) as f64);
            }
        }
    }
    net.resistor(node(0, 0), 0, 60.0);
    net.resistor(node(rows - 1, cols - 1), 0, 60.0);

    // Mutual inductance M_pq = k·√(L_p·L_q) for branches sharing a node,
    // with the common coefficient k chosen inside the diagonal-dominance
    // budget so the joint L block stays positive definite.
    let inductor_terminals: Vec<(usize, usize)> = net
        .elements
        .iter()
        .filter_map(|e| match *e {
            Element::Inductor { a, b, .. } => Some((a, b)),
            _ => None,
        })
        .collect();
    let values: Vec<f64> = net
        .elements
        .iter()
        .filter_map(|e| match *e {
            Element::Inductor { value, .. } => Some(value),
            _ => None,
        })
        .collect();
    let shares_node = |p: usize, q: usize| {
        let (a1, b1) = inductor_terminals[p];
        let (a2, b2) = inductor_terminals[q];
        a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2
    };
    let l_at = |k: usize| values[k];
    let mut budget: f64 = 1.0;
    for p in 0..n_ind {
        let mut row_sum = 0.0;
        for q in 0..n_ind {
            if p != q && shares_node(p, q) {
                row_sum += (l_at(p) * l_at(q)).sqrt();
            }
        }
        if row_sum > 0.0 {
            budget = budget.min(l_at(p) / row_sum);
        }
    }
    let k = (coupling * 0.95 * budget).min(1.0);
    if k > 0.0 {
        for p in 0..n_ind {
            for q in (p + 1)..n_ind {
                if shares_node(p, q) {
                    net.couple(format!("K{p}_{q}"), format!("L{p}"), format!("L{q}"), k);
                }
            }
        }
    }
    let system = mna::stamp(&net)?;
    Ok(CircuitModel {
        name: format!("coupled_inductor_mesh({rows}x{cols},coupling={coupling})"),
        system,
        expected_passive: true,
        has_impulsive_modes: false,
    })
}

/// Lossy transmission-line chain: `segments` cascaded RLGC π segments between
/// two grounded ports (near end and far end).  Each segment contributes a
/// series R–L branch through an internal node plus shunt C/G halves at both
/// ends, so the state dimension is `3·segments + 1` (2·segments + 1 nodes and
/// `segments` branch currents).
///
/// # Errors
///
/// Returns [`CircuitError::UnrealizableOrder`] for `segments == 0`; propagates
/// stamping failures.
pub fn lossy_tline_chain(segments: usize) -> Result<CircuitModel, CircuitError> {
    if segments == 0 {
        return Err(CircuitError::UnrealizableOrder {
            requested: 0,
            details: "lossy_tline_chain needs at least one segment".into(),
        });
    }
    // Node layout: junction nodes 1, 3, 5, …, 2·segments + 1 and internal
    // series nodes 2, 4, … between the R and the L of each segment.
    let num_nodes = 2 * segments + 1;
    let mut net = Netlist::new(num_nodes);
    net.port(Port::to_ground(1));
    net.port(Port::to_ground(num_nodes));
    for k in 0..segments {
        let left = 2 * k + 1;
        let mid = 2 * k + 2;
        let right = 2 * k + 3;
        // Series loss and inductance of the segment.
        net.resistor(left, mid, 0.4 + 0.02 * k as f64);
        net.inductor(mid, right, 0.7 + 0.03 * k as f64);
        // π-model shunt halves: C/2 and G/2 at both junctions.
        net.capacitor(left, 0, 0.5 + 0.01 * k as f64);
        net.capacitor(right, 0, 0.5 + 0.01 * k as f64);
        net.resistor(left, 0, 150.0);
        net.resistor(right, 0, 150.0);
    }
    let system = mna::stamp(&net)?;
    debug_assert_eq!(system.order(), 3 * segments + 1, "order bookkeeping is off");
    Ok(CircuitModel {
        name: format!("lossy_tline_chain(segments={segments})"),
        system,
        expected_passive: true,
        has_impulsive_modes: false,
    })
}

/// Randomized model sitting near the passivity boundary, parameterized by a
/// violation margin.
///
/// The proper part is internally passive (`A = S − R` with `S` skew and
/// `R ≻ 0` diagonal, `C = Bᵀ`), so its Popov function satisfies
/// `Φ(jω) = 2·D + Bᵀ((jωI − A)⁻¹ + (jωI − A)⁻ᴴ)B ⪰ 2·D` with the resolvent
/// term PSD for every `ω` and vanishing as `ω → ∞`.  With
/// `D = −(margin/2)·I` the infimum of `λ_min(Φ(jω))` over `ω` is exactly
/// `−margin`:
///
/// * `margin = 0` — the model is passive but lossless at infinity (boundary),
/// * `margin > 0` — the model violates passivity by exactly `margin` at high
///   frequency, so any correct test must reject it.
///
/// Nondynamic algebraic states are padded in and the block structure is hidden
/// behind a random orthogonal restricted-system-equivalence transform.
/// State dimension = `dynamic_states + 2`.
///
/// # Errors
///
/// Returns [`CircuitError::BadElementValue`] for negative or non-finite
/// margins and [`CircuitError::UnrealizableOrder`] for
/// `dynamic_states == 0` or `ports == 0`; propagates construction failures.
pub fn perturbed_boundary_model(
    dynamic_states: usize,
    ports: usize,
    margin: f64,
    seed: u64,
) -> Result<CircuitModel, CircuitError> {
    if dynamic_states == 0 || ports == 0 {
        return Err(CircuitError::UnrealizableOrder {
            requested: dynamic_states,
            details: "perturbed_boundary_model needs dynamic_states ≥ 1 and ports ≥ 1".into(),
        });
    }
    if !margin.is_finite() || margin < 0.0 {
        return Err(CircuitError::BadElementValue {
            details: format!("violation margin must be finite and ≥ 0, got {margin}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let nq = dynamic_states;
    let m = ports;

    let skew = Matrix::from_fn(nq, nq, |_, _| rng.gen_range(-1.0..1.0)).skew_part();
    let damping = Matrix::diag(
        &(0..nq)
            .map(|_| rng.gen_range(0.3..1.5))
            .collect::<Vec<f64>>(),
    );
    let a_dyn = &skew - &damping;
    let b_dyn = Matrix::from_fn(nq, m, |_, _| rng.gen_range(-1.0..1.0));
    let c_dyn = b_dyn.transpose();
    let d = Matrix::identity(m).scale(-0.5 * margin);

    // Two nondynamic padding states, decoupled from the outputs.
    let e = Matrix::block_diag(&[&Matrix::identity(nq), &Matrix::zeros(2, 2)]);
    let a = Matrix::block_diag(&[&a_dyn, &Matrix::identity(2).scale(-1.0)]);
    let b = Matrix::vstack(&[
        &b_dyn,
        &Matrix::from_fn(2, m, |_, _| rng.gen_range(-0.5..0.5)),
    ]);
    let c = Matrix::hstack(&[&c_dyn, &Matrix::zeros(m, 2)]);
    let sys = DescriptorSystem::new(e, a, b, c, d)?;

    let n = sys.order();
    let q = random_orthogonal(n, &mut rng);
    let z = random_orthogonal(n, &mut rng);
    let system = transform::restricted_equivalence(&sys, &q, &z)?;
    Ok(CircuitModel {
        name: format!(
            "perturbed_boundary_model(n={dynamic_states},ports={ports},margin={margin},seed={seed})"
        ),
        system,
        expected_passive: margin == 0.0,
        has_impulsive_modes: false,
    })
}

/// Strictly-passive slack (see [`banded_boundary_model`]): keeps the
/// `margin = 0` instance decidably passive — an *exact* finite-frequency
/// tangency would make the Hamiltonian-eigenvalue classification depend on
/// `O(√ε)` rounding of a double imaginary eigenvalue.
pub const BAND_SLACK: f64 = 1e-6;

/// Randomized near-boundary model whose passivity violation sits at a
/// **finite** frequency (witness `ω₀`), unlike
/// [`perturbed_boundary_model`] which plants it at `ω → ∞`.
///
/// Each port carries a damped resonator realizing the band-pass function
/// `bp(s) = 2ζω₀·s / (s² + 2ζω₀·s + ω₀²)`, which is positive real with
/// `Re bp(jω) ∈ [0, 1]` peaking at exactly `bp(jω₀) = 1`.  The model is
/// `G(s) = d·I − γ·bp(s)·I` (then port-mixed by a random orthogonal matrix
/// and state-disguised by a restricted-equivalence transform) with
/// `γ = ½ + margin/2` and `d = γ − margin/2 + BAND_SLACK`, so
///
/// `min_ω λ_min(Φ(jω)) = 2·BAND_SLACK − margin`, attained at `ω = ω₀`:
///
/// * `margin = 0` — passive, grazing the boundary at `ω₀` within
///   [`BAND_SLACK`],
/// * `margin > 0` (beyond `2·BAND_SLACK`) — the Popov function dips negative
///   on a finite band around `ω₀` and is positive at DC and at `ω → ∞`, so a
///   correct test must find the *interior* Hamiltonian eigenvalue crossing.
///
/// Two nondynamic algebraic states are padded in; state dimension =
/// `2·ports + 2`.
///
/// # Errors
///
/// Returns [`CircuitError::UnrealizableOrder`] for `ports == 0` and
/// [`CircuitError::BadElementValue`] for a negative/non-finite margin or a
/// non-positive `omega0`; propagates construction failures.
pub fn banded_boundary_model(
    ports: usize,
    margin: f64,
    omega0: f64,
    seed: u64,
) -> Result<CircuitModel, CircuitError> {
    if ports == 0 {
        return Err(CircuitError::UnrealizableOrder {
            requested: 0,
            details: "banded_boundary_model needs ports ≥ 1".into(),
        });
    }
    if !margin.is_finite() || margin < 0.0 {
        return Err(CircuitError::BadElementValue {
            details: format!("violation margin must be finite and ≥ 0, got {margin}"),
        });
    }
    if !omega0.is_finite() || omega0 <= 0.0 {
        return Err(CircuitError::BadElementValue {
            details: format!("witness frequency must be finite and > 0, got {omega0}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
    let m = ports;
    let gamma = 0.5 + 0.5 * margin;
    let d_val = gamma - 0.5 * margin + BAND_SLACK;

    // Per-port resonator in controllable canonical form:
    // A = [[0, 1], [−ω₀², −2ζω₀]], b = e₂, c = −γ·[0, 2ζω₀] realizes
    // −γ·bp(s).  The damping ζ is randomized per port; Re bp(jω₀) = 1 holds
    // for every ζ > 0, so the violation depth is ζ-independent.
    let mut blocks_a = Vec::with_capacity(m);
    let mut b_dyn = Matrix::zeros(2 * m, m);
    let mut c_dyn = Matrix::zeros(m, 2 * m);
    for p in 0..m {
        let zeta = rng.gen_range(0.2..0.6);
        blocks_a.push(Matrix::from_rows(&[
            &[0.0, 1.0],
            &[-omega0 * omega0, -2.0 * zeta * omega0],
        ]));
        b_dyn[(2 * p + 1, p)] = 1.0;
        c_dyn[(p, 2 * p + 1)] = -gamma * 2.0 * zeta * omega0;
    }
    let a_refs: Vec<&Matrix> = blocks_a.iter().collect();
    let a_dyn = Matrix::block_diag(&a_refs);
    let d = Matrix::identity(m).scale(d_val);

    // Mix the ports with a random orthogonal matrix: G ↦ U·G·Uᵀ preserves the
    // Popov spectrum (D = d·I commutes) while hiding the diagonal structure.
    let u = random_orthogonal(m, &mut rng);
    let b_dyn = b_dyn.matmul(&u.transpose()).map_err(map_linalg)?;
    let c_dyn = u.matmul(&c_dyn).map_err(map_linalg)?;

    // Two nondynamic padding states, decoupled from the outputs.
    let e = Matrix::block_diag(&[&Matrix::identity(2 * m), &Matrix::zeros(2, 2)]);
    let a = Matrix::block_diag(&[&a_dyn, &Matrix::identity(2).scale(-1.0)]);
    let b = Matrix::vstack(&[
        &b_dyn,
        &Matrix::from_fn(2, m, |_, _| rng.gen_range(-0.5..0.5)),
    ]);
    let c = Matrix::hstack(&[&c_dyn, &Matrix::zeros(m, 2)]);
    let sys = DescriptorSystem::new(e, a, b, c, d)?;

    let n = sys.order();
    let q = random_orthogonal(n, &mut rng);
    let z = random_orthogonal(n, &mut rng);
    let system = transform::restricted_equivalence(&sys, &q, &z)?;
    Ok(CircuitModel {
        name: format!(
            "banded_boundary_model(ports={ports},margin={margin},omega0={omega0},seed={seed})"
        ),
        system,
        expected_passive: margin <= 2.0 * BAND_SLACK,
        has_impulsive_modes: false,
    })
}

fn map_linalg(e: ds_linalg::LinalgError) -> CircuitError {
    CircuitError::BadElementValue {
        details: format!("banded boundary construction failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_descriptor::{impulse, poles, transfer};

    fn popov_min_over(system: &DescriptorSystem, freqs: &[f64]) -> f64 {
        freqs
            .iter()
            .map(|&w| {
                transfer::evaluate_jomega(system, w)
                    .unwrap()
                    .popov_min_eigenvalue()
                    .unwrap()
            })
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn multiport_ladder_dimensions_and_passivity() {
        let model = multiport_rlc_ladder(3, 2, false).unwrap();
        assert_eq!(model.system.order(), 3 * (2 * 2 + 1));
        assert_eq!(model.system.num_inputs(), 3);
        assert!(model.system.is_regular(1e-10).unwrap());
        assert!(poles::is_stable(&model.system, 1e-12).unwrap());
        assert!(popov_min_over(&model.system, &[0.0, 0.3, 1.0, 5.0, 40.0]) >= -1e-9);
    }

    #[test]
    fn multiport_ladder_impulsive_variant() {
        let model = multiport_rlc_ladder(2, 2, true).unwrap();
        assert_eq!(model.system.order(), 2 * (2 * 2 + 3));
        assert!(model.has_impulsive_modes);
        assert!(!impulse::is_impulse_free(&model.system, 1e-10).unwrap());
        // Port inductances are visible in M1 on both ports.
        let m1 = transfer::sample_m1(&model.system, 1e5).unwrap();
        assert!(m1[(0, 0)] > 0.3 && m1[(1, 1)] > 0.3);
        assert!(popov_min_over(&model.system, &[0.0, 0.5, 2.0, 20.0]) >= -1e-9);
    }

    #[test]
    fn multiport_ladder_rejects_degenerate_parameters() {
        assert!(multiport_rlc_ladder(0, 3, false).is_err());
        assert!(multiport_rlc_ladder(2, 0, true).is_err());
    }

    #[test]
    fn coupled_mesh_l_block_is_coupled_and_passive() {
        let model = coupled_inductor_mesh(3, 3, 0.5).unwrap();
        assert_eq!(model.system.order(), 9 + 3 * 2);
        assert_eq!(model.system.num_inputs(), 2);
        // Mutual terms really are present in E.
        let n_nodes = 9;
        let mut off_diagonal = 0.0f64;
        for p in 0..6 {
            for q in 0..6 {
                if p != q {
                    off_diagonal += model.system.e()[(n_nodes + p, n_nodes + q)].abs();
                }
            }
        }
        assert!(off_diagonal > 0.0, "no mutual inductance was injected");
        assert!(model.system.is_regular(1e-10).unwrap());
        assert!(poles::is_stable(&model.system, 1e-12).unwrap());
        assert!(popov_min_over(&model.system, &[0.0, 0.2, 1.0, 4.0, 30.0]) >= -1e-9);
    }

    #[test]
    fn coupled_mesh_l_block_is_symmetric_psd() {
        // The native K-coupled stamp must produce a symmetric positive
        // semidefinite inductance block in E (ROADMAP: replaces the old
        // post-stamp E-block injection).
        for coupling in [0.0, 0.3, 0.7] {
            let model = coupled_inductor_mesh(3, 3, coupling).unwrap();
            let n_nodes = 9;
            let n_ind = 6;
            let l = model
                .system
                .e()
                .block(n_nodes, n_nodes + n_ind, n_nodes, n_nodes + n_ind);
            assert!(l.is_symmetric(0.0), "L block is not symmetric");
            let min = ds_linalg::decomp::symmetric::min_eigenvalue(&l).unwrap();
            assert!(
                min > 1e-12,
                "L block not positive definite at coupling {coupling}: λ_min = {min}"
            );
        }
    }

    #[test]
    fn coupled_mesh_zero_coupling_matches_plain_stamp() {
        let model = coupled_inductor_mesh(2, 3, 0.0).unwrap();
        let n_nodes = 6;
        for p in 0..4 {
            for q in 0..4 {
                if p != q {
                    assert_eq!(model.system.e()[(n_nodes + p, n_nodes + q)], 0.0);
                }
            }
        }
    }

    #[test]
    fn coupled_mesh_parameter_validation() {
        assert!(coupled_inductor_mesh(1, 3, 0.2).is_err());
        assert!(coupled_inductor_mesh(3, 3, 1.0).is_err());
        assert!(coupled_inductor_mesh(3, 3, -0.1).is_err());
    }

    #[test]
    fn tline_chain_two_port_passive() {
        let model = lossy_tline_chain(4).unwrap();
        assert_eq!(model.system.order(), 13);
        assert_eq!(model.system.num_inputs(), 2);
        assert!(model.system.is_regular(1e-10).unwrap());
        assert!(poles::is_stable(&model.system, 1e-12).unwrap());
        assert!(popov_min_over(&model.system, &[0.0, 0.1, 1.0, 10.0, 100.0]) >= -1e-9);
        assert!(lossy_tline_chain(0).is_err());
    }

    #[test]
    fn perturbed_model_margin_zero_is_boundary_passive() {
        for seed in 0..4 {
            let model = perturbed_boundary_model(5, 2, 0.0, seed).unwrap();
            assert!(model.expected_passive);
            assert_eq!(model.system.order(), 7);
            assert!(
                popov_min_over(&model.system, &[0.0, 0.5, 2.0, 10.0, 1e3, 1e5]) >= -1e-8,
                "seed {seed} dipped negative"
            );
        }
    }

    #[test]
    fn perturbed_model_margin_shows_exact_violation_at_high_frequency() {
        let margin = 0.25;
        let model = perturbed_boundary_model(5, 2, margin, 7).unwrap();
        assert!(!model.expected_passive);
        let g = transfer::evaluate_jomega(&model.system, 1e7).unwrap();
        let min_eig = g.popov_min_eigenvalue().unwrap();
        assert!(
            (min_eig + margin).abs() < 1e-3,
            "expected λ_min ≈ −{margin}, got {min_eig}"
        );
    }

    #[test]
    fn perturbed_model_parameter_validation() {
        assert!(perturbed_boundary_model(0, 1, 0.1, 0).is_err());
        assert!(perturbed_boundary_model(4, 0, 0.1, 0).is_err());
        assert!(perturbed_boundary_model(4, 1, -0.1, 0).is_err());
        assert!(perturbed_boundary_model(4, 1, f64::NAN, 0).is_err());
    }

    #[test]
    fn banded_model_margin_zero_is_passive_with_finite_frequency_graze() {
        for seed in 0..4 {
            let model = banded_boundary_model(2, 0.0, 2.0, seed).unwrap();
            assert!(model.expected_passive);
            assert_eq!(model.system.order(), 2 * 2 + 2);
            assert!(
                popov_min_over(&model.system, &[0.0, 0.5, 1.0, 2.0, 4.0, 20.0, 1e4]) >= -1e-9,
                "seed {seed} dipped negative"
            );
            // The graze at ω₀ sits within the documented slack of the boundary.
            let g = transfer::evaluate_jomega(&model.system, 2.0).unwrap();
            let at_witness = g.popov_min_eigenvalue().unwrap();
            assert!(
                (0.0..=3.0 * BAND_SLACK).contains(&at_witness),
                "seed {seed}: graze λ_min = {at_witness}"
            );
        }
    }

    #[test]
    fn banded_model_violation_is_band_limited_around_omega0() {
        let margin = 0.3;
        let omega0 = 2.0;
        let model = banded_boundary_model(2, margin, omega0, 7).unwrap();
        assert!(!model.expected_passive);
        // Exactly −margin (within the slack) at the witness frequency…
        let g = transfer::evaluate_jomega(&model.system, omega0).unwrap();
        let at_witness = g.popov_min_eigenvalue().unwrap();
        assert!(
            (at_witness + margin).abs() < 1e-5,
            "expected λ_min ≈ −{margin} at ω₀, got {at_witness}"
        );
        // …but positive at DC and at high frequency: the violation is a band
        // interior to the axis, not a tail (ω = ∞ stays clean).
        for &w in &[0.0, 0.05, 200.0, 1e5] {
            let g = transfer::evaluate_jomega(&model.system, w).unwrap();
            assert!(
                g.popov_min_eigenvalue().unwrap() > 0.0,
                "violation leaked to ω = {w}"
            );
        }
    }

    #[test]
    fn banded_model_parameter_validation() {
        assert!(banded_boundary_model(0, 0.1, 1.0, 0).is_err());
        assert!(banded_boundary_model(2, -0.1, 1.0, 0).is_err());
        assert!(banded_boundary_model(2, f64::NAN, 1.0, 0).is_err());
        assert!(banded_boundary_model(2, 0.1, 0.0, 0).is_err());
        assert!(banded_boundary_model(2, 0.1, f64::INFINITY, 0).is_err());
    }

    #[test]
    fn banded_model_deterministic_for_fixed_seed() {
        let a = banded_boundary_model(3, 0.2, 1.5, 11).unwrap();
        let b = banded_boundary_model(3, 0.2, 1.5, 11).unwrap();
        assert_eq!(a.system, b.system);
    }

    #[test]
    fn perturbed_model_deterministic_for_fixed_seed() {
        let a = perturbed_boundary_model(4, 1, 0.3, 11).unwrap();
        let b = perturbed_boundary_model(4, 1, 0.3, 11).unwrap();
        assert_eq!(a.system, b.system);
    }
}
