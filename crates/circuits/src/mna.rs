//! Modified nodal analysis (MNA): stamping a [`Netlist`] into a
//! [`DescriptorSystem`].
//!
//! States are the node voltages `v ∈ R^{N}` followed by the inductor branch
//! currents `i_L ∈ R^{L}`.  With current-driven ports the equations are
//!
//! ```text
//! C v' = −G v − A_L i_L + A_P u        (KCL at every node)
//! L i_L' =  A_Lᵀ v                      (branch equations)
//!     y  =  A_Pᵀ v                      (port voltages)
//! ```
//!
//! giving `E = diag(C, L)`, which is singular whenever some node carries no
//! capacitance.  With `K` couplings the `L` block becomes a full symmetric
//! matrix (`M = k·√(L₁·L₂)` off the diagonal); the stamper rejects a coupled
//! inductance matrix that is not positive semidefinite, so the resulting
//! impedance-type model is passive whenever every element value is
//! non-negative.

use crate::error::CircuitError;
use crate::netlist::{Element, Netlist, Port};
use ds_descriptor::DescriptorSystem;
use ds_linalg::decomp::symmetric;
use ds_linalg::Matrix;

/// Stamps the netlist into an MNA descriptor system (impedance formulation:
/// port currents in, port voltages out).
///
/// # Errors
///
/// Returns validation errors from [`Netlist::validate`] and propagates
/// descriptor-construction failures.
pub fn stamp(netlist: &Netlist) -> Result<DescriptorSystem, CircuitError> {
    netlist.validate()?;
    let n_nodes = netlist.num_nodes;
    let n_ind = netlist.num_inductors();
    let n = n_nodes + n_ind;
    let m = netlist.ports.len();

    let mut cap = Matrix::zeros(n_nodes, n_nodes);
    let mut cond = Matrix::zeros(n_nodes, n_nodes);
    let mut ind = Matrix::zeros(n_ind, n_ind);
    let mut incidence_l = Matrix::zeros(n_nodes, n_ind);

    let mut l_index = 0usize;
    for element in &netlist.elements {
        match *element {
            Element::Resistor { a, b, value } => {
                // A zero-ohm resistor would be a short; treat tiny |R| as an error.
                if value.abs() < 1e-300 {
                    return Err(CircuitError::BadElementValue {
                        details: "resistor with zero resistance".into(),
                    });
                }
                let g = 1.0 / value;
                stamp_two_terminal(&mut cond, a, b, g);
            }
            Element::Conductance { a, b, value } => {
                stamp_two_terminal(&mut cond, a, b, value);
            }
            Element::Capacitor { a, b, value } => {
                stamp_two_terminal(&mut cap, a, b, value);
            }
            Element::Inductor { a, b, value } => {
                ind[(l_index, l_index)] = value;
                if a > 0 {
                    incidence_l[(a - 1, l_index)] += 1.0;
                }
                if b > 0 {
                    incidence_l[(b - 1, l_index)] -= 1.0;
                }
                l_index += 1;
            }
        }
    }

    // Mutual inductance: `K` couplings fill in the off-diagonal of the L
    // block.  `validate()` already checked each |k| ≤ 1, but several
    // couplings sharing inductors can still make the joint matrix
    // indefinite — an unphysical inductance configuration the stamper
    // rejects rather than silently producing a bogus descriptor model.
    if !netlist.couplings.is_empty() {
        for (p, q, k) in netlist.resolved_couplings()? {
            let m = k * (ind[(p, p)] * ind[(q, q)]).sqrt();
            ind[(p, q)] += m;
            ind[(q, p)] += m;
        }
        let scale = ind.diagonal().iter().fold(1.0f64, |acc, &d| acc.max(d));
        let min = symmetric::min_eigenvalue(&ind).map_err(|e| CircuitError::BadElementValue {
            details: format!("inductance-matrix eigenvalue check failed: {e}"),
        })?;
        if min < -1e-12 * scale {
            return Err(CircuitError::BadElementValue {
                details: format!(
                    "coupled inductance matrix is not positive semidefinite (λ_min = {min:.3e})"
                ),
            });
        }
    }

    // Port incidence matrix.
    let mut incidence_p = Matrix::zeros(n_nodes, m);
    for (j, port) in netlist.ports.iter().enumerate() {
        apply_port(&mut incidence_p, port, j);
    }

    // Assemble E, A, B, C, D.
    let e = Matrix::block_diag(&[&cap, &ind]);
    let a = Matrix::from_blocks_2x2(
        &cond.scale(-1.0),
        &incidence_l.scale(-1.0),
        &incidence_l.transpose(),
        &Matrix::zeros(n_ind, n_ind),
    );
    let b = Matrix::vstack(&[&incidence_p, &Matrix::zeros(n_ind, m)]);
    let c = b.transpose();
    let d = Matrix::zeros(m, m);
    let sys = DescriptorSystem::new(e, a, b, c, d)?;
    debug_assert_eq!(sys.order(), n);
    Ok(sys)
}

fn stamp_two_terminal(matrix: &mut Matrix, a: usize, b: usize, value: f64) {
    if a > 0 {
        matrix[(a - 1, a - 1)] += value;
    }
    if b > 0 {
        matrix[(b - 1, b - 1)] += value;
    }
    if a > 0 && b > 0 {
        matrix[(a - 1, b - 1)] -= value;
        matrix[(b - 1, a - 1)] -= value;
    }
}

fn apply_port(incidence: &mut Matrix, port: &Port, column: usize) {
    if port.node_plus > 0 {
        incidence[(port.node_plus - 1, column)] += 1.0;
    }
    if port.node_minus > 0 {
        incidence[(port.node_minus - 1, column)] -= 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_descriptor::transfer;
    use ds_linalg::Complex;

    #[test]
    fn parallel_rc_impedance() {
        // R ∥ C from node 1 to ground: Z(s) = R / (1 + sRC).
        let mut net = Netlist::new(1);
        net.resistor(1, 0, 2.0)
            .capacitor(1, 0, 0.5)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        assert_eq!(sys.order(), 1);
        let z = transfer::evaluate_jomega(&sys, 1.0).unwrap();
        // Z(j1) = 2 / (1 + j·1·1) = 1 − j.
        assert!((z.re[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((z.im[(0, 0)] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_rl_impedance_is_impulsive() {
        // Port at node 1, R from 1 to 2, L from 2 to ground: Z(s) = R + sL.
        let mut net = Netlist::new(2);
        net.resistor(1, 2, 3.0)
            .inductor(2, 0, 0.25)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        assert_eq!(sys.order(), 3);
        let z = transfer::evaluate(&sys, Complex::new(0.0, 4.0)).unwrap();
        assert!((z.re[(0, 0)] - 3.0).abs() < 1e-10);
        assert!((z.im[(0, 0)] - 1.0).abs() < 1e-10);
        // E is singular (node voltages carry no capacitance).
        assert!(sys.rank_e(1e-12).unwrap() < sys.order());
        // The model is NOT impulse-free: Z(s) grows like sL.
        assert!(!ds_descriptor::impulse::is_impulse_free(&sys, 1e-10).unwrap());
    }

    #[test]
    fn rc_divider_dc_value() {
        // R1 from port node 1 to node 2, R2 from node 2 to ground,
        // C across R2.  Z(0) = R1 + R2.
        let mut net = Netlist::new(2);
        net.resistor(1, 2, 1.5)
            .resistor(2, 0, 2.5)
            .capacitor(2, 0, 1.0)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        let z0 = transfer::evaluate_jomega(&sys, 0.0).unwrap();
        assert!((z0.re[(0, 0)] - 4.0).abs() < 1e-10);
        // At high frequency the capacitor shorts node 2: Z → R1.
        let zhi = transfer::evaluate_jomega(&sys, 1e7).unwrap();
        assert!((zhi.re[(0, 0)] - 1.5).abs() < 1e-5);
    }

    #[test]
    fn two_port_symmetry() {
        // Symmetric resistive Π network between two ports.
        let mut net = Netlist::new(2);
        net.resistor(1, 0, 1.0)
            .resistor(2, 0, 1.0)
            .resistor(1, 2, 2.0)
            .capacitor(1, 0, 0.1)
            .capacitor(2, 0, 0.1)
            .port(Port::to_ground(1))
            .port(Port::to_ground(2));
        let sys = stamp(&net).unwrap();
        assert_eq!(sys.num_inputs(), 2);
        let z = transfer::evaluate_jomega(&sys, 2.0).unwrap();
        // Reciprocal network: Z12 = Z21.
        assert!((z.re[(0, 1)] - z.re[(1, 0)]).abs() < 1e-12);
        assert!((z.im[(0, 1)] - z.im[(1, 0)]).abs() < 1e-12);
    }

    #[test]
    fn floating_port_between_nodes() {
        // Port across a resistor between nodes 1 and 2, both tied to ground
        // through resistors.
        let mut net = Netlist::new(2);
        net.resistor(1, 0, 1.0)
            .resistor(2, 0, 1.0)
            .resistor(1, 2, 1.0)
            .capacitor(1, 0, 1.0)
            .port(Port {
                node_plus: 1,
                node_minus: 2,
            });
        let sys = stamp(&net).unwrap();
        let z0 = transfer::evaluate_jomega(&sys, 0.0).unwrap();
        // Differential resistance of the bridge: 1Ω ∥ (1Ω + 1Ω) = 2/3 Ω.
        assert!((z0.re[(0, 0)] - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn conductance_stamps_like_an_admittance() {
        // G ∥ C from node 1 to ground behaves exactly like R = 1/G ∥ C.
        let mut net = Netlist::new(1);
        net.conductance(1, 0, 0.5)
            .capacitor(1, 0, 0.5)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        let z = transfer::evaluate_jomega(&sys, 1.0).unwrap();
        // Z(j1) = 2 / (1 + j·1·1) = 1 − j, as in `parallel_rc_impedance`.
        assert!((z.re[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((z.im[(0, 0)] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn coupled_inductors_stamp_a_symmetric_psd_l_block() {
        // Transformer: primary L1 across the port, secondary L2 loaded by R,
        // coupled with k = 0.5 ⇒ Z(s) = sL1 − s²M²/(sL2 + R), M = k√(L1·L2).
        let mut net = Netlist::new(2);
        net.named_inductor("L1", 1, 0, 1.0)
            .named_inductor("L2", 2, 0, 1.0)
            .resistor(2, 0, 1.0)
            .couple("K1", "L1", "L2", 0.5)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        // The L block of E is symmetric with M = 0.5 on the off-diagonal.
        let n_nodes = 2;
        assert_eq!(sys.e()[(n_nodes, n_nodes + 1)], 0.5);
        assert_eq!(sys.e()[(n_nodes + 1, n_nodes)], 0.5);
        // Z(j1) = j + 0.25/(1 + j) = 0.125 + 0.875j.
        let z = transfer::evaluate_jomega(&sys, 1.0).unwrap();
        assert!((z.re[(0, 0)] - 0.125).abs() < 1e-10);
        assert!((z.im[(0, 0)] - 0.875).abs() < 1e-10);
    }

    #[test]
    fn indefinite_coupled_inductance_matrix_is_rejected() {
        // Pairwise |k| ≤ 1 but the joint 3×3 matrix is indefinite.
        let mut net = Netlist::new(3);
        net.named_inductor("LA", 1, 0, 1.0)
            .named_inductor("LB", 2, 0, 1.0)
            .named_inductor("LC", 3, 0, 1.0)
            .couple("K1", "LA", "LB", 0.9)
            .couple("K2", "LB", "LC", 0.9)
            .couple("K3", "LA", "LC", -0.9)
            .port(Port::to_ground(1));
        assert!(matches!(
            stamp(&net),
            Err(CircuitError::BadElementValue { details })
                if details.contains("not positive semidefinite")
        ));
    }

    #[test]
    fn coupling_to_unknown_inductor_fails_at_stamp_time() {
        let mut net = Netlist::new(2);
        net.named_inductor("L1", 1, 2, 1.0)
            .resistor(2, 0, 1.0)
            .couple("K1", "L1", "L9", 0.2)
            .port(Port::to_ground(1));
        assert!(matches!(
            stamp(&net),
            Err(CircuitError::CouplingTargetNotFound { .. })
        ));
    }

    #[test]
    fn zero_resistance_rejected() {
        let mut net = Netlist::new(1);
        net.resistor(1, 0, 0.0).port(Port::to_ground(1));
        assert!(matches!(
            stamp(&net),
            Err(CircuitError::BadElementValue { .. })
        ));
    }

    #[test]
    fn passive_ladder_popov_nonnegative() {
        let mut net = Netlist::new(3);
        net.resistor(1, 2, 1.0)
            .capacitor(2, 0, 1.0)
            .resistor(2, 3, 1.0)
            .capacitor(3, 0, 2.0)
            .resistor(3, 0, 5.0)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        for &w in &[0.0, 0.1, 1.0, 10.0, 100.0] {
            let g = transfer::evaluate_jomega(&sys, w).unwrap();
            assert!(g.popov_min_eigenvalue().unwrap() >= -1e-10);
        }
    }
}
