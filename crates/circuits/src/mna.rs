//! Modified nodal analysis (MNA): stamping a [`Netlist`] into a
//! [`DescriptorSystem`].
//!
//! States are the node voltages `v ∈ R^{N}` followed by the inductor branch
//! currents `i_L ∈ R^{L}`.  With current-driven ports the equations are
//!
//! ```text
//! C v' = −G v − A_L i_L + A_P u        (KCL at every node)
//! L i_L' =  A_Lᵀ v                      (branch equations)
//!     y  =  A_Pᵀ v                      (port voltages)
//! ```
//!
//! giving `E = diag(C, L)`, which is singular whenever some node carries no
//! capacitance.  With `K` couplings the `L` block becomes a full symmetric
//! matrix (`M = k·√(L₁·L₂)` off the diagonal); the stamper rejects a coupled
//! inductance matrix that is not positive semidefinite, so the resulting
//! impedance-type model is passive whenever every element value is
//! non-negative.

use crate::error::CircuitError;
use crate::netlist::{Element, Netlist, Port};
use ds_descriptor::DescriptorSystem;
use ds_linalg::decomp::symmetric;
use ds_linalg::sparse::{Coo, Csr};
use ds_linalg::Matrix;

/// Stamps the netlist into an MNA descriptor system (impedance formulation:
/// port currents in, port voltages out).
///
/// # Errors
///
/// Returns validation errors from [`Netlist::validate`] and propagates
/// descriptor-construction failures.
pub fn stamp(netlist: &Netlist) -> Result<DescriptorSystem, CircuitError> {
    netlist.validate()?;
    let n_nodes = netlist.num_nodes;
    let n_ind = netlist.num_inductors();
    let n = n_nodes + n_ind;
    let m = netlist.ports.len();

    let mut cap = Matrix::zeros(n_nodes, n_nodes);
    let mut cond = Matrix::zeros(n_nodes, n_nodes);
    let mut ind = Matrix::zeros(n_ind, n_ind);
    let mut incidence_l = Matrix::zeros(n_nodes, n_ind);

    let mut l_index = 0usize;
    for element in &netlist.elements {
        match *element {
            Element::Resistor { a, b, value } => {
                let g = resistor_conductance(value)?;
                stamp_two_terminal(&mut cond, a, b, g);
            }
            Element::Conductance { a, b, value } => {
                stamp_two_terminal(&mut cond, a, b, value);
            }
            Element::Capacitor { a, b, value } => {
                stamp_two_terminal(&mut cap, a, b, value);
            }
            Element::Inductor { a, b, value } => {
                ind[(l_index, l_index)] = value;
                if a > 0 {
                    incidence_l[(a - 1, l_index)] += 1.0;
                }
                if b > 0 {
                    incidence_l[(b - 1, l_index)] -= 1.0;
                }
                l_index += 1;
            }
        }
    }

    // Mutual inductance: `K` couplings fill in the off-diagonal of the L
    // block.  `validate()` already checked each |k| ≤ 1, but several
    // couplings sharing inductors can still make the joint matrix
    // indefinite — an unphysical inductance configuration the stamper
    // rejects rather than silently producing a bogus descriptor model.
    if !netlist.couplings.is_empty() {
        let resolved = netlist.resolved_couplings()?;
        for &(p, q, k) in &resolved {
            let m = k * (ind[(p, p)] * ind[(q, q)]).sqrt();
            ind[(p, q)] += m;
            ind[(q, p)] += m;
        }
        let values: Vec<f64> = (0..n_ind).map(|i| ind[(i, i)]).collect();
        validate_coupled_inductance(&values, &resolved)?;
    }

    // Port incidence matrix.
    let mut incidence_p = Matrix::zeros(n_nodes, m);
    for (j, port) in netlist.ports.iter().enumerate() {
        apply_port(&mut incidence_p, port, j);
    }

    // Assemble E, A, B, C, D.
    let e = Matrix::block_diag(&[&cap, &ind]);
    let a = Matrix::from_blocks_2x2(
        &cond.scale(-1.0),
        &incidence_l.scale(-1.0),
        &incidence_l.transpose(),
        &Matrix::zeros(n_ind, n_ind),
    );
    let b = Matrix::vstack(&[&incidence_p, &Matrix::zeros(n_ind, m)]);
    let c = b.transpose();
    let d = Matrix::zeros(m, m);
    let sys = DescriptorSystem::new(e, a, b, c, d)?;
    debug_assert_eq!(sys.order(), n);
    Ok(sys)
}

fn stamp_two_terminal(matrix: &mut Matrix, a: usize, b: usize, value: f64) {
    if a > 0 {
        matrix[(a - 1, a - 1)] += value;
    }
    if b > 0 {
        matrix[(b - 1, b - 1)] += value;
    }
    if a > 0 && b > 0 {
        matrix[(a - 1, b - 1)] -= value;
        matrix[(b - 1, a - 1)] -= value;
    }
}

fn apply_port(incidence: &mut Matrix, port: &Port, column: usize) {
    if port.node_plus > 0 {
        incidence[(port.node_plus - 1, column)] += 1.0;
    }
    if port.node_minus > 0 {
        incidence[(port.node_minus - 1, column)] -= 1.0;
    }
}

/// The element-value check both stampers share: a zero-ohm resistor would be
/// a short; treat tiny |R| as an error.
fn resistor_conductance(value: f64) -> Result<f64, CircuitError> {
    if value.abs() < 1e-300 {
        return Err(CircuitError::BadElementValue {
            details: "resistor with zero resistance".into(),
        });
    }
    Ok(1.0 / value)
}

/// The PSD guard both stampers share, at sparse-friendly cost: the coupled
/// inductance matrix is block-diagonal over the connected components of the
/// coupling graph, so its spectrum is the union of the (small) component
/// spectra — an order-10⁴ netlist with pairwise couplings never sees an
/// `O(n³)` whole-matrix eigensolve.  Uncoupled inductors have strictly
/// positive diagonal values (validated) and cannot produce the minimum.
fn validate_coupled_inductance(
    values: &[f64],
    resolved: &[(usize, usize, f64)],
) -> Result<(), CircuitError> {
    if resolved.is_empty() {
        return Ok(());
    }
    let scale = values.iter().fold(1.0f64, |acc, &d| acc.max(d));
    // Union-find over the coupling graph.
    let mut parent: Vec<usize> = (0..values.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for &(p, q, _) in resolved {
        let (rp, rq) = (find(&mut parent, p), find(&mut parent, q));
        parent[rp] = rq;
    }
    // Group the coupled inductors by component root.
    let mut members: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for &(p, q, _) in resolved {
        for i in [p, q] {
            let root = find(&mut parent, i);
            let slot = members.entry(root).or_default();
            if !slot.contains(&i) {
                slot.push(i);
            }
        }
    }
    let mut min = f64::INFINITY;
    for slot in members.values_mut() {
        slot.sort_unstable();
        let local: std::collections::HashMap<usize, usize> =
            slot.iter().enumerate().map(|(li, &gi)| (gi, li)).collect();
        let mut block = Matrix::zeros(slot.len(), slot.len());
        for (li, &gi) in slot.iter().enumerate() {
            block[(li, li)] = values[gi];
        }
        for &(p, q, k) in resolved {
            let (Some(&lp), Some(&lq)) = (local.get(&p), local.get(&q)) else {
                continue;
            };
            let m = k * (values[p] * values[q]).sqrt();
            block[(lp, lq)] += m;
            block[(lq, lp)] += m;
        }
        let block_min =
            symmetric::min_eigenvalue(&block).map_err(|e| CircuitError::BadElementValue {
                details: format!("inductance-matrix eigenvalue check failed: {e}"),
            })?;
        min = min.min(block_min);
    }
    if min < -1e-12 * scale {
        return Err(CircuitError::BadElementValue {
            details: format!(
                "coupled inductance matrix is not positive semidefinite (λ_min = {min:.3e})"
            ),
        });
    }
    Ok(())
}

/// The sparse MNA stamp of a netlist, in the PRIMA `(C, G, B, L)` form
///
/// ```text
/// C x' = −G x + B u,    y = Lᵀ x
/// ```
///
/// with `C = diag(C_cap, L_ind)` and `G = [[G_cond, A_L], [−A_Lᵀ, 0]]` —
/// exactly the blocks the dense [`stamp`] assembles into `E = C`, `A = −G`,
/// except no dense matrix is ever materialized.  [`SparseMna::to_dense`]
/// replays the dense assembly bit-for-bit (the COO→CSR conversion sums
/// duplicate entries in insertion order, matching the dense `+=` sequence),
/// which the conformance suite pins.
#[derive(Debug, Clone)]
pub struct SparseMna {
    /// Number of non-ground nodes.
    pub num_nodes: usize,
    /// Number of inductor branch currents.
    pub num_inductors: usize,
    /// Number of ports.
    pub num_ports: usize,
    cap: Csr,
    cond: Csr,
    ind: Csr,
    incidence_l: Csr,
    incidence_p: Csr,
}

impl SparseMna {
    /// MNA state dimension (node voltages + inductor currents).
    pub fn order(&self) -> usize {
        self.num_nodes + self.num_inductors
    }

    /// The PRIMA `C` block `diag(C_cap, L_ind)` (the descriptor `E`).
    pub fn c_matrix(&self) -> Csr {
        let n = self.order();
        let mut coo = Coo::with_capacity(n, n, self.cap.nnz() + self.ind.nnz());
        push_block(&mut coo, &self.cap, 0, 0, 1.0);
        push_block(&mut coo, &self.ind, self.num_nodes, self.num_nodes, 1.0);
        coo.to_csr()
    }

    /// The PRIMA `G` block `[[G_cond, A_L], [−A_Lᵀ, 0]]` (the negated
    /// descriptor `A`).
    pub fn g_matrix(&self) -> Csr {
        let n = self.order();
        let nnz = self.cond.nnz() + 2 * self.incidence_l.nnz();
        let mut coo = Coo::with_capacity(n, n, nnz);
        push_block(&mut coo, &self.cond, 0, 0, 1.0);
        push_block(&mut coo, &self.incidence_l, 0, self.num_nodes, 1.0);
        push_block(
            &mut coo,
            &self.incidence_l.transpose(),
            self.num_nodes,
            0,
            -1.0,
        );
        coo.to_csr()
    }

    /// The port map `B = [A_P; 0]` as a dense `n × m` matrix (ports are few;
    /// `L = B` in the impedance formulation, which is what makes the
    /// congruence projection passivity-preserving).
    pub fn b_dense(&self) -> Matrix {
        let mut b = Matrix::zeros(self.order(), self.num_ports);
        for r in 0..self.num_nodes {
            let (cols, vals) = self.incidence_p.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                b[(r, c)] = v;
            }
        }
        b
    }

    /// Densifies into the same [`DescriptorSystem`] the dense [`stamp`]
    /// produces — bit-identical, because each sparse block accumulated its
    /// entries in the dense stamp's order and the assembly below is the
    /// dense stamper's own code path.
    ///
    /// # Errors
    ///
    /// Propagates descriptor-construction failures.
    pub fn to_dense(&self) -> Result<DescriptorSystem, CircuitError> {
        let cap = self.cap.to_dense();
        let cond = self.cond.to_dense();
        let ind = self.ind.to_dense();
        let incidence_l = self.incidence_l.to_dense();
        let incidence_p = self.incidence_p.to_dense();
        let n_ind = self.num_inductors;
        let m = self.num_ports;
        let e = Matrix::block_diag(&[&cap, &ind]);
        let a = Matrix::from_blocks_2x2(
            &cond.scale(-1.0),
            &incidence_l.scale(-1.0),
            &incidence_l.transpose(),
            &Matrix::zeros(n_ind, n_ind),
        );
        let b = Matrix::vstack(&[&incidence_p, &Matrix::zeros(n_ind, m)]);
        let c = b.transpose();
        let d = Matrix::zeros(m, m);
        Ok(DescriptorSystem::new(e, a, b, c, d)?)
    }
}

/// Appends every entry of `block`, scaled, at a row/column offset.
fn push_block(coo: &mut Coo, block: &Csr, row_off: usize, col_off: usize, scale: f64) {
    for r in 0..block.rows() {
        let (cols, vals) = block.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            coo.push(row_off + r, col_off + c, scale * v);
        }
    }
}

/// Stamps the netlist directly into sparse `(C, G, B, L)` MNA form — the
/// entry point of the reduce-then-verify path.  Shares element and coupling
/// validation with the dense [`stamp`]; the PSD guard on the coupled
/// inductance matrix runs per connected component of the coupling graph, so
/// it scales to order-10⁴ netlists.
///
/// # Errors
///
/// Same contract as [`stamp`]: netlist validation errors, the zero-resistance
/// check, and the indefinite-coupling rejection.
pub fn stamp_sparse(netlist: &Netlist) -> Result<SparseMna, CircuitError> {
    netlist.validate()?;
    let n_nodes = netlist.num_nodes;
    let n_ind = netlist.num_inductors();
    let m = netlist.ports.len();

    let mut cap = Coo::new(n_nodes, n_nodes);
    let mut cond = Coo::new(n_nodes, n_nodes);
    let mut ind = Coo::new(n_ind, n_ind);
    let mut incidence_l = Coo::new(n_nodes, n_ind);
    let mut l_values = Vec::with_capacity(n_ind);

    let mut l_index = 0usize;
    for element in &netlist.elements {
        match *element {
            Element::Resistor { a, b, value } => {
                let g = resistor_conductance(value)?;
                stamp_two_terminal_sparse(&mut cond, a, b, g);
            }
            Element::Conductance { a, b, value } => {
                stamp_two_terminal_sparse(&mut cond, a, b, value);
            }
            Element::Capacitor { a, b, value } => {
                stamp_two_terminal_sparse(&mut cap, a, b, value);
            }
            Element::Inductor { a, b, value } => {
                ind.push(l_index, l_index, value);
                l_values.push(value);
                if a > 0 {
                    incidence_l.push(a - 1, l_index, 1.0);
                }
                if b > 0 {
                    incidence_l.push(b - 1, l_index, -1.0);
                }
                l_index += 1;
            }
        }
    }

    if !netlist.couplings.is_empty() {
        let resolved = netlist.resolved_couplings()?;
        for &(p, q, k) in &resolved {
            let m = k * (l_values[p] * l_values[q]).sqrt();
            ind.push(p, q, m);
            ind.push(q, p, m);
        }
        validate_coupled_inductance(&l_values, &resolved)?;
    }

    let mut incidence_p = Coo::new(n_nodes, m);
    for (j, port) in netlist.ports.iter().enumerate() {
        if port.node_plus > 0 {
            incidence_p.push(port.node_plus - 1, j, 1.0);
        }
        if port.node_minus > 0 {
            incidence_p.push(port.node_minus - 1, j, -1.0);
        }
    }

    Ok(SparseMna {
        num_nodes: n_nodes,
        num_inductors: n_ind,
        num_ports: m,
        cap: cap.to_csr(),
        cond: cond.to_csr(),
        ind: ind.to_csr(),
        incidence_l: incidence_l.to_csr(),
        incidence_p: incidence_p.to_csr(),
    })
}

/// The sparse twin of [`stamp_two_terminal`]: pushing `−value` is IEEE-exact
/// for the dense `-=` (subtraction is addition of the negation), and the
/// COO→CSR conversion replays the per-cell accumulation in this insertion
/// order.
fn stamp_two_terminal_sparse(coo: &mut Coo, a: usize, b: usize, value: f64) {
    if a > 0 {
        coo.push(a - 1, a - 1, value);
    }
    if b > 0 {
        coo.push(b - 1, b - 1, value);
    }
    if a > 0 && b > 0 {
        coo.push(a - 1, b - 1, -value);
        coo.push(b - 1, a - 1, -value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_descriptor::transfer;
    use ds_linalg::Complex;

    #[test]
    fn parallel_rc_impedance() {
        // R ∥ C from node 1 to ground: Z(s) = R / (1 + sRC).
        let mut net = Netlist::new(1);
        net.resistor(1, 0, 2.0)
            .capacitor(1, 0, 0.5)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        assert_eq!(sys.order(), 1);
        let z = transfer::evaluate_jomega(&sys, 1.0).unwrap();
        // Z(j1) = 2 / (1 + j·1·1) = 1 − j.
        assert!((z.re[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((z.im[(0, 0)] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn series_rl_impedance_is_impulsive() {
        // Port at node 1, R from 1 to 2, L from 2 to ground: Z(s) = R + sL.
        let mut net = Netlist::new(2);
        net.resistor(1, 2, 3.0)
            .inductor(2, 0, 0.25)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        assert_eq!(sys.order(), 3);
        let z = transfer::evaluate(&sys, Complex::new(0.0, 4.0)).unwrap();
        assert!((z.re[(0, 0)] - 3.0).abs() < 1e-10);
        assert!((z.im[(0, 0)] - 1.0).abs() < 1e-10);
        // E is singular (node voltages carry no capacitance).
        assert!(sys.rank_e(1e-12).unwrap() < sys.order());
        // The model is NOT impulse-free: Z(s) grows like sL.
        assert!(!ds_descriptor::impulse::is_impulse_free(&sys, 1e-10).unwrap());
    }

    #[test]
    fn rc_divider_dc_value() {
        // R1 from port node 1 to node 2, R2 from node 2 to ground,
        // C across R2.  Z(0) = R1 + R2.
        let mut net = Netlist::new(2);
        net.resistor(1, 2, 1.5)
            .resistor(2, 0, 2.5)
            .capacitor(2, 0, 1.0)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        let z0 = transfer::evaluate_jomega(&sys, 0.0).unwrap();
        assert!((z0.re[(0, 0)] - 4.0).abs() < 1e-10);
        // At high frequency the capacitor shorts node 2: Z → R1.
        let zhi = transfer::evaluate_jomega(&sys, 1e7).unwrap();
        assert!((zhi.re[(0, 0)] - 1.5).abs() < 1e-5);
    }

    #[test]
    fn two_port_symmetry() {
        // Symmetric resistive Π network between two ports.
        let mut net = Netlist::new(2);
        net.resistor(1, 0, 1.0)
            .resistor(2, 0, 1.0)
            .resistor(1, 2, 2.0)
            .capacitor(1, 0, 0.1)
            .capacitor(2, 0, 0.1)
            .port(Port::to_ground(1))
            .port(Port::to_ground(2));
        let sys = stamp(&net).unwrap();
        assert_eq!(sys.num_inputs(), 2);
        let z = transfer::evaluate_jomega(&sys, 2.0).unwrap();
        // Reciprocal network: Z12 = Z21.
        assert!((z.re[(0, 1)] - z.re[(1, 0)]).abs() < 1e-12);
        assert!((z.im[(0, 1)] - z.im[(1, 0)]).abs() < 1e-12);
    }

    #[test]
    fn floating_port_between_nodes() {
        // Port across a resistor between nodes 1 and 2, both tied to ground
        // through resistors.
        let mut net = Netlist::new(2);
        net.resistor(1, 0, 1.0)
            .resistor(2, 0, 1.0)
            .resistor(1, 2, 1.0)
            .capacitor(1, 0, 1.0)
            .port(Port {
                node_plus: 1,
                node_minus: 2,
            });
        let sys = stamp(&net).unwrap();
        let z0 = transfer::evaluate_jomega(&sys, 0.0).unwrap();
        // Differential resistance of the bridge: 1Ω ∥ (1Ω + 1Ω) = 2/3 Ω.
        assert!((z0.re[(0, 0)] - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn conductance_stamps_like_an_admittance() {
        // G ∥ C from node 1 to ground behaves exactly like R = 1/G ∥ C.
        let mut net = Netlist::new(1);
        net.conductance(1, 0, 0.5)
            .capacitor(1, 0, 0.5)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        let z = transfer::evaluate_jomega(&sys, 1.0).unwrap();
        // Z(j1) = 2 / (1 + j·1·1) = 1 − j, as in `parallel_rc_impedance`.
        assert!((z.re[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((z.im[(0, 0)] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn coupled_inductors_stamp_a_symmetric_psd_l_block() {
        // Transformer: primary L1 across the port, secondary L2 loaded by R,
        // coupled with k = 0.5 ⇒ Z(s) = sL1 − s²M²/(sL2 + R), M = k√(L1·L2).
        let mut net = Netlist::new(2);
        net.named_inductor("L1", 1, 0, 1.0)
            .named_inductor("L2", 2, 0, 1.0)
            .resistor(2, 0, 1.0)
            .couple("K1", "L1", "L2", 0.5)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        // The L block of E is symmetric with M = 0.5 on the off-diagonal.
        let n_nodes = 2;
        assert_eq!(sys.e()[(n_nodes, n_nodes + 1)], 0.5);
        assert_eq!(sys.e()[(n_nodes + 1, n_nodes)], 0.5);
        // Z(j1) = j + 0.25/(1 + j) = 0.125 + 0.875j.
        let z = transfer::evaluate_jomega(&sys, 1.0).unwrap();
        assert!((z.re[(0, 0)] - 0.125).abs() < 1e-10);
        assert!((z.im[(0, 0)] - 0.875).abs() < 1e-10);
    }

    #[test]
    fn indefinite_coupled_inductance_matrix_is_rejected() {
        // Pairwise |k| ≤ 1 but the joint 3×3 matrix is indefinite.
        let mut net = Netlist::new(3);
        net.named_inductor("LA", 1, 0, 1.0)
            .named_inductor("LB", 2, 0, 1.0)
            .named_inductor("LC", 3, 0, 1.0)
            .couple("K1", "LA", "LB", 0.9)
            .couple("K2", "LB", "LC", 0.9)
            .couple("K3", "LA", "LC", -0.9)
            .port(Port::to_ground(1));
        assert!(matches!(
            stamp(&net),
            Err(CircuitError::BadElementValue { details })
                if details.contains("not positive semidefinite")
        ));
    }

    #[test]
    fn coupling_to_unknown_inductor_fails_at_stamp_time() {
        let mut net = Netlist::new(2);
        net.named_inductor("L1", 1, 2, 1.0)
            .resistor(2, 0, 1.0)
            .couple("K1", "L1", "L9", 0.2)
            .port(Port::to_ground(1));
        assert!(matches!(
            stamp(&net),
            Err(CircuitError::CouplingTargetNotFound { .. })
        ));
    }

    #[test]
    fn zero_resistance_rejected() {
        let mut net = Netlist::new(1);
        net.resistor(1, 0, 0.0).port(Port::to_ground(1));
        assert!(matches!(
            stamp(&net),
            Err(CircuitError::BadElementValue { .. })
        ));
    }

    fn assert_bit_identical(netlist: &Netlist) {
        let dense = stamp(netlist).unwrap();
        let sparse = stamp_sparse(netlist).unwrap().to_dense().unwrap();
        assert_eq!(dense.order(), sparse.order());
        assert_eq!(dense.num_inputs(), sparse.num_inputs());
        let pairs = [
            (dense.e(), sparse.e()),
            (dense.a(), sparse.a()),
            (dense.b(), sparse.b()),
            (dense.c(), sparse.c()),
            (dense.d(), sparse.d()),
        ];
        for (d, s) in pairs {
            assert_eq!(d.rows(), s.rows());
            assert_eq!(d.cols(), s.cols());
            for i in 0..d.rows() {
                for j in 0..d.cols() {
                    assert_eq!(
                        d[(i, j)].to_bits(),
                        s[(i, j)].to_bits(),
                        "mismatch at ({i}, {j}): {} vs {}",
                        d[(i, j)],
                        s[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_stamp_is_bit_identical_to_dense_on_rlc_with_couplings() {
        let mut net = Netlist::new(4);
        net.resistor(1, 2, 3.0)
            .capacitor(2, 0, 0.5)
            .named_inductor("L1", 2, 3, 0.25)
            .named_inductor("L2", 3, 4, 0.75)
            .conductance(3, 0, 0.1)
            .capacitor(4, 0, 1.5)
            .resistor(4, 0, 10.0)
            .couple("K1", "L1", "L2", 0.4)
            .port(Port::to_ground(1))
            .port(Port {
                node_plus: 3,
                node_minus: 4,
            });
        assert_bit_identical(&net);
    }

    #[test]
    fn sparse_stamp_is_bit_identical_on_a_floating_bridge() {
        let mut net = Netlist::new(2);
        net.resistor(1, 0, 1.0)
            .resistor(2, 0, 1.0)
            .resistor(1, 2, 1.0)
            .capacitor(1, 0, 1.0)
            .port(Port {
                node_plus: 1,
                node_minus: 2,
            });
        assert_bit_identical(&net);
    }

    #[test]
    fn sparse_stamp_matches_dense_transfer_function() {
        let mut net = Netlist::new(2);
        net.resistor(1, 2, 3.0)
            .inductor(2, 0, 0.25)
            .port(Port::to_ground(1));
        let sys = stamp_sparse(&net).unwrap().to_dense().unwrap();
        let z = transfer::evaluate(&sys, Complex::new(0.0, 4.0)).unwrap();
        assert!((z.re[(0, 0)] - 3.0).abs() < 1e-10);
        assert!((z.im[(0, 0)] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sparse_stamp_rejects_indefinite_coupling_and_zero_resistance() {
        let mut net = Netlist::new(3);
        net.named_inductor("LA", 1, 0, 1.0)
            .named_inductor("LB", 2, 0, 1.0)
            .named_inductor("LC", 3, 0, 1.0)
            .couple("K1", "LA", "LB", 0.9)
            .couple("K2", "LB", "LC", 0.9)
            .couple("K3", "LA", "LC", -0.9)
            .port(Port::to_ground(1));
        assert!(matches!(
            stamp_sparse(&net),
            Err(CircuitError::BadElementValue { details })
                if details.contains("not positive semidefinite")
        ));

        let mut short = Netlist::new(1);
        short.resistor(1, 0, 0.0).port(Port::to_ground(1));
        assert!(matches!(
            stamp_sparse(&short),
            Err(CircuitError::BadElementValue { .. })
        ));

        let mut dangling = Netlist::new(2);
        dangling
            .named_inductor("L1", 1, 2, 1.0)
            .resistor(2, 0, 1.0)
            .couple("K1", "L1", "L9", 0.2)
            .port(Port::to_ground(1));
        assert!(matches!(
            stamp_sparse(&dangling),
            Err(CircuitError::CouplingTargetNotFound { .. })
        ));
    }

    #[test]
    fn sparse_blocks_reconstruct_the_descriptor_pieces() {
        let mut net = Netlist::new(2);
        net.resistor(1, 2, 2.0)
            .inductor(2, 0, 0.5)
            .capacitor(1, 0, 0.25)
            .port(Port::to_ground(1));
        let mna = stamp_sparse(&net).unwrap();
        let dense = stamp(&net).unwrap();
        let c = mna.c_matrix().to_dense();
        let g = mna.g_matrix().to_dense();
        let b = mna.b_dense();
        let n = mna.order();
        assert_eq!(n, dense.order());
        for i in 0..n {
            for j in 0..n {
                assert!((c[(i, j)] - dense.e()[(i, j)]).abs() < 1e-15);
                assert!((g[(i, j)] + dense.a()[(i, j)]).abs() < 1e-15);
            }
            assert!((b[(i, 0)] - dense.b()[(i, 0)]).abs() < 1e-15);
        }
    }

    #[test]
    fn passive_ladder_popov_nonnegative() {
        let mut net = Netlist::new(3);
        net.resistor(1, 2, 1.0)
            .capacitor(2, 0, 1.0)
            .resistor(2, 3, 1.0)
            .capacitor(3, 0, 2.0)
            .resistor(3, 0, 5.0)
            .port(Port::to_ground(1));
        let sys = stamp(&net).unwrap();
        for &w in &[0.0, 0.1, 1.0, 10.0, 100.0] {
            let g = transfer::evaluate_jomega(&sys, w).unwrap();
            assert!(g.popov_min_eigenvalue().unwrap() >= -1e-10);
        }
    }
}
