//! Parametric circuit-model generators used by the benchmark harness.
//!
//! These play the role of the paper's "practical RLC circuit models of
//! different orders and number of impulsive modes" (Section 4): every generator
//! documents its exact state dimension so the Table-1 / Figure-2 order sweep
//! can be reproduced.

use crate::error::CircuitError;
use crate::mna;
use crate::netlist::{Netlist, Port};
use ds_descriptor::DescriptorSystem;

/// A generated circuit model together with ground-truth metadata used by the
/// benchmarks and tests.
#[derive(Debug, Clone)]
pub struct CircuitModel {
    /// Human-readable name of the generator and parameters.
    pub name: String,
    /// The MNA descriptor system.
    pub system: DescriptorSystem,
    /// Whether the model is passive by construction.
    pub expected_passive: bool,
    /// Whether the model contains impulsive modes by construction
    /// (an inductive path from a port that forces `Z(s) ~ sL` at infinity).
    pub has_impulsive_modes: bool,
}

/// RC ladder: `sections` series resistors with shunt capacitors, driven from a
/// single port.  State dimension = `sections + 1` (the port node carries no
/// capacitor, producing one nondynamic mode).
///
/// # Errors
///
/// Propagates netlist validation / stamping failures.
pub fn rc_ladder(sections: usize, r: f64, c: f64) -> Result<CircuitModel, CircuitError> {
    if sections == 0 {
        return Err(CircuitError::UnrealizableOrder {
            requested: 0,
            details: "rc_ladder needs at least one section".into(),
        });
    }
    let num_nodes = sections + 1;
    let mut net = Netlist::new(num_nodes);
    net.port(Port::to_ground(1));
    for k in 0..sections {
        let a = k + 1;
        let b = k + 2;
        net.resistor(a, b, r * (1.0 + 0.05 * k as f64));
        net.capacitor(b, 0, c * (1.0 + 0.03 * k as f64));
    }
    // A light load to ground keeps the DC impedance bounded.
    net.resistor(num_nodes, 0, 10.0 * r);
    let system = mna::stamp(&net)?;
    Ok(CircuitModel {
        name: format!("rc_ladder(sections={sections})"),
        system,
        expected_passive: true,
        has_impulsive_modes: false,
    })
}

/// RLC ladder: series R–L branches with shunt C, driven from a single port.
/// State dimension = `2·sections + 1`.
///
/// # Errors
///
/// Propagates netlist validation / stamping failures.
pub fn rlc_ladder(sections: usize, r: f64, l: f64, c: f64) -> Result<CircuitModel, CircuitError> {
    if sections == 0 {
        return Err(CircuitError::UnrealizableOrder {
            requested: 0,
            details: "rlc_ladder needs at least one section".into(),
        });
    }
    let num_nodes = sections + 1;
    let mut net = Netlist::new(num_nodes);
    net.port(Port::to_ground(1));
    for k in 0..sections {
        let a = k + 1;
        let b = k + 2;
        net.resistor(a, b, r * (1.0 + 0.02 * k as f64));
        net.inductor(a, b, l * (1.0 + 0.04 * k as f64));
        net.capacitor(b, 0, c * (1.0 + 0.01 * k as f64));
    }
    net.resistor(num_nodes, 0, 10.0 * r);
    let system = mna::stamp(&net)?;
    Ok(CircuitModel {
        name: format!("rlc_ladder(sections={sections})"),
        system,
        expected_passive: true,
        has_impulsive_modes: false,
    })
}

/// The netlist behind [`rlc_ladder`] — without stamping it, so order-10⁴
/// variants can go straight to [`mna::stamp_sparse`] with no dense
/// intermediate.  State dimension = `2·sections + 1`.
///
/// With `coupled`, disjoint inductor pairs `(2j, 2j+1)` are coupled with a
/// small positive `k`: the coupling graph stays a matching, so the sparse
/// PSD guard only ever sees 2×2 blocks and the netlist remains passive by
/// construction.
///
/// # Errors
///
/// Returns [`CircuitError::UnrealizableOrder`] for zero sections.
pub fn reduced_ladder_netlist(sections: usize, coupled: bool) -> Result<Netlist, CircuitError> {
    if sections == 0 {
        return Err(CircuitError::UnrealizableOrder {
            requested: 0,
            details: "reduced_ladder_netlist needs at least one section".into(),
        });
    }
    let (r, l, c) = (1.0, 0.5, 1.0);
    let num_nodes = sections + 1;
    let mut net = Netlist::new(num_nodes);
    net.port(Port::to_ground(1));
    for k in 0..sections {
        let a = k + 1;
        let b = k + 2;
        net.resistor(a, b, r * (1.0 + 0.02 * k as f64));
        if coupled {
            net.named_inductor(format!("L{k}"), a, b, l * (1.0 + 0.04 * k as f64));
        } else {
            net.inductor(a, b, l * (1.0 + 0.04 * k as f64));
        }
        net.capacitor(b, 0, c * (1.0 + 0.01 * k as f64));
    }
    if coupled {
        for j in 0..sections / 2 {
            let (p, q) = (2 * j, 2 * j + 1);
            net.couple(format!("K{j}"), format!("L{p}"), format!("L{q}"), 0.35);
        }
    }
    net.resistor(num_nodes, 0, 10.0 * r);
    Ok(net)
}

/// The Table-1 / Figure-2 workload: an RLC ladder whose port is fed through a
/// series inductor, so the impedance behaves like `s·L_port` at high frequency
/// — the model is passive *and* has impulsive modes (nonzero `M₁ ⪰ 0`).
///
/// The requested `order` is the exact MNA state dimension; it must be even and
/// at least 6.  Internally the model uses `(order − 4) / 2` ladder sections
/// (each contributing one node and one inductor) plus the port inductor, a
/// port node, and one purely algebraic (capacitor-free) internal node.
///
/// # Errors
///
/// Returns [`CircuitError::UnrealizableOrder`] for orders below 6 or odd
/// orders; propagates stamping failures.
pub fn rlc_ladder_with_impulsive(order: usize) -> Result<CircuitModel, CircuitError> {
    if order < 6 || !order.is_multiple_of(2) {
        return Err(CircuitError::UnrealizableOrder {
            requested: order,
            details: "rlc_ladder_with_impulsive needs an even order ≥ 6".into(),
        });
    }
    let sections = (order - 4) / 2;
    // Node layout (state dimension = nodes + inductors = (sections + 3) +
    // (sections + 1) = 2·sections + 4 = order):
    //   1              : port node (fed through the port inductor) — no shunt C
    //   2              : junction node — no shunt C (nondynamic mode)
    //   3..sections+2  : ladder nodes with shunt capacitors
    //   sections+3     : capacitive termination node
    let num_nodes = sections + 3;
    let mut net = Netlist::new(num_nodes);
    net.port(Port::to_ground(1));
    // Port inductor from the port node into the ladder: creates the sL part.
    net.inductor(1, 2, 0.8);
    // A shunt resistance behind the port inductor keeps the finite part
    // strictly dissipative without shorting the inductive behaviour at infinity.
    net.resistor(2, 0, 50.0);
    let mut prev = 2usize;
    for k in 0..sections {
        let node = 3 + k;
        net.resistor(prev, node, 1.0 + 0.01 * k as f64);
        net.inductor(prev, node, 0.5 + 0.005 * k as f64);
        net.capacitor(node, 0, 1.0 + 0.02 * k as f64);
        net.resistor(node, 0, 200.0);
        prev = node;
    }
    // Capacitive termination.
    net.resistor(prev, num_nodes, 1.0);
    net.capacitor(num_nodes, 0, 2.0);
    net.resistor(num_nodes, 0, 5.0);
    let system = mna::stamp(&net)?;
    debug_assert_eq!(system.order(), order, "generator order bookkeeping is off");
    Ok(CircuitModel {
        name: format!("rlc_ladder_with_impulsive(order={order})"),
        system,
        expected_passive: true,
        has_impulsive_modes: true,
    })
}

/// Two-port RC grid (rows × cols nodes), ports at two opposite corners.
/// State dimension = `rows·cols` (every node carries a capacitor except the
/// two port corners, giving two nondynamic modes).
///
/// # Errors
///
/// Propagates netlist validation / stamping failures.
pub fn rc_grid(rows: usize, cols: usize) -> Result<CircuitModel, CircuitError> {
    if rows < 2 || cols < 2 {
        return Err(CircuitError::UnrealizableOrder {
            requested: rows * cols,
            details: "rc_grid needs at least a 2x2 grid".into(),
        });
    }
    let node = |i: usize, j: usize| i * cols + j + 1;
    let mut net = Netlist::new(rows * cols);
    net.port(Port::to_ground(node(0, 0)));
    net.port(Port::to_ground(node(rows - 1, cols - 1)));
    for i in 0..rows {
        for j in 0..cols {
            let here = node(i, j);
            if j + 1 < cols {
                net.resistor(here, node(i, j + 1), 1.0 + 0.1 * (i + j) as f64);
            }
            if i + 1 < rows {
                net.resistor(here, node(i + 1, j), 1.5 + 0.05 * (i * j) as f64);
            }
            let is_port_corner = (i == 0 && j == 0) || (i == rows - 1 && j == cols - 1);
            if !is_port_corner {
                net.capacitor(here, 0, 0.5 + 0.02 * (i + 2 * j) as f64);
            }
            if (i + j) % 3 == 0 {
                net.resistor(here, 0, 30.0);
            }
        }
    }
    // Ensure the DC impedance is bounded (a leak at each port corner).
    net.resistor(node(0, 0), 0, 100.0);
    net.resistor(node(rows - 1, cols - 1), 0, 100.0);
    let system = mna::stamp(&net)?;
    Ok(CircuitModel {
        name: format!("rc_grid({rows}x{cols})"),
        system,
        expected_passive: true,
        has_impulsive_modes: false,
    })
}

/// A deliberately non-passive variant of [`rlc_ladder_with_impulsive`]: one
/// internal shunt resistor is made negative, so the model keeps its impulsive
/// structure but dissipates negative power in part of the band.
///
/// # Errors
///
/// Same as [`rlc_ladder_with_impulsive`].
pub fn nonpassive_ladder(order: usize) -> Result<CircuitModel, CircuitError> {
    if order < 6 || !order.is_multiple_of(2) {
        return Err(CircuitError::UnrealizableOrder {
            requested: order,
            details: "nonpassive_ladder needs an even order ≥ 6".into(),
        });
    }
    let sections = (order - 4) / 2;
    // Node layout (state dimension = (sections + 3) nodes + (sections + 1)
    // inductors = 2·sections + 4 = order):
    //   1              : port node
    //   2              : node behind the negative series resistor
    //   3              : junction node (shunt-loaded)
    //   4..sections+3  : ladder nodes with shunt capacitors
    let num_nodes = sections + 3;
    let mut net = Netlist::new(num_nodes);
    net.port(Port::to_ground(1));
    // Negative *series* resistance at the port: the DC input resistance is
    // −10 Ω plus at most the 5 Ω shunt at the junction, i.e. negative for every
    // order — a clear passivity violation.
    net.resistor(1, 2, -10.0);
    net.inductor(2, 3, 0.8);
    net.resistor(3, 0, 5.0);
    let mut prev = 3usize;
    for k in 0..sections {
        let node = 4 + k;
        net.resistor(prev, node, 1.0 + 0.01 * k as f64);
        net.inductor(prev, node, 0.5 + 0.005 * k as f64);
        net.capacitor(node, 0, 1.0 + 0.02 * k as f64);
        prev = node;
    }
    net.resistor(prev, 0, 5.0);
    let system = mna::stamp(&net)?;
    debug_assert_eq!(system.order(), order, "generator order bookkeeping is off");
    Ok(CircuitModel {
        name: format!("nonpassive_ladder(order={order})"),
        system,
        expected_passive: false,
        has_impulsive_modes: true,
    })
}

/// A non-passive model whose violation sits at infinity: the port sees a
/// *negative* series inductance (non-PSD `M₁`), which circuit-wise models an
/// over-compensated macromodel.  Built directly as a descriptor system since a
/// negative inductor is not a netlist element.
///
/// # Errors
///
/// Propagates descriptor-construction failures.
pub fn negative_m1_model(order: usize) -> Result<CircuitModel, CircuitError> {
    let even_order = {
        let o = order.max(6);
        o + (o % 2)
    };
    let base = rlc_ladder_with_impulsive(even_order)?;
    // Flip the sign of the port inductor's branch equation.  Branch currents
    // follow the node voltages in the MNA state ordering and the port inductor
    // is the first inductor stamped, so its row is the first row of the
    // inductance block: row `num_nodes = (order - 4)/2 + 3 = (order + 2)/2`.
    let (e, a, b, c, d) = base.system.into_parts();
    let mut e_flipped = e;
    let first_branch_row = (even_order + 2) / 2;
    let val = e_flipped[(first_branch_row, first_branch_row)];
    e_flipped[(first_branch_row, first_branch_row)] = -val;
    let system = DescriptorSystem::new(e_flipped, a, b, c, d)?;
    Ok(CircuitModel {
        name: format!("negative_m1_model(order={order})"),
        system,
        expected_passive: false,
        has_impulsive_modes: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_descriptor::{impulse, poles, transfer};

    #[test]
    fn rc_ladder_dimensions_and_structure() {
        let model = rc_ladder(5, 1.0, 1.0).unwrap();
        assert_eq!(model.system.order(), 6);
        assert!(model.expected_passive);
        assert!(model.system.rank_e(1e-12).unwrap() < model.system.order());
        assert!(model.system.is_regular(1e-10).unwrap());
        assert!(impulse::is_impulse_free(&model.system, 1e-10).unwrap());
        assert!(poles::is_stable(&model.system, 1e-12).unwrap());
    }

    #[test]
    fn rlc_ladder_dimensions() {
        let model = rlc_ladder(4, 1.0, 0.5, 1.0).unwrap();
        assert_eq!(model.system.order(), 2 * 4 + 1);
        assert!(model.system.is_regular(1e-10).unwrap());
        assert!(poles::is_stable(&model.system, 1e-12).unwrap());
    }

    #[test]
    fn impulsive_ladder_hits_requested_order() {
        for order in [6, 8, 10, 20, 40] {
            let model = rlc_ladder_with_impulsive(order).unwrap();
            assert_eq!(model.system.order(), order, "order {order}");
            assert!(model.has_impulsive_modes);
            assert!(!impulse::is_impulse_free(&model.system, 1e-10).unwrap());
            assert!(model.system.is_regular(1e-10).unwrap());
            assert!(poles::is_stable(&model.system, 1e-12).unwrap());
        }
    }

    #[test]
    fn impulsive_ladder_popov_nonnegative_and_m1_positive() {
        let model = rlc_ladder_with_impulsive(10).unwrap();
        for &w in &[0.0, 0.01, 0.1, 1.0, 10.0, 100.0] {
            let g = transfer::evaluate_jomega(&model.system, w).unwrap();
            assert!(
                g.popov_min_eigenvalue().unwrap() >= -1e-9,
                "Popov negative at {w}"
            );
        }
        let m1 = transfer::sample_m1(&model.system, 1e5).unwrap();
        assert!(m1[(0, 0)] > 0.5, "port inductance not visible in M1");
    }

    #[test]
    fn generator_order_validation() {
        assert!(rlc_ladder_with_impulsive(5).is_err());
        assert!(rlc_ladder_with_impulsive(4).is_err());
        assert!(rc_ladder(0, 1.0, 1.0).is_err());
        assert!(rlc_ladder(0, 1.0, 1.0, 1.0).is_err());
        assert!(rc_grid(1, 5).is_err());
    }

    #[test]
    fn reduced_ladder_netlist_matches_rlc_ladder_and_scales() {
        // Uncoupled: same topology and values as rlc_ladder(s, 1.0, 0.5, 1.0).
        let net = reduced_ladder_netlist(4, false).unwrap();
        let sys = mna::stamp(&net).unwrap();
        let reference = rlc_ladder(4, 1.0, 0.5, 1.0).unwrap().system;
        assert_eq!(sys.order(), reference.order());
        for i in 0..sys.order() {
            for j in 0..sys.order() {
                assert_eq!(sys.e()[(i, j)].to_bits(), reference.e()[(i, j)].to_bits());
                assert_eq!(sys.a()[(i, j)].to_bits(), reference.a()[(i, j)].to_bits());
            }
        }
        // Coupled: passes the sparse PSD guard and keeps order 2s + 1.
        let coupled = reduced_ladder_netlist(51, true).unwrap();
        let mna = mna::stamp_sparse(&coupled).unwrap();
        assert_eq!(mna.order(), 2 * 51 + 1);
        assert!(reduced_ladder_netlist(0, false).is_err());
    }

    #[test]
    fn rc_grid_two_port_model() {
        let model = rc_grid(3, 4).unwrap();
        assert_eq!(model.system.order(), 12);
        assert_eq!(model.system.num_inputs(), 2);
        assert!(model.system.is_regular(1e-10).unwrap());
        assert!(poles::is_stable(&model.system, 1e-12).unwrap());
        // Passive two-port: Popov function PSD on samples.
        for &w in &[0.0, 0.5, 5.0, 50.0] {
            let g = transfer::evaluate_jomega(&model.system, w).unwrap();
            assert!(g.popov_min_eigenvalue().unwrap() >= -1e-9);
        }
    }

    #[test]
    fn nonpassive_ladder_violates_popov_at_dc() {
        let model = nonpassive_ladder(8).unwrap();
        assert!(!model.expected_passive);
        let g0 = transfer::evaluate_jomega(&model.system, 0.0).unwrap();
        assert!(
            g0.popov_min_eigenvalue().unwrap() < 0.0,
            "expected a DC passivity violation"
        );
    }

    #[test]
    fn negative_m1_model_has_nonpsd_m1() {
        let model = negative_m1_model(8).unwrap();
        let m1 = transfer::sample_m1(&model.system, 1e5).unwrap();
        assert!(m1[(0, 0)] < 0.0, "expected negative M1, got {}", m1[(0, 0)]);
    }
}
