//! Randomized passive / non-passive descriptor-system generators.
//!
//! Circuit generators ([`crate::generators`]) provide structured workloads;
//! this module complements them with randomized systems that are passive *by
//! construction* (useful for property-based testing of the passivity tests):
//!
//! * the proper part is built as `G_p(s) = M₀ + Bᵀ (sI − A)⁻¹ B` with
//!   `A + Aᵀ ⪯ 0` (an internally-passive realization), and
//! * an optional impulsive part `s·M₁` with `M₁ = L Lᵀ ⪰ 0` is appended in a
//!   structurally index-2 descriptor block,
//! * nondynamic (index-1) algebraic states are padded in,
//!
//! all wrapped in a random orthogonal restricted-system-equivalence transform
//! so the block structure is not visible to the code under test.

use crate::error::CircuitError;
use ds_descriptor::transform;
use ds_descriptor::DescriptorSystem;
use ds_linalg::decomp::qr;
use ds_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the random passive descriptor generator.
#[derive(Debug, Clone)]
pub struct RandomPassiveOptions {
    /// Number of finite dynamic states (order of the proper part).
    pub dynamic_states: usize,
    /// Number of nondynamic (index-1 algebraic) states to pad in.
    pub nondynamic_states: usize,
    /// Number of ports (inputs = outputs).
    pub ports: usize,
    /// Whether to include an impulsive part `s·M₁` with `M₁ ⪰ 0` (adds
    /// `2·ports` states in an index-2 block).
    pub with_impulsive_part: bool,
    /// Strength of the resistive feedthrough `M₀` (0 gives a lossless-at-∞
    /// feedthrough, larger values give strictly passive systems).
    pub feedthrough: f64,
}

impl Default for RandomPassiveOptions {
    fn default() -> Self {
        RandomPassiveOptions {
            dynamic_states: 6,
            nondynamic_states: 2,
            ports: 1,
            with_impulsive_part: false,
            feedthrough: 0.5,
        }
    }
}

pub(crate) fn random_orthogonal(n: usize, rng: &mut StdRng) -> Matrix {
    let raw = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    qr::factor_full(&raw).q
}

/// Generates a random passive descriptor system.
///
/// The construction guarantees positive realness:
/// `Re x*(jωI − A)⁻¹x ≥ 0` for `A + Aᵀ ⪯ 0`, so `Bᵀ(sI−A)⁻¹B + M₀` is positive
/// real for `M₀ + M₀ᵀ ⪰ 0`; adding `s·M₁` with `M₁ = M₁ᵀ ⪰ 0` keeps it passive.
///
/// # Errors
///
/// Propagates descriptor-construction failures.
pub fn random_passive_descriptor(
    options: &RandomPassiveOptions,
    seed: u64,
) -> Result<DescriptorSystem, CircuitError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nq = options.dynamic_states;
    let m = options.ports.max(1);

    // Internally passive proper part: A = S − R with S skew, R ⪰ 0 (diagonal).
    let skew_raw = Matrix::from_fn(nq, nq, |_, _| rng.gen_range(-1.0..1.0));
    let skew = skew_raw.skew_part();
    let damping = Matrix::diag(
        &(0..nq)
            .map(|_| rng.gen_range(0.2..2.0))
            .collect::<Vec<f64>>(),
    );
    let a_dyn = &skew - &damping;
    let b_dyn = Matrix::from_fn(nq, m, |_, _| rng.gen_range(-1.0..1.0));
    let c_dyn = b_dyn.transpose();
    let m0_raw = Matrix::from_fn(m, m, |_, _| rng.gen_range(-0.3..0.3));
    let d = &(&m0_raw * &m0_raw.transpose()) + &Matrix::identity(m).scale(options.feedthrough);

    // Start assembling the block-diagonal descriptor pieces.
    let mut e_blocks: Vec<Matrix> = vec![Matrix::identity(nq)];
    let mut a_blocks: Vec<Matrix> = vec![a_dyn];
    let mut b_rows: Vec<Matrix> = vec![b_dyn];
    let mut c_cols: Vec<Matrix> = vec![c_dyn];

    // Nondynamic padding: E-block 0, A-block −I, decoupled from the ports.
    if options.nondynamic_states > 0 {
        let k = options.nondynamic_states;
        e_blocks.push(Matrix::zeros(k, k));
        a_blocks.push(Matrix::identity(k).scale(-1.0));
        b_rows.push(Matrix::from_fn(k, m, |_, _| rng.gen_range(-0.5..0.5)));
        c_cols.push(Matrix::zeros(m, k));
    }

    // Impulsive part: realizes s·M₁ with M₁ = L Lᵀ ⪰ 0 through an index-2 block
    //   E = [[0, I],[0, 0]], A = I, B = [0; Lᵀ], C = [−L, 0]  ⇒  C(sE−A)⁻¹B = s L Lᵀ.
    if options.with_impulsive_part {
        let l = Matrix::from_fn(m, m, |i, j| {
            if i == j {
                rng.gen_range(0.4..1.2)
            } else {
                rng.gen_range(-0.2..0.2)
            }
        });
        let zero = Matrix::zeros(m, m);
        let e_imp = Matrix::from_blocks_2x2(&zero, &Matrix::identity(m), &zero, &zero);
        let a_imp = Matrix::identity(2 * m);
        let b_imp = Matrix::vstack(&[&Matrix::zeros(m, m), &l.transpose()]);
        let c_imp = Matrix::hstack(&[&l.scale(-1.0), &Matrix::zeros(m, m)]);
        e_blocks.push(e_imp);
        a_blocks.push(a_imp);
        b_rows.push(b_imp);
        c_cols.push(c_imp);
    }

    let e = Matrix::block_diag(&e_blocks.iter().collect::<Vec<_>>());
    let a = Matrix::block_diag(&a_blocks.iter().collect::<Vec<_>>());
    let b = Matrix::vstack(&b_rows.iter().collect::<Vec<_>>());
    let c = Matrix::hstack(&c_cols.iter().collect::<Vec<_>>());
    let sys = DescriptorSystem::new(e, a, b, c, d)?;

    // Hide the block structure behind a random orthogonal r.s.e. transform.
    let n = sys.order();
    let q = random_orthogonal(n, &mut rng);
    let z = random_orthogonal(n, &mut rng);
    Ok(transform::restricted_equivalence(&sys, &q, &z)?)
}

/// Generates a random *non-passive* descriptor system by flipping the sign of
/// the dissipation in a random passive one (the damping block becomes an
/// energy source over part of the band).
///
/// # Errors
///
/// Propagates descriptor-construction failures.
pub fn random_nonpassive_descriptor(
    options: &RandomPassiveOptions,
    seed: u64,
) -> Result<DescriptorSystem, CircuitError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let nq = options.dynamic_states.max(2);
    let m = options.ports.max(1);
    // Stable but internally active: a zero of the Popov function crosses into
    // the negative range because C ≠ Bᵀ and D is small.
    let skew = Matrix::from_fn(nq, nq, |_, _| rng.gen_range(-1.0..1.0)).skew_part();
    let damping = Matrix::diag(
        &(0..nq)
            .map(|_| rng.gen_range(0.2..1.0))
            .collect::<Vec<f64>>(),
    );
    let a_dyn = &skew - &damping;
    let b_dyn = Matrix::from_fn(nq, m, |_, _| rng.gen_range(-1.0..1.0));
    // Output map decorrelated from B and negated: produces Re G < 0 somewhere.
    let c_dyn = Matrix::from_fn(m, nq, |_, _| rng.gen_range(-1.5..1.5));
    let d = Matrix::identity(m).scale(0.01);
    let e = Matrix::block_diag(&[&Matrix::identity(nq), &Matrix::zeros(1, 1)]);
    let a = Matrix::block_diag(&[&a_dyn, &Matrix::identity(1).scale(-1.0)]);
    let b = Matrix::vstack(&[&b_dyn, &Matrix::zeros(1, m)]);
    let c = Matrix::hstack(&[&c_dyn, &Matrix::zeros(m, 1)]);
    let sys = DescriptorSystem::new(e, a, b, c, d)?;
    let n = sys.order();
    let q = random_orthogonal(n, &mut rng);
    let z = random_orthogonal(n, &mut rng);
    Ok(transform::restricted_equivalence(&sys, &q, &z)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_descriptor::{impulse, poles, transfer};

    #[test]
    fn random_passive_is_stable_and_regular() {
        for seed in 0..5 {
            let sys = random_passive_descriptor(&RandomPassiveOptions::default(), seed).unwrap();
            assert_eq!(sys.order(), 8);
            assert!(sys.is_regular(1e-10).unwrap(), "seed {seed}");
            assert!(poles::is_stable(&sys, 1e-10).unwrap(), "seed {seed}");
            assert!(impulse::is_impulse_free(&sys, 1e-9).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn random_passive_popov_nonnegative_on_samples() {
        let opts = RandomPassiveOptions {
            with_impulsive_part: true,
            ..RandomPassiveOptions::default()
        };
        for seed in 0..5 {
            let sys = random_passive_descriptor(&opts, seed).unwrap();
            for &w in &[0.0, 0.3, 1.0, 3.0, 10.0, 100.0] {
                let g = transfer::evaluate_jomega(&sys, w).unwrap();
                assert!(
                    g.popov_min_eigenvalue().unwrap() >= -1e-8,
                    "seed {seed} negative at ω = {w}"
                );
            }
        }
    }

    #[test]
    fn impulsive_option_creates_impulsive_modes() {
        let opts = RandomPassiveOptions {
            with_impulsive_part: true,
            ..RandomPassiveOptions::default()
        };
        let sys = random_passive_descriptor(&opts, 3).unwrap();
        assert!(!impulse::is_impulse_free(&sys, 1e-9).unwrap());
        // M1 from sampling is PSD.
        let m1 = transfer::sample_m1(&sys, 1e5).unwrap();
        assert!(m1[(0, 0)] > 0.0);
    }

    #[test]
    fn mimo_random_passive() {
        let opts = RandomPassiveOptions {
            ports: 2,
            dynamic_states: 5,
            ..RandomPassiveOptions::default()
        };
        let sys = random_passive_descriptor(&opts, 11).unwrap();
        assert_eq!(sys.num_inputs(), 2);
        for &w in &[0.0, 1.0, 10.0] {
            let g = transfer::evaluate_jomega(&sys, w).unwrap();
            assert!(g.popov_min_eigenvalue().unwrap() >= -1e-8);
        }
    }

    #[test]
    fn random_nonpassive_violates_popov_somewhere() {
        let mut violations = 0;
        for seed in 0..6 {
            let sys = random_nonpassive_descriptor(&RandomPassiveOptions::default(), seed).unwrap();
            let violated = [0.0, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0].iter().any(|&w| {
                transfer::evaluate_jomega(&sys, w)
                    .map(|g| g.popov_min_eigenvalue().unwrap() < -1e-6)
                    .unwrap_or(false)
            });
            if violated {
                violations += 1;
            }
        }
        assert!(
            violations >= 4,
            "only {violations}/6 random non-passive systems showed a violation"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = random_passive_descriptor(&RandomPassiveOptions::default(), 42).unwrap();
        let b = random_passive_descriptor(&RandomPassiveOptions::default(), 42).unwrap();
        assert_eq!(a, b);
    }
}
