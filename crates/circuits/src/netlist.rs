//! Netlist data model: lumped RLCG elements, mutual-inductance couplings and
//! current-driven ports.

use crate::error::CircuitError;
use ds_linalg::decomp::symmetric;
use ds_linalg::Matrix;

/// A two-terminal lumped element.  Node `0` is ground; nodes `1..=num_nodes`
/// are the circuit nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Element {
    /// Resistor of `value` ohms between `a` and `b`.
    Resistor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Resistance in ohms (may be negative to model non-passive devices).
        value: f64,
    },
    /// Capacitor of `value` farads between `a` and `b`.
    Capacitor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Capacitance in farads (must be positive for a passive element).
        value: f64,
    },
    /// Inductor of `value` henries between `a` and `b`.
    Inductor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Inductance in henries (must be positive for a passive element).
        value: f64,
    },
    /// Conductance of `value` siemens between `a` and `b` (a resistor given
    /// by its admittance, the `G` element of RLGC transmission-line decks;
    /// may be negative to model non-passive devices, and `0` is an open).
    Conductance {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Conductance in siemens.
        value: f64,
    },
}

impl Element {
    /// The two terminal nodes of the element.
    pub fn terminals(&self) -> (usize, usize) {
        match *self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. }
            | Element::Conductance { a, b, .. } => (a, b),
        }
    }

    /// The element value (R, L, C or G).
    pub fn value(&self) -> f64 {
        match *self {
            Element::Resistor { value, .. }
            | Element::Capacitor { value, .. }
            | Element::Inductor { value, .. }
            | Element::Conductance { value, .. } => value,
        }
    }

    /// `true` when the element value is consistent with a passive device.
    pub fn is_passive(&self) -> bool {
        match *self {
            Element::Resistor { value, .. } | Element::Conductance { value, .. } => value >= 0.0,
            Element::Capacitor { value, .. } | Element::Inductor { value, .. } => value > 0.0,
        }
    }
}

/// A mutual-inductance coupling (the SPICE `K` element) between two *named*
/// inductors.  The stamped inductance block gets the off-diagonal entry
/// `M = k·√(L₁·L₂)`; `|k| ≤ 1` keeps each coupled pair positive semidefinite.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Coupling {
    /// Label of the coupling element itself (e.g. `K1`), used in diagnostics.
    pub name: String,
    /// Label of the first coupled inductor.
    pub l1: String,
    /// Label of the second coupled inductor.
    pub l2: String,
    /// Coupling coefficient; validation requires `|k| ≤ 1`.
    pub k: f64,
}

/// A current-driven port: a current source injected into `node_plus` and drawn
/// from `node_minus`, with the port voltage `v(node_plus) − v(node_minus)` as
/// the output.  The resulting transfer function is the impedance matrix `Z(s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Port {
    /// Positive terminal (0 = ground).
    pub node_plus: usize,
    /// Negative terminal (0 = ground).
    pub node_minus: usize,
}

impl Port {
    /// Port from a node to ground.
    pub fn to_ground(node: usize) -> Self {
        Port {
            node_plus: node,
            node_minus: 0,
        }
    }
}

/// A flat netlist: a node count, a list of (optionally labelled) elements,
/// mutual-inductance couplings between named inductors, and a list of ports.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Netlist {
    /// Number of non-ground nodes; valid node indices are `0..=num_nodes`.
    pub num_nodes: usize,
    /// Lumped elements.
    pub elements: Vec<Element>,
    /// Element labels, parallel to `elements`; the empty string means
    /// unlabelled.  Only inductor labels carry semantics (they are the
    /// coupling targets of `K` elements).
    pub labels: Vec<String>,
    /// Mutual-inductance couplings between named inductors.
    pub couplings: Vec<Coupling>,
    /// Current-driven ports.
    pub ports: Vec<Port>,
}

impl Netlist {
    /// Creates an empty netlist with `num_nodes` non-ground nodes.
    pub fn new(num_nodes: usize) -> Self {
        Netlist {
            num_nodes,
            elements: Vec::new(),
            labels: Vec::new(),
            couplings: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// Adds an unlabelled element.
    pub fn add(&mut self, element: Element) -> &mut Self {
        self.add_named(String::new(), element)
    }

    /// Adds an element with a label (e.g. the deck element name `L3`).
    pub fn add_named(&mut self, label: impl Into<String>, element: Element) -> &mut Self {
        self.elements.push(element);
        self.labels.push(label.into());
        self
    }

    /// Adds a resistor.
    pub fn resistor(&mut self, a: usize, b: usize, value: f64) -> &mut Self {
        self.add(Element::Resistor { a, b, value })
    }

    /// Adds a capacitor.
    pub fn capacitor(&mut self, a: usize, b: usize, value: f64) -> &mut Self {
        self.add(Element::Capacitor { a, b, value })
    }

    /// Adds an inductor.
    pub fn inductor(&mut self, a: usize, b: usize, value: f64) -> &mut Self {
        self.add(Element::Inductor { a, b, value })
    }

    /// Adds a labelled inductor that `K` couplings can reference.
    pub fn named_inductor(
        &mut self,
        label: impl Into<String>,
        a: usize,
        b: usize,
        value: f64,
    ) -> &mut Self {
        self.add_named(label, Element::Inductor { a, b, value })
    }

    /// Adds a conductance.
    pub fn conductance(&mut self, a: usize, b: usize, value: f64) -> &mut Self {
        self.add(Element::Conductance { a, b, value })
    }

    /// Adds a mutual-inductance coupling between the inductors labelled `l1`
    /// and `l2`.
    pub fn couple(
        &mut self,
        name: impl Into<String>,
        l1: impl Into<String>,
        l2: impl Into<String>,
        k: f64,
    ) -> &mut Self {
        self.couplings.push(Coupling {
            name: name.into(),
            l1: l1.into(),
            l2: l2.into(),
            k,
        });
        self
    }

    /// Adds a port.
    pub fn port(&mut self, port: Port) -> &mut Self {
        self.ports.push(port);
        self
    }

    /// Number of inductors (each contributes one branch-current state).
    pub fn num_inductors(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Inductor { .. }))
            .count()
    }

    /// The MNA state dimension: node voltages plus inductor currents.
    pub fn state_dimension(&self) -> usize {
        self.num_nodes + self.num_inductors()
    }

    /// Checks every coupling (coefficient range, distinct named targets, no
    /// duplicate pairs) and resolves the targets to inductor ordinals (their
    /// indices among the inductor elements in stamping order).  One pass over
    /// the elements builds a label → ordinal map, so the whole resolution is
    /// `O(elements + couplings)`.
    ///
    /// # Errors
    ///
    /// Returns the named-coupling error for the first violation found:
    /// [`CircuitError::CouplingTargetNotFound`] /
    /// [`CircuitError::CouplingTargetAmbiguous`] for unresolvable labels,
    /// [`CircuitError::BadCoupling`] otherwise.
    pub fn resolved_couplings(&self) -> Result<Vec<(usize, usize, f64)>, CircuitError> {
        if self.couplings.is_empty() {
            return Ok(Vec::new());
        }
        // Label → Some(ordinal), or None once the label is seen twice.
        let mut ordinals: std::collections::HashMap<&str, Option<usize>> =
            std::collections::HashMap::new();
        let mut ordinal = 0usize;
        for (element, label) in self.elements.iter().zip(&self.labels) {
            if matches!(element, Element::Inductor { .. }) {
                if !label.is_empty() {
                    ordinals
                        .entry(label.as_str())
                        .and_modify(|slot| *slot = None)
                        .or_insert(Some(ordinal));
                }
                ordinal += 1;
            }
        }
        let resolve = |coupling: &Coupling, label: &str| match ordinals.get(label) {
            Some(Some(ordinal)) => Ok(*ordinal),
            Some(None) => Err(CircuitError::CouplingTargetAmbiguous {
                coupling: coupling.name.clone(),
                label: label.to_string(),
            }),
            None => Err(CircuitError::CouplingTargetNotFound {
                coupling: coupling.name.clone(),
                label: label.to_string(),
            }),
        };
        let mut resolved = Vec::with_capacity(self.couplings.len());
        let mut seen_pairs: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        for coupling in &self.couplings {
            if !coupling.k.is_finite() || coupling.k.abs() > 1.0 {
                return Err(CircuitError::BadCoupling {
                    coupling: coupling.name.clone(),
                    details: format!(
                        "coupling coefficient must be finite with |k| ≤ 1, got {}",
                        coupling.k
                    ),
                });
            }
            let p = resolve(coupling, &coupling.l1)?;
            let q = resolve(coupling, &coupling.l2)?;
            if p == q {
                return Err(CircuitError::BadCoupling {
                    coupling: coupling.name.clone(),
                    details: format!("couples inductor '{}' to itself", coupling.l1),
                });
            }
            if !seen_pairs.insert((p.min(q), p.max(q))) {
                return Err(CircuitError::BadCoupling {
                    coupling: coupling.name.clone(),
                    details: format!(
                        "duplicate coupling between '{}' and '{}'",
                        coupling.l1, coupling.l2
                    ),
                });
            }
            resolved.push((p, q, coupling.k));
        }
        Ok(resolved)
    }

    /// The full (coupled) inductance matrix in branch-current order: element
    /// values on the diagonal and `M = k·√(L₁·L₂)` off the diagonal for every
    /// coupling.  This is the trailing diagonal block of the stamped `E`.
    ///
    /// # Errors
    ///
    /// Propagates coupling-resolution failures.
    pub fn inductance_matrix(&self) -> Result<Matrix, CircuitError> {
        let values: Vec<f64> = self
            .elements
            .iter()
            .filter_map(|e| match *e {
                Element::Inductor { value, .. } => Some(value),
                _ => None,
            })
            .collect();
        let mut l = Matrix::diag(&values);
        for (p, q, k) in self.resolved_couplings()? {
            let m = k * (values[p] * values[q]).sqrt();
            l[(p, q)] += m;
            l[(q, p)] += m;
        }
        Ok(l)
    }

    /// `true` when every element is individually passive and the coupled
    /// inductance matrix is positive semidefinite (pairwise `|k| ≤ 1` bounds
    /// each coupling, but several couplings sharing inductors can still drive
    /// the joint matrix indefinite).
    pub fn is_passive_by_construction(&self) -> bool {
        if !self.elements.iter().all(Element::is_passive) {
            return false;
        }
        if self.couplings.is_empty() {
            return true;
        }
        match self.inductance_matrix() {
            Ok(l) => {
                let scale = l.diagonal().iter().fold(1.0f64, |acc, &d| acc.max(d));
                symmetric::is_positive_semidefinite(&l, 1e-12 * scale).unwrap_or(false)
            }
            Err(_) => false,
        }
    }

    /// Validates node ranges, element values, label bookkeeping, coupling
    /// references and port presence.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`CircuitError`] variant for each violation.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.labels.len() != self.elements.len() {
            return Err(CircuitError::BadElementValue {
                details: format!(
                    "label bookkeeping is inconsistent: {} labels for {} elements",
                    self.labels.len(),
                    self.elements.len()
                ),
            });
        }
        for e in &self.elements {
            let (a, b) = e.terminals();
            for node in [a, b] {
                if node > self.num_nodes {
                    return Err(CircuitError::NodeOutOfRange {
                        node,
                        num_nodes: self.num_nodes,
                    });
                }
            }
            if !e.value().is_finite() {
                return Err(CircuitError::BadElementValue {
                    details: format!("{e:?} has a non-finite value"),
                });
            }
            if matches!(e, Element::Capacitor { .. } | Element::Inductor { .. }) && e.value() <= 0.0
            {
                return Err(CircuitError::BadElementValue {
                    details: format!("{e:?} must have a strictly positive value"),
                });
            }
            if a == b {
                return Err(CircuitError::BadElementValue {
                    details: format!("{e:?} is shorted (both terminals on node {a})"),
                });
            }
        }
        self.resolved_couplings()?;
        if self.ports.is_empty() {
            return Err(CircuitError::NoPorts);
        }
        for p in &self.ports {
            for node in [p.node_plus, p.node_minus] {
                if node > self.num_nodes {
                    return Err(CircuitError::NodeOutOfRange {
                        node,
                        num_nodes: self.num_nodes,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_netlist() {
        let mut net = Netlist::new(2);
        net.resistor(1, 2, 10.0)
            .capacitor(2, 0, 1e-6)
            .inductor(1, 0, 1e-3)
            .port(Port::to_ground(1));
        assert_eq!(net.num_inductors(), 1);
        assert_eq!(net.state_dimension(), 3);
        assert!(net.validate().is_ok());
        assert!(net.is_passive_by_construction());
    }

    #[test]
    fn element_accessors() {
        let r = Element::Resistor {
            a: 1,
            b: 0,
            value: 5.0,
        };
        assert_eq!(r.terminals(), (1, 0));
        assert_eq!(r.value(), 5.0);
        assert!(r.is_passive());
        assert!(!Element::Resistor {
            a: 1,
            b: 0,
            value: -5.0
        }
        .is_passive());
        let g = Element::Conductance {
            a: 2,
            b: 0,
            value: 0.5,
        };
        assert_eq!(g.terminals(), (2, 0));
        assert!(g.is_passive());
        assert!(!Element::Conductance {
            a: 2,
            b: 0,
            value: -0.5
        }
        .is_passive());
    }

    #[test]
    fn validation_catches_bad_nodes() {
        let mut net = Netlist::new(1);
        net.resistor(1, 5, 1.0).port(Port::to_ground(1));
        assert!(matches!(
            net.validate(),
            Err(CircuitError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut net = Netlist::new(2);
        net.capacitor(1, 2, -1.0).port(Port::to_ground(1));
        assert!(matches!(
            net.validate(),
            Err(CircuitError::BadElementValue { .. })
        ));
        let mut net2 = Netlist::new(1);
        net2.resistor(1, 1, 1.0).port(Port::to_ground(1));
        assert!(net2.validate().is_err());
    }

    #[test]
    fn validation_requires_ports() {
        let mut net = Netlist::new(1);
        net.resistor(1, 0, 1.0);
        assert!(matches!(net.validate(), Err(CircuitError::NoPorts)));
    }

    #[test]
    fn negative_resistor_is_allowed_but_flagged() {
        let mut net = Netlist::new(1);
        net.resistor(1, 0, -2.0).port(Port::to_ground(1));
        assert!(net.validate().is_ok());
        assert!(!net.is_passive_by_construction());
    }

    fn coupled_pair() -> Netlist {
        let mut net = Netlist::new(3);
        net.named_inductor("L1", 1, 2, 0.5)
            .named_inductor("L2", 3, 0, 2.0)
            .resistor(2, 0, 1.0)
            .resistor(3, 0, 1.0)
            .couple("K1", "L1", "L2", 0.8)
            .port(Port::to_ground(1));
        net
    }

    #[test]
    fn coupling_resolves_to_inductor_ordinals() {
        let net = coupled_pair();
        assert!(net.validate().is_ok());
        assert_eq!(net.resolved_couplings().unwrap(), vec![(0, 1, 0.8)]);
        let l = net.inductance_matrix().unwrap();
        let m = 0.8 * (0.5f64 * 2.0).sqrt();
        assert_eq!(l[(0, 0)], 0.5);
        assert_eq!(l[(1, 1)], 2.0);
        assert_eq!(l[(0, 1)], m);
        assert_eq!(l[(1, 0)], m);
        assert!(net.is_passive_by_construction());
    }

    #[test]
    fn coupling_to_unknown_inductor_is_a_named_error() {
        let mut net = coupled_pair();
        net.couple("K2", "L1", "Lmissing", 0.1);
        assert!(matches!(
            net.validate(),
            Err(CircuitError::CouplingTargetNotFound { coupling, label })
                if coupling == "K2" && label == "Lmissing"
        ));
    }

    #[test]
    fn coupling_to_duplicate_inductor_label_is_a_named_error() {
        let mut net = coupled_pair();
        net.named_inductor("L1", 2, 3, 0.25);
        assert!(matches!(
            net.validate(),
            Err(CircuitError::CouplingTargetAmbiguous { coupling, label })
                if coupling == "K1" && label == "L1"
        ));
    }

    #[test]
    fn coupling_coefficient_and_pair_rules() {
        let mut net = coupled_pair();
        net.couplings[0].k = 1.5;
        assert!(matches!(
            net.validate(),
            Err(CircuitError::BadCoupling { coupling, .. }) if coupling == "K1"
        ));
        let mut net = coupled_pair();
        net.couplings[0].l2 = "L1".to_string();
        assert!(matches!(
            net.validate(),
            Err(CircuitError::BadCoupling { .. })
        ));
        let mut net = coupled_pair();
        net.couple("K2", "L2", "L1", 0.3);
        assert!(matches!(
            net.validate(),
            Err(CircuitError::BadCoupling { coupling, .. }) if coupling == "K2"
        ));
    }

    #[test]
    fn perfect_coupling_is_allowed_and_psd() {
        let mut net = coupled_pair();
        net.couplings[0].k = 1.0;
        assert!(net.validate().is_ok());
        assert!(net.is_passive_by_construction());
    }

    #[test]
    fn overcoupled_triple_is_not_passive_by_construction() {
        // Three pairwise couplings of 0.9 make the 3×3 inductance matrix
        // indefinite even though each |k| ≤ 1.
        let mut net = Netlist::new(3);
        net.named_inductor("LA", 1, 0, 1.0)
            .named_inductor("LB", 2, 0, 1.0)
            .named_inductor("LC", 3, 0, 1.0)
            .couple("K1", "LA", "LB", 0.9)
            .couple("K2", "LB", "LC", 0.9)
            .couple("K3", "LA", "LC", -0.9)
            .port(Port::to_ground(1));
        assert!(net.validate().is_ok());
        assert!(!net.is_passive_by_construction());
    }

    #[test]
    fn label_bookkeeping_is_validated() {
        let mut net = Netlist::new(1);
        net.resistor(1, 0, 1.0).port(Port::to_ground(1));
        net.labels.pop();
        assert!(matches!(
            net.validate(),
            Err(CircuitError::BadElementValue { .. })
        ));
    }
}
