//! Netlist data model: lumped RLC elements and current-driven ports.

use crate::error::CircuitError;

/// A two-terminal lumped element.  Node `0` is ground; nodes `1..=num_nodes`
/// are the circuit nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Element {
    /// Resistor of `value` ohms between `a` and `b`.
    Resistor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Resistance in ohms (may be negative to model non-passive devices).
        value: f64,
    },
    /// Capacitor of `value` farads between `a` and `b`.
    Capacitor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Capacitance in farads (must be positive for a passive element).
        value: f64,
    },
    /// Inductor of `value` henries between `a` and `b`.
    Inductor {
        /// First terminal node.
        a: usize,
        /// Second terminal node.
        b: usize,
        /// Inductance in henries (must be positive for a passive element).
        value: f64,
    },
}

impl Element {
    /// The two terminal nodes of the element.
    pub fn terminals(&self) -> (usize, usize) {
        match *self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. } => (a, b),
        }
    }

    /// The element value (R, L or C).
    pub fn value(&self) -> f64 {
        match *self {
            Element::Resistor { value, .. }
            | Element::Capacitor { value, .. }
            | Element::Inductor { value, .. } => value,
        }
    }

    /// `true` when the element value is consistent with a passive device.
    pub fn is_passive(&self) -> bool {
        match *self {
            Element::Resistor { value, .. } => value >= 0.0,
            Element::Capacitor { value, .. } | Element::Inductor { value, .. } => value > 0.0,
        }
    }
}

/// A current-driven port: a current source injected into `node_plus` and drawn
/// from `node_minus`, with the port voltage `v(node_plus) − v(node_minus)` as
/// the output.  The resulting transfer function is the impedance matrix `Z(s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Port {
    /// Positive terminal (0 = ground).
    pub node_plus: usize,
    /// Negative terminal (0 = ground).
    pub node_minus: usize,
}

impl Port {
    /// Port from a node to ground.
    pub fn to_ground(node: usize) -> Self {
        Port {
            node_plus: node,
            node_minus: 0,
        }
    }
}

/// A flat netlist: a node count, a list of elements and a list of ports.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Netlist {
    /// Number of non-ground nodes; valid node indices are `0..=num_nodes`.
    pub num_nodes: usize,
    /// Lumped elements.
    pub elements: Vec<Element>,
    /// Current-driven ports.
    pub ports: Vec<Port>,
}

impl Netlist {
    /// Creates an empty netlist with `num_nodes` non-ground nodes.
    pub fn new(num_nodes: usize) -> Self {
        Netlist {
            num_nodes,
            elements: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// Adds an element.
    pub fn add(&mut self, element: Element) -> &mut Self {
        self.elements.push(element);
        self
    }

    /// Adds a resistor.
    pub fn resistor(&mut self, a: usize, b: usize, value: f64) -> &mut Self {
        self.add(Element::Resistor { a, b, value })
    }

    /// Adds a capacitor.
    pub fn capacitor(&mut self, a: usize, b: usize, value: f64) -> &mut Self {
        self.add(Element::Capacitor { a, b, value })
    }

    /// Adds an inductor.
    pub fn inductor(&mut self, a: usize, b: usize, value: f64) -> &mut Self {
        self.add(Element::Inductor { a, b, value })
    }

    /// Adds a port.
    pub fn port(&mut self, port: Port) -> &mut Self {
        self.ports.push(port);
        self
    }

    /// Number of inductors (each contributes one branch-current state).
    pub fn num_inductors(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Inductor { .. }))
            .count()
    }

    /// The MNA state dimension: node voltages plus inductor currents.
    pub fn state_dimension(&self) -> usize {
        self.num_nodes + self.num_inductors()
    }

    /// `true` when every element is individually passive.
    pub fn is_passive_by_construction(&self) -> bool {
        self.elements.iter().all(Element::is_passive)
    }

    /// Validates node ranges, element values and port presence.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`CircuitError`] variant for each violation.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for e in &self.elements {
            let (a, b) = e.terminals();
            for node in [a, b] {
                if node > self.num_nodes {
                    return Err(CircuitError::NodeOutOfRange {
                        node,
                        num_nodes: self.num_nodes,
                    });
                }
            }
            if !e.value().is_finite() {
                return Err(CircuitError::BadElementValue {
                    details: format!("{e:?} has a non-finite value"),
                });
            }
            if matches!(e, Element::Capacitor { .. } | Element::Inductor { .. }) && e.value() <= 0.0
            {
                return Err(CircuitError::BadElementValue {
                    details: format!("{e:?} must have a strictly positive value"),
                });
            }
            if a == b {
                return Err(CircuitError::BadElementValue {
                    details: format!("{e:?} is shorted (both terminals on node {a})"),
                });
            }
        }
        if self.ports.is_empty() {
            return Err(CircuitError::NoPorts);
        }
        for p in &self.ports {
            for node in [p.node_plus, p.node_minus] {
                if node > self.num_nodes {
                    return Err(CircuitError::NodeOutOfRange {
                        node,
                        num_nodes: self.num_nodes,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_netlist() {
        let mut net = Netlist::new(2);
        net.resistor(1, 2, 10.0)
            .capacitor(2, 0, 1e-6)
            .inductor(1, 0, 1e-3)
            .port(Port::to_ground(1));
        assert_eq!(net.num_inductors(), 1);
        assert_eq!(net.state_dimension(), 3);
        assert!(net.validate().is_ok());
        assert!(net.is_passive_by_construction());
    }

    #[test]
    fn element_accessors() {
        let r = Element::Resistor {
            a: 1,
            b: 0,
            value: 5.0,
        };
        assert_eq!(r.terminals(), (1, 0));
        assert_eq!(r.value(), 5.0);
        assert!(r.is_passive());
        assert!(!Element::Resistor {
            a: 1,
            b: 0,
            value: -5.0
        }
        .is_passive());
    }

    #[test]
    fn validation_catches_bad_nodes() {
        let mut net = Netlist::new(1);
        net.resistor(1, 5, 1.0).port(Port::to_ground(1));
        assert!(matches!(
            net.validate(),
            Err(CircuitError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut net = Netlist::new(2);
        net.capacitor(1, 2, -1.0).port(Port::to_ground(1));
        assert!(matches!(
            net.validate(),
            Err(CircuitError::BadElementValue { .. })
        ));
        let mut net2 = Netlist::new(1);
        net2.resistor(1, 1, 1.0).port(Port::to_ground(1));
        assert!(net2.validate().is_err());
    }

    #[test]
    fn validation_requires_ports() {
        let mut net = Netlist::new(1);
        net.resistor(1, 0, 1.0);
        assert!(matches!(net.validate(), Err(CircuitError::NoPorts)));
    }

    #[test]
    fn negative_resistor_is_allowed_but_flagged() {
        let mut net = Netlist::new(1);
        net.resistor(1, 0, -2.0).port(Port::to_ground(1));
        assert!(net.validate().is_ok());
        assert!(!net.is_passive_by_construction());
    }
}
