//! Error type for circuit-model generation.

use ds_descriptor::DescriptorError;
use std::fmt;

/// Error returned by netlist construction and MNA stamping.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// An element references a node index outside the netlist's node range.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of (non-ground) nodes in the netlist.
        num_nodes: usize,
    },
    /// An element value is non-finite or has the wrong sign for its kind.
    BadElementValue {
        /// Description of the offending element.
        details: String,
    },
    /// The netlist has no ports, so no input/output map can be built.
    NoPorts,
    /// A `K` coupling references an inductor label no inductor carries.
    CouplingTargetNotFound {
        /// Name of the coupling element (e.g. `K1`).
        coupling: String,
        /// The unresolved inductor label.
        label: String,
    },
    /// A `K` coupling references an inductor label carried by more than one
    /// inductor.
    CouplingTargetAmbiguous {
        /// Name of the coupling element (e.g. `K1`).
        coupling: String,
        /// The ambiguous inductor label.
        label: String,
    },
    /// A `K` coupling is malformed: coefficient out of range, self-coupling,
    /// or a duplicate pair.
    BadCoupling {
        /// Name of the coupling element (e.g. `K1`).
        coupling: String,
        /// Explanation of the violation.
        details: String,
    },
    /// A requested model order cannot be realized by the generator.
    UnrealizableOrder {
        /// The requested order.
        requested: usize,
        /// Explanation of the constraint.
        details: String,
    },
    /// Building the descriptor system failed downstream.
    Descriptor(DescriptorError),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::NodeOutOfRange { node, num_nodes } => write!(
                f,
                "node {node} is out of range for a netlist with {num_nodes} nodes"
            ),
            CircuitError::BadElementValue { details } => {
                write!(f, "bad element value: {details}")
            }
            CircuitError::NoPorts => write!(f, "netlist has no ports"),
            CircuitError::CouplingTargetNotFound { coupling, label } => write!(
                f,
                "coupling {coupling} references unknown inductor '{label}'"
            ),
            CircuitError::CouplingTargetAmbiguous { coupling, label } => write!(
                f,
                "coupling {coupling} references inductor '{label}', which labels more than one inductor"
            ),
            CircuitError::BadCoupling { coupling, details } => {
                write!(f, "bad coupling {coupling}: {details}")
            }
            CircuitError::UnrealizableOrder { requested, details } => {
                write!(f, "cannot realize a model of order {requested}: {details}")
            }
            CircuitError::Descriptor(e) => write!(f, "descriptor construction failed: {e}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Descriptor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DescriptorError> for CircuitError {
    fn from(e: DescriptorError) -> Self {
        CircuitError::Descriptor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CircuitError::NoPorts.to_string().contains("no ports"));
        assert!(CircuitError::NodeOutOfRange {
            node: 7,
            num_nodes: 3
        }
        .to_string()
        .contains('7'));
        assert!(CircuitError::UnrealizableOrder {
            requested: 3,
            details: "too small".into()
        }
        .to_string()
        .contains("too small"));
        assert!(CircuitError::CouplingTargetNotFound {
            coupling: "K1".into(),
            label: "L9".into()
        }
        .to_string()
        .contains("unknown inductor 'L9'"));
        assert!(CircuitError::CouplingTargetAmbiguous {
            coupling: "K1".into(),
            label: "L2".into()
        }
        .to_string()
        .contains("more than one"));
        assert!(CircuitError::BadCoupling {
            coupling: "K3".into(),
            details: "nope".into()
        }
        .to_string()
        .contains("K3"));
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CircuitError>();
    }
}
