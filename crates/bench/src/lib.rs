//! # ds-bench
//!
//! Benchmark harness that regenerates the evaluation artifacts of the DAC 2006
//! paper (Table 1 and Figure 2) plus the ablations called out in `DESIGN.md`.
//!
//! * Criterion benches (`benches/`) give statistically solid timings for the
//!   small and medium orders.
//! * Binaries (`src/bin/`) sweep the full order range of the paper (20–400)
//!   and print the same rows/series the paper reports (`table1`, `fig2`,
//!   `stage_profile`, `verdicts`).  Since PR 2 they run on top of the
//!   [`ds_harness`] parallel sweep engine, so the paper artifacts and the
//!   production-scale sweeps share one code path; method dispatch
//!   ([`Method`], [`run_method`], [`LMI_MAX_ORDER`]) moved to `ds-harness`
//!   and is re-exported here for compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ds_circuits::generators::{self, CircuitModel};
use ds_circuits::CircuitError;
use ds_passivity_suite::{PassivityCheck, SuiteError};
use std::time::Duration;

pub use ds_harness::{run_method, Method, LMI_MAX_ORDER};

/// The model orders used in the paper's Table 1.
pub const TABLE1_ORDERS: &[usize] = &[20, 40, 60, 80, 100, 200, 400];

/// Builds the Table-1 workload for a given order: a passive RLC ladder with
/// impulsive modes (the port is fed through a series inductor).
///
/// # Errors
///
/// Propagates generator errors (invalid orders).
pub fn table1_model(order: usize) -> Result<CircuitModel, CircuitError> {
    generators::rlc_ladder_with_impulsive(order)
}

/// A single timed run of one method on one model.
#[derive(Debug, Clone)]
pub struct TimedRun {
    /// Which method was run.
    pub method: Method,
    /// Model order.
    pub order: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Whether the verdict matched the model's ground truth.
    pub verdict_correct: bool,
}

/// Times one method on one model through the unified [`PassivityCheck`]
/// pipeline — the same entry point `ds-sweep` and the `ds-serve` daemon use,
/// so benchmark timings measure the path production verdicts actually take.
///
/// # Errors
///
/// Propagates structural test failures (a method error recorded in the
/// outcome is lifted back into an error here: a benchmark row without a
/// verdict is meaningless).
pub fn time_method(method: Method, model: &CircuitModel) -> Result<TimedRun, SuiteError> {
    let outcome = PassivityCheck::model(model.clone()).method(method).run()?;
    if outcome.passive.is_none() {
        return Err(SuiteError::Harness(format!(
            "{} failed on {}: {}",
            method.name(),
            outcome.name,
            outcome.reason
        )));
    }
    Ok(TimedRun {
        method,
        order: outcome.order,
        elapsed: outcome.elapsed,
        verdict_correct: outcome.agrees == Some(true),
    })
}

/// Formats a duration in seconds with millisecond resolution, or `"n/a"`.
pub fn format_seconds(value: Option<Duration>) -> String {
    match value {
        Some(d) => format!("{:.4}", d.as_secs_f64()),
        None => "n/a".to_string(),
    }
}

/// Parses the shared `--threads N` flag of the sweep-backed binaries
/// (defaults to 1: single-shot timings, like the paper's measurements).
/// A present-but-invalid value aborts instead of silently running serially —
/// a benchmark on the wrong thread count measures the wrong thing.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let Some(position) = args.iter().position(|a| a == "--threads") else {
        return 1;
    };
    match args.get(position + 1).map(|v| v.parse::<usize>()) {
        Some(Ok(threads)) => threads,
        Some(Err(e)) => {
            eprintln!("--threads: invalid value {:?}: {e}", args[position + 1]);
            std::process::exit(2);
        }
        None => {
            eprintln!("--threads needs a value");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_models_have_requested_orders() {
        for &order in &[20usize, 40] {
            let model = table1_model(order).unwrap();
            assert_eq!(model.system.order(), order);
            assert!(model.expected_passive);
            assert!(model.has_impulsive_modes);
        }
    }

    #[test]
    fn all_methods_agree_on_a_small_model() {
        let model = table1_model(20).unwrap();
        for method in [Method::Proposed, Method::Weierstrass, Method::Lmi] {
            let run = time_method(method, &model).unwrap();
            assert!(
                run.verdict_correct,
                "{} gave the wrong verdict",
                method.name()
            );
            assert_eq!(run.order, 20);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_seconds(None), "n/a");
        assert!(format_seconds(Some(Duration::from_millis(1500))).starts_with("1.5"));
        assert_eq!(Method::Proposed.name(), "proposed");
        assert_eq!(Method::Lmi.name(), "lmi");
    }
}
