//! EXP-A2: per-stage wall-clock profile of the proposed test across model
//! orders (which stage of the Fig. 1 flow dominates as the order grows).
//! Checks run through the unified [`PassivityCheck`] pipeline, which keeps
//! the full stage-timed report for in-memory sources.
//!
//! Run with `cargo run -p ds-bench --release --bin stage_profile [--quick]`.

use ds_bench::table1_model;
use ds_passivity_suite::PassivityCheck;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let orders: Vec<usize> = if quick {
        vec![20, 40, 60]
    } else {
        vec![20, 40, 60, 100, 200]
    };
    println!("# Per-stage timing (ms) of the proposed SHH passivity test");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "order", "build_phi", "impulse", "nondynamic", "residue", "regularize", "split", "pr_test"
    );
    for order in orders {
        let model = match table1_model(order) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("order {order}: {e}");
                continue;
            }
        };
        match PassivityCheck::model(model).run() {
            Ok(outcome) => {
                let Some(report) = &outcome.report else {
                    eprintln!("order {order}: test failed: {}", outcome.reason);
                    continue;
                };
                let t = &report.timings;
                let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
                println!(
                    "{:>6} {:>10.2} {:>10.2} {:>12.2} {:>10.2} {:>12.2} {:>10.2} {:>10.2}",
                    order,
                    ms(t.build_phi),
                    ms(t.impulse_removal),
                    ms(t.nondynamic_removal),
                    ms(t.residue_extraction),
                    ms(t.regularization),
                    ms(t.spectral_split),
                    ms(t.positive_real_test),
                );
            }
            Err(e) => eprintln!("order {order}: test failed: {e}"),
        }
    }
}
