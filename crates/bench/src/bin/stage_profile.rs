//! EXP-A2: per-stage wall-clock profile of the proposed test across model
//! orders (which stage of the Fig. 1 flow dominates as the order grows).
//! Checks run through the unified [`PassivityCheck`] pipeline under an
//! active ds-obs trace; the table is read back from the emitted stage spans
//! — the same span stream `ds-serve` exports on `/metrics` and `/trace/<id>`.
//!
//! Run with `cargo run -p ds-bench --release --bin stage_profile [--quick]`.

use ds_bench::table1_model;
use ds_obs::STAGES;
use ds_passivity_suite::PassivityCheck;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let orders: Vec<usize> = if quick {
        vec![20, 40, 60]
    } else {
        vec![20, 40, 60, 100, 200]
    };
    println!("# Per-stage timing (ms) of the proposed SHH passivity test");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "order", "build_phi", "impulse", "nondynamic", "residue", "regularize", "split", "pr_test"
    );
    for order in orders {
        let model = match table1_model(order) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("order {order}: {e}");
                continue;
            }
        };
        ds_obs::trace::begin(&format!("stage-profile-o{order}"));
        let result = PassivityCheck::model(model).run();
        let trace = ds_obs::trace::end();
        match result {
            Ok(outcome) => {
                if outcome.report.is_none() {
                    eprintln!("order {order}: test failed: {}", outcome.reason);
                    continue;
                }
                let Some(trace) = trace else {
                    eprintln!("order {order}: trace collector vanished mid-run");
                    continue;
                };
                let ms = |stage: &str| {
                    trace
                        .spans
                        .iter()
                        .find(|s| s.name == stage)
                        .map_or(f64::NAN, |s| s.elapsed_ns as f64 / 1e6)
                };
                println!(
                    "{:>6} {:>10.2} {:>10.2} {:>12.2} {:>10.2} {:>12.2} {:>10.2} {:>10.2}",
                    order,
                    ms(STAGES[0]),
                    ms(STAGES[1]),
                    ms(STAGES[2]),
                    ms(STAGES[3]),
                    ms(STAGES[4]),
                    ms(STAGES[5]),
                    ms(STAGES[6]),
                );
            }
            Err(e) => eprintln!("order {order}: test failed: {e}"),
        }
    }
}
