//! Machine-readable performance baseline for the SHH hot path (`BENCH_PR10.json`).
//!
//! Runs the stage-profile matrix — the Table-1 workload at orders 20–200 —
//! through the proposed test, records the per-stage wall-clock of the fastest
//! of several repeats, times all three methods for a tasks/sec figure, times
//! the sparse-stamp + Krylov reduce-then-verify path up to order 10⁴, and
//! emits one JSON artifact so every later PR can prove or disprove a speedup
//! against committed numbers.
//!
//! ```text
//! cargo run -p ds-bench --release --bin perf_baseline -- [--quick]
//!     [--out PATH]        # where to write the artifact (default BENCH_PR10.json)
//!     [--check PATH]      # compare against a committed artifact; exit 2 when
//!                         # any stage regresses more than 1.3x, when the
//!                         # order-200 impulse/split absolute gates fail, or
//!                         # when the reduce path regresses more than 1.5x
//! ```
//!
//! The embedded `SEED_STAGE_MS` numbers are the pre-PR5 seed timings (commit
//! 566a4d2): the fastest of three runs interleaved with the optimized build
//! on the same machine — the same fastest-run statistic this binary records —
//! and the denominator of the reported `speedup_vs_seed_total`.

use ds_bench::{table1_model, time_method, Method, LMI_MAX_ORDER};
use ds_harness::json;
use ds_obs::STAGES;
use ds_passivity_suite::PassivityCheck;
use std::process::ExitCode;

/// Artifact schema; v2 added `current.reduce_ms` (reduce-then-verify wall
/// clock by order).  Single definition site, policed by `schema-once`.
const SCHEMA: &str = "ds-bench/perf-baseline/v2";

const FULL_ORDERS: [usize; 5] = [20, 40, 60, 100, 200];
const QUICK_ORDERS: [usize; 3] = [20, 40, 60];

/// Ladder sections for the reduce-then-verify rows (state order 2·s + 1):
/// the full run tops out at order 10001 — the order-10⁴ headline the README
/// quotes — while quick CI runs stop at order 2001.
const FULL_REDUCE_SECTIONS: [usize; 3] = [250, 1000, 5000];
const QUICK_REDUCE_SECTIONS: [usize; 2] = [250, 1000];

/// Pre-PR5 per-stage timings (ms) of the seed implementation, same machine,
/// same workload: the complete row of the fastest-total run out of three
/// (matching [`measure_stages`]'s statistic).  Ordered like `STAGES`.
const SEED_STAGE_MS: [(usize, [f64; 8]); 5] = [
    (20, [0.02, 0.64, 0.27, 0.19, 0.30, 0.71, 0.32, 2.45]),
    (40, [0.02, 4.61, 1.63, 1.11, 2.07, 4.42, 2.57, 16.43]),
    (60, [0.02, 12.73, 5.46, 3.76, 7.47, 15.52, 8.61, 53.57]),
    (
        100,
        [0.17, 64.64, 25.58, 14.39, 34.98, 69.45, 39.32, 248.53],
    ),
    (
        200,
        [
            1.39, 720.08, 208.95, 115.19, 325.75, 561.48, 338.11, 2270.95,
        ],
    ),
];

/// One measured row: per-stage milliseconds in [`ds_obs::STAGES`] order,
/// read from the spans the pipeline emits under an active trace — the same
/// span stream `ds-serve` feeds its `/metrics` stage histograms from, so the
/// baseline gates exactly what production observability reports.
fn measure_stages(order: usize, repeats: usize) -> Result<[f64; 8], String> {
    let model = table1_model(order).map_err(|e| format!("order {order}: {e}"))?;
    let mut best: Option<[f64; 8]> = None;
    for repeat in 0..repeats {
        ds_obs::trace::begin(&format!("perf-baseline-o{order}-r{repeat}"));
        let result = PassivityCheck::model(model.clone()).run();
        let trace = ds_obs::trace::end().ok_or("trace collector vanished mid-run")?;
        let outcome = result.map_err(|e| format!("order {order}: {e}"))?;
        if outcome.report.is_none() {
            return Err(format!("order {order}: {}", outcome.reason));
        }
        let mut row = [0.0f64; 8];
        for (slot, stage) in row.iter_mut().zip(STAGES.iter()) {
            let span = trace
                .spans
                .iter()
                .find(|s| s.name == *stage)
                .ok_or_else(|| format!("order {order}: span '{stage}' missing from trace"))?;
            *slot = span.elapsed_ns as f64 / 1e6;
        }
        // Keep the fastest run: the minimum is the standard noise-robust
        // statistic for wall-clock micro-measurements on shared machines.
        best = Some(match best {
            Some(current) if current[7] <= row[7] => current,
            _ => row,
        });
    }
    Ok(best.expect("at least one repeat"))
}

/// One reduce-then-verify row: sparse stamp + Krylov projection time and the
/// end-to-end wall clock (stamp, reduce, and the dense verify of the reduced
/// model), fastest of `repeats` runs by total.
struct ReduceRow {
    order: usize,
    reduced_order: usize,
    reduction_ms: f64,
    total_ms: f64,
}

fn measure_reduce(sections: usize, repeats: usize) -> Result<ReduceRow, String> {
    let netlist = ds_circuits::generators::reduced_ladder_netlist(sections, true)
        .map_err(|e| format!("sections {sections}: {e}"))?;
    let mut best: Option<ReduceRow> = None;
    for _ in 0..repeats {
        let start = std::time::Instant::now();
        let outcome = PassivityCheck::netlist(format!("reduce-{sections}"), netlist.clone())
            .reduce(ds_shh::krylov::ReduceSpec::default())
            .run()
            .map_err(|e| format!("sections {sections}: {e}"))?;
        let total_ms = start.elapsed().as_secs_f64() * 1e3;
        if outcome.passive != Some(true) {
            return Err(format!(
                "sections {sections}: reduced verify said {:?} ({})",
                outcome.passive, outcome.reason
            ));
        }
        let row = ReduceRow {
            order: outcome.order,
            reduced_order: outcome
                .reduced_order
                .ok_or_else(|| format!("sections {sections}: reduced order missing"))?,
            reduction_ms: outcome
                .reduction_ns
                .ok_or_else(|| format!("sections {sections}: reduction timing missing"))?
                as f64
                / 1e6,
            total_ms,
        };
        best = Some(match best {
            Some(current) if current.total_ms <= row.total_ms => current,
            _ => row,
        });
    }
    Ok(best.expect("at least one repeat"))
}

fn stage_object(row: &[f64; 8]) -> String {
    let fields: Vec<String> = STAGES
        .iter()
        .zip(row.iter())
        .map(|(name, ms)| {
            // Microsecond resolution keeps the artifact readable and diffable.
            let rounded = (*ms * 1000.0).round() / 1000.0;
            format!("{}: {}", json::quote(name), json::number(rounded))
        })
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn seed_row(order: usize) -> Option<&'static [f64; 8]> {
    SEED_STAGE_MS
        .iter()
        .find(|(o, _)| *o == order)
        .map(|(_, row)| row)
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let check_path = flag_value("--check");
    let orders: &[usize] = if quick { &QUICK_ORDERS } else { &FULL_ORDERS };
    let reduce_sections: &[usize] = if quick {
        &QUICK_REDUCE_SECTIONS
    } else {
        &FULL_REDUCE_SECTIONS
    };

    // Per-stage timings of the proposed test.
    let mut stage_rows: Vec<(usize, [f64; 8])> = Vec::new();
    for &order in orders {
        let repeats = if order >= 200 { 2 } else { 3 };
        let row = measure_stages(order, repeats)?;
        eprintln!(
            "# order {order}: total {:.2} ms (seed {:.2} ms)",
            row[7],
            seed_row(order).map_or(f64::NAN, |s| s[7])
        );
        stage_rows.push((order, row));
    }

    // Tasks/sec of all three methods (single-shot timings, like the paper).
    let mut throughput: Vec<(&str, Vec<(usize, f64)>)> = Vec::new();
    for method in [Method::Proposed, Method::Weierstrass, Method::Lmi] {
        let mut rows = Vec::new();
        for &order in orders {
            if method == Method::Lmi && order > LMI_MAX_ORDER {
                continue;
            }
            let model = table1_model(order).map_err(|e| format!("order {order}: {e}"))?;
            let run = time_method(method, &model).map_err(|e| format!("{method}: {e}"))?;
            if !run.verdict_correct {
                return Err(format!("{method} gave a wrong verdict at order {order}"));
            }
            rows.push((order, 1.0 / run.elapsed.as_secs_f64().max(1e-9)));
        }
        throughput.push((method.name(), rows));
    }

    // Reduce-then-verify wall clock (coupled ladder, default ReduceSpec).
    let mut reduce_rows: Vec<ReduceRow> = Vec::new();
    for &sections in reduce_sections {
        let repeats = if sections >= 5000 { 2 } else { 3 };
        let row = measure_reduce(sections, repeats)?;
        eprintln!(
            "# reduce order {}: reduction {:.2} ms, end-to-end {:.2} ms (reduced to {})",
            row.order, row.reduction_ms, row.total_ms, row.reduced_order
        );
        reduce_rows.push(row);
    }

    // Render the artifact.
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", json::quote(SCHEMA)));
    out.push_str(&format!(
        "  \"mode\": {},\n",
        json::quote(if quick { "quick" } else { "full" })
    ));
    out.push_str(&format!(
        "  \"orders\": [{}],\n",
        orders
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(
        "  \"workload\": \"table1 RLC ladder with impulsive modes, method = proposed\",\n",
    );
    out.push_str("  \"seed_baseline\": {\n");
    out.push_str(
        "    \"note\": \"pre-PR5 seed (commit 566a4d2), fastest of 3 interleaved runs\",\n",
    );
    out.push_str("    \"stage_ms\": {\n");
    let seed_lines: Vec<String> = orders
        .iter()
        .filter_map(|&o| seed_row(o).map(|row| format!("      \"{}\": {}", o, stage_object(row))))
        .collect();
    out.push_str(&seed_lines.join(",\n"));
    out.push_str("\n    }\n  },\n");
    out.push_str("  \"current\": {\n    \"stage_ms\": {\n");
    let cur_lines: Vec<String> = stage_rows
        .iter()
        .map(|(o, row)| format!("      \"{}\": {}", o, stage_object(row)))
        .collect();
    out.push_str(&cur_lines.join(",\n"));
    out.push_str("\n    },\n    \"tasks_per_sec\": {\n");
    let tp_lines: Vec<String> = throughput
        .iter()
        .map(|(name, rows)| {
            let fields: Vec<String> = rows
                .iter()
                .map(|(o, tps)| {
                    format!(
                        "\"{}\": {}",
                        o,
                        json::number((*tps * 1000.0).round() / 1000.0)
                    )
                })
                .collect();
            format!("      {}: {{{}}}", json::quote(name), fields.join(", "))
        })
        .collect();
    out.push_str(&tp_lines.join(",\n"));
    out.push_str("\n    },\n    \"reduce_ms\": {\n");
    let reduce_lines: Vec<String> = reduce_rows
        .iter()
        .map(|r| {
            format!(
                "      \"{}\": {{\"reduction\": {}, \"total\": {}, \"reduced_order\": {}}}",
                r.order,
                json::number((r.reduction_ms * 1000.0).round() / 1000.0),
                json::number((r.total_ms * 1000.0).round() / 1000.0),
                r.reduced_order
            )
        })
        .collect();
    out.push_str(&reduce_lines.join(",\n"));
    out.push_str("\n    }\n  },\n");
    out.push_str("  \"speedup_vs_seed_total\": {\n");
    let sp_lines: Vec<String> = stage_rows
        .iter()
        .filter_map(|(o, row)| {
            seed_row(*o).map(|seed| {
                let speedup = seed[7] / row[7].max(1e-9);
                format!(
                    "    \"{}\": {}",
                    o,
                    json::number((speedup * 100.0).round() / 100.0)
                )
            })
        })
        .collect();
    out.push_str(&sp_lines.join(",\n"));
    out.push_str("\n  }\n}\n");

    std::fs::write(&out_path, &out).map_err(|e| format!("writing {out_path}: {e}"))?;
    for (o, row) in &stage_rows {
        if let Some(seed) = seed_row(*o) {
            println!(
                "# perf_baseline: order {o} total {:.2} ms (seed {:.2} ms, speedup {:.2}x)",
                row[7],
                seed[7],
                seed[7] / row[7].max(1e-9)
            );
        }
    }
    for row in &reduce_rows {
        println!(
            "# perf_baseline: reduce order {} -> {} in {:.2} ms (end-to-end {:.2} ms)",
            row.order, row.reduced_order, row.reduction_ms, row.total_ms
        );
    }
    println!("# perf_baseline: wrote {out_path}");

    // Optional regression gate against a committed artifact.
    if let Some(reference_path) = check_path {
        let text = std::fs::read_to_string(&reference_path)
            .map_err(|e| format!("reading {reference_path}: {e}"))?;
        let reference = json::parse(&text).map_err(|e| format!("{reference_path}: {e}"))?;
        let stage_ms = reference
            .get("current")
            .and_then(|c| c.get("stage_ms"))
            .ok_or_else(|| format!("{reference_path}: missing current.stage_ms"))?;
        let mut regressions = Vec::new();
        for (order, row) in &stage_rows {
            let Some(committed) = stage_ms.get(&order.to_string()) else {
                continue; // quick runs only cover a subset of the committed orders
            };
            for (stage, fresh) in STAGES.iter().zip(row.iter()) {
                let Some(reference_ms) = committed.get(stage).and_then(|v| v.as_f64()) else {
                    return Err(format!(
                        "{reference_path}: missing {stage} at order {order}"
                    ));
                };
                // 1.3x bound with a 5 ms floor: enough headroom for CI box
                // noise, tight enough that a real per-stage regression trips.
                // Stages under 5 ms are scheduler-jitter-dominated on shared
                // runners; a real regression in them still surfaces through
                // the relative bound at orders 100/200, where every stage
                // clears the floor.
                let bound = 1.3 * reference_ms.max(5.0);
                if *fresh > bound {
                    regressions.push(format!(
                        "order {order} stage {stage}: {fresh:.2} ms vs committed {reference_ms:.2} ms (>1.3x)"
                    ));
                }
            }
            // Absolute order-200 gates on the two stages this repo has
            // optimized hardest (≥1.5x vs their BENCH_PR5.json values of
            // 403.74 / 476.705 ms): relative bounds alone would let them
            // creep back up across a chain of sub-1.3x regressions.
            if *order == 200 {
                for (stage, limit_ms) in [("impulse", 269.0), ("split", 318.0)] {
                    let idx = STAGES
                        .iter()
                        .position(|s| *s == stage)
                        .expect("known stage");
                    if row[idx] > limit_ms {
                        regressions.push(format!(
                            "order 200 stage {stage}: {:.2} ms exceeds the absolute {limit_ms} ms gate",
                            row[idx]
                        ));
                    }
                }
            }
        }
        // Reduce-then-verify gate: the end-to-end wall clock at each order the
        // committed artifact also measured must stay within 1.5x (looser than
        // the stage bound — the path includes a sparse LU whose timing is more
        // sensitive to cache state).  Pre-v2 artifacts have no reduce rows.
        match reference.get("current").and_then(|c| c.get("reduce_ms")) {
            Some(reduce_ms) => {
                for row in &reduce_rows {
                    let Some(committed) = reduce_ms.get(&row.order.to_string()) else {
                        continue; // quick runs cover a subset of the committed orders
                    };
                    let Some(reference_total) = committed.get("total").and_then(|v| v.as_f64())
                    else {
                        return Err(format!(
                            "{reference_path}: missing reduce total at order {}",
                            row.order
                        ));
                    };
                    let bound = 1.5 * reference_total.max(5.0);
                    if row.total_ms > bound {
                        regressions.push(format!(
                            "reduce order {}: {:.2} ms vs committed {:.2} ms (>1.5x)",
                            row.order, row.total_ms, reference_total
                        ));
                    }
                }
            }
            None => eprintln!(
                "# perf_baseline: {reference_path} predates the reduce rows; reduce gate skipped"
            ),
        }
        if !regressions.is_empty() {
            eprintln!("# perf_baseline: REGRESSIONS against {reference_path}:");
            for r in &regressions {
                eprintln!("#   {r}");
            }
            return Ok(ExitCode::from(2));
        }
        println!(
            "# perf_baseline: no stage regressed more than 1.3x against {reference_path}, \
             order-200 and reduce gates hold"
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("perf_baseline: {e}");
            ExitCode::FAILURE
        }
    }
}
