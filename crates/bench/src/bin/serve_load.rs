//! Load generator for the `ds-serve` passivity-check daemon (`BENCH_PR9.json`).
//!
//! Replays the committed `examples/decks/` corpus against a daemon at
//! increasing client concurrency and records per-level p50/p99 latency,
//! throughput, and cache-hit rate into one machine-readable artifact — the
//! serving-layer companion of `perf_baseline`'s kernel numbers.
//!
//! By default the daemon is self-hosted in-process on an ephemeral port (the
//! exact server the `ds-serve` binary runs); `--addr` points the generator at
//! an externally started daemon instead.
//!
//! ```text
//! cargo run -p ds-bench --release --bin serve_load -- [--quick]
//!     [--decks DIR]       # deck corpus (default examples/decks)
//!     [--out PATH]        # artifact path (default BENCH_PR9.json)
//!     [--levels 1,2,4,8]  # client concurrency ladder
//!     [--repeats N]       # corpus passes per client per level (default 4)
//!     [--addr HOST:PORT]  # use an external daemon instead of self-hosting
//! ```
//!
//! The first pass at the first level computes every verdict; every later
//! request is answered from the daemon's two-tier cache, so the artifact
//! records both the cold-path compute latency and the hot-path cache latency
//! the cache-hit rate buys.
//!
//! The artifact also cross-checks the two latency vantage points: the
//! client-observed quantiles measured here against the server-side
//! `check_latency_ms` quantiles from `/stats` (fed by the daemon's ds-obs
//! histogram).  When the run self-hosts, the two must agree within the
//! histogram's bucket resolution — a loud failure if the daemon's
//! observability ever drifts from what clients actually experience.

use ds_harness::json;
use ds_serve::{client, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Args {
    decks_dir: PathBuf,
    out_path: PathBuf,
    levels: Vec<usize>,
    repeats: usize,
    addr: Option<SocketAddr>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        decks_dir: PathBuf::from("examples/decks"),
        out_path: PathBuf::from("BENCH_PR9.json"),
        levels: vec![1, 2, 4, 8],
        repeats: 4,
        addr: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--decks" => args.decks_dir = PathBuf::from(value("--decks")?),
            "--out" => args.out_path = PathBuf::from(value("--out")?),
            "--levels" => {
                args.levels = value("--levels")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("--levels: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if args.levels.is_empty() || args.levels.contains(&0) {
                    return Err("--levels needs positive concurrency values".into());
                }
            }
            "--repeats" => {
                args.repeats = value("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if args.repeats == 0 {
                    return Err("--repeats must be positive".into());
                }
            }
            "--addr" => {
                args.addr = Some(
                    value("--addr")?
                        .parse()
                        .map_err(|e| format!("--addr: {e}"))?,
                )
            }
            "--quick" => {
                args.levels = vec![1, 2, 4];
                args.repeats = 2;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn load_corpus(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cir"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .cir decks under {}", dir.display()));
    }
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            std::fs::read_to_string(&p)
                .map(|text| (name, text))
                .map_err(|e| format!("reading {}: {e}", p.display()))
        })
        .collect()
}

#[derive(Default)]
struct LevelTally {
    latencies_ms: Vec<f64>,
    hits: usize,
    misses: usize,
    retried_429: usize,
    errors: usize,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

/// One client thread: `repeats` passes over the corpus, one POST per deck.
/// 429 responses are retried after the advertised backoff (and tallied — the
/// artifact records how often backpressure engaged at each level).
fn client_pass(
    addr: SocketAddr,
    corpus: &[(String, String)],
    repeats: usize,
    offset: usize,
) -> LevelTally {
    let mut tally = LevelTally::default();
    for pass in 0..repeats {
        for index in 0..corpus.len() {
            // Stagger the replay order per client so concurrent clients hit
            // different decks first (more coalescing variety than lockstep).
            let (_, text) = &corpus[(index + offset + pass) % corpus.len()];
            loop {
                let start = Instant::now();
                match client::post(addr, "/check", text) {
                    Ok(reply) if reply.status == 200 => {
                        tally.latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
                        match reply.header("x-cache") {
                            Some("miss") => tally.misses += 1,
                            Some(_) => tally.hits += 1,
                            None => tally.errors += 1,
                        }
                        break;
                    }
                    Ok(reply) if reply.status == 429 => {
                        tally.retried_429 += 1;
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Ok(_) | Err(_) => {
                        tally.errors += 1;
                        break;
                    }
                }
            }
        }
    }
    tally
}

struct LevelResult {
    concurrency: usize,
    requests: usize,
    wall_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    hit_rate: f64,
    throughput_rps: f64,
    retried_429: usize,
    errors: usize,
    /// Sorted per-request latencies, kept so the run-wide client quantiles
    /// can be cross-checked against the server-side histogram.
    latencies_ms: Vec<f64>,
}

fn run_level(
    addr: SocketAddr,
    corpus: Arc<Vec<(String, String)>>,
    concurrency: usize,
    repeats: usize,
) -> LevelResult {
    let offset = Arc::new(AtomicUsize::new(0));
    let wall = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|_| {
            let corpus = Arc::clone(&corpus);
            let offset = Arc::clone(&offset);
            std::thread::spawn(move || {
                let skew = offset.fetch_add(1, Ordering::Relaxed);
                client_pass(addr, &corpus, repeats, skew)
            })
        })
        .collect();
    let mut merged = LevelTally::default();
    for handle in handles {
        let tally = handle.join().expect("client thread");
        merged.latencies_ms.extend(tally.latencies_ms);
        merged.hits += tally.hits;
        merged.misses += tally.misses;
        merged.retried_429 += tally.retried_429;
        merged.errors += tally.errors;
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    merged
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = merged.latencies_ms.len();
    let answered = merged.hits + merged.misses;
    LevelResult {
        concurrency,
        requests,
        wall_ms,
        p50_ms: percentile(&merged.latencies_ms, 0.50),
        p99_ms: percentile(&merged.latencies_ms, 0.99),
        hit_rate: if answered == 0 {
            0.0
        } else {
            merged.hits as f64 / answered as f64
        },
        throughput_rps: if wall_ms > 0.0 {
            requests as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        retried_429: merged.retried_429,
        errors: merged.errors,
        latencies_ms: merged.latencies_ms,
    }
}

/// Client-vs-server latency comparison: the run-wide client quantiles
/// against the daemon's own `check_latency_ms` numbers from `/stats`.
struct CrossCheck {
    client_p50_ms: f64,
    client_p99_ms: f64,
    server_p50_ms: f64,
    server_p99_ms: f64,
    server_count: u64,
    client_requests: usize,
    consistent: bool,
}

/// Extracts `check_latency_ms` from the `/stats` body and compares it with
/// the merged client-side distribution.
///
/// The server histogram is log-bucketed (ratio √2) and its quantile reports
/// the bucket's upper bound, so the server number may legitimately sit up to
/// one bucket width *above* the true latency; the client number includes
/// connect/transfer overhead the server never sees, pushing it the other
/// way.  The consistency bound (2x + 5 ms) leaves room for both effects —
/// anything past it means the daemon's histogram is measuring wrongly.
fn cross_check(levels: &[LevelResult], stats_body: &str) -> Result<CrossCheck, String> {
    let mut client: Vec<f64> = levels
        .iter()
        .flat_map(|level| level.latencies_ms.iter().copied())
        .collect();
    client.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let stats = json::parse(stats_body).map_err(|e| format!("/stats body: {e}"))?;
    let latency = stats
        .get("check_latency_ms")
        .ok_or("/stats body is missing check_latency_ms")?;
    let field = |key: &str| {
        latency
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("/stats check_latency_ms is missing '{key}'"))
    };
    let result = CrossCheck {
        client_p50_ms: percentile(&client, 0.50),
        client_p99_ms: percentile(&client, 0.99),
        server_p50_ms: field("p50")?,
        server_p99_ms: field("p99")?,
        server_count: field("count")? as u64,
        client_requests: client.len(),
        consistent: true,
    };
    let within = |server: f64, client: f64| server <= client * 2.0 + 5.0;
    Ok(CrossCheck {
        consistent: within(result.server_p50_ms, result.client_p50_ms)
            && within(result.server_p99_ms, result.client_p99_ms),
        ..result
    })
}

fn round3(value: f64) -> f64 {
    (value * 1000.0).round() / 1000.0
}

fn render_artifact(
    corpus: &[(String, String)],
    self_hosted: bool,
    levels: &[LevelResult],
    repeats: usize,
    stats_body: Option<&str>,
    cross: Option<&CrossCheck>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ds-serve-load/v1\",\n");
    out.push_str("  \"workload\": \"examples/decks corpus replayed via POST /check\",\n");
    out.push_str(&format!(
        "  \"corpus\": [{}],\n",
        corpus
            .iter()
            .map(|(name, _)| json::quote(name))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"self_hosted\": {self_hosted},\n  \"repeats_per_client\": {repeats},\n"
    ));
    out.push_str("  \"levels\": [\n");
    let rows: Vec<String> = levels
        .iter()
        .map(|level| {
            format!(
                "    {{\"concurrency\": {}, \"requests\": {}, \"wall_ms\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"throughput_rps\": {}, \"cache_hit_rate\": {}, \"retried_429\": {}, \"errors\": {}}}",
                level.concurrency,
                level.requests,
                json::number(round3(level.wall_ms)),
                json::number(round3(level.p50_ms)),
                json::number(round3(level.p99_ms)),
                json::number(round3(level.throughput_rps)),
                json::number(round3(level.hit_rate)),
                level.retried_429,
                level.errors
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
    match cross {
        Some(c) => out.push_str(&format!(
            "  \"latency_cross_check\": {{\"client_p50_ms\": {}, \"client_p99_ms\": {}, \"server_p50_ms\": {}, \"server_p99_ms\": {}, \"server_count\": {}, \"client_requests\": {}, \"consistent\": {}}},\n",
            json::number(round3(c.client_p50_ms)),
            json::number(round3(c.client_p99_ms)),
            json::number(round3(c.server_p50_ms)),
            json::number(round3(c.server_p99_ms)),
            c.server_count,
            c.client_requests,
            c.consistent
        )),
        None => out.push_str("  \"latency_cross_check\": null,\n"),
    }
    match stats_body {
        Some(stats) => out.push_str(&format!("  \"server_stats\": {stats}\n")),
        None => out.push_str("  \"server_stats\": null\n"),
    }
    out.push_str("}\n");
    out
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let corpus = Arc::new(load_corpus(&args.decks_dir)?);
    eprintln!(
        "# serve_load: {} decks, levels {:?}, {} corpus passes per client",
        corpus.len(),
        args.levels,
        args.repeats
    );

    // Self-host unless an external daemon was given.  Memory-only store: the
    // artifact measures serving latency, not disk persistence.
    let server = match args.addr {
        Some(_) => None,
        None => Some(
            Server::start(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServerConfig::default()
            })
            .map_err(|e| format!("starting in-process daemon: {e}"))?,
        ),
    };
    let addr = match (args.addr, &server) {
        (Some(addr), _) => addr,
        (None, Some(server)) => server.local_addr(),
        (None, None) => unreachable!(),
    };
    let health = client::get(addr, "/health").map_err(|e| format!("daemon not reachable: {e}"))?;
    if health.status != 200 {
        return Err(format!("daemon /health answered {}", health.status));
    }

    let mut levels = Vec::new();
    for &concurrency in &args.levels {
        let level = run_level(addr, Arc::clone(&corpus), concurrency, args.repeats);
        eprintln!(
            "# c={:<3} requests={:<5} p50={:.2}ms p99={:.2}ms hit-rate={:.1}% rps={:.0} retries-429={} errors={}",
            level.concurrency,
            level.requests,
            level.p50_ms,
            level.p99_ms,
            level.hit_rate * 100.0,
            level.throughput_rps,
            level.retried_429,
            level.errors
        );
        if level.errors > 0 {
            return Err(format!(
                "{} requests failed at concurrency {}",
                level.errors, level.concurrency
            ));
        }
        levels.push(level);
    }

    let stats = client::get(addr, "/stats").ok().map(|reply| reply.body);
    if let Some(server) = server {
        server.stop().map_err(|e| format!("stopping daemon: {e}"))?;
    }

    let cross = match stats.as_deref() {
        Some(body) => Some(cross_check(&levels, body)?),
        None => None,
    };
    if let Some(c) = &cross {
        eprintln!(
            "# latency cross-check: client p50={:.2}ms p99={:.2}ms | server p50={:.2}ms p99={:.2}ms ({} observed)",
            c.client_p50_ms, c.client_p99_ms, c.server_p50_ms, c.server_p99_ms, c.server_count
        );
        // Only a self-hosted daemon saw exactly this run's traffic; an
        // external one may carry other clients' history in its histogram.
        if args.addr.is_none() && !c.consistent {
            return Err(format!(
                "server-side latency quantiles disagree with the client view: \
                 server p50 {:.2} ms / p99 {:.2} ms vs client p50 {:.2} ms / p99 {:.2} ms",
                c.server_p50_ms, c.server_p99_ms, c.client_p50_ms, c.client_p99_ms
            ));
        }
    }

    let artifact = render_artifact(
        &corpus,
        args.addr.is_none(),
        &levels,
        args.repeats,
        stats.as_deref(),
        cross.as_ref(),
    );
    std::fs::write(&args.out_path, &artifact)
        .map_err(|e| format!("writing {}: {e}", args.out_path.display()))?;
    println!("# artifact: {}", args.out_path.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("serve_load: {message}");
            ExitCode::FAILURE
        }
    }
}
