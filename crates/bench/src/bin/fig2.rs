//! Regenerates **Figure 2** of the paper: CPU-time curves over model order for
//! the three passivity tests (top pane: all methods, log scale; bottom pane:
//! proposed vs Weierstrass, linear scale).  The output is CSV so it can be
//! plotted directly.
//!
//! Run with `cargo run -p ds-bench --release --bin fig2 [--quick]`.

use ds_bench::{table1_model, time_method, Method, LMI_MAX_ORDER};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let orders: Vec<usize> = if quick {
        vec![20, 40, 60, 80, 100]
    } else {
        vec![20, 40, 60, 80, 100, 140, 200, 280, 400]
    };

    println!("# Figure 2 — CPU times for different passivity tests (CSV)");
    println!("order,lmi_seconds,proposed_seconds,weierstrass_seconds");
    for order in orders {
        let model = match table1_model(order) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("order {order}: failed to build model: {e}");
                continue;
            }
        };
        let lmi = if order <= LMI_MAX_ORDER {
            time_method(Method::Lmi, &model)
                .ok()
                .map(|r| r.elapsed.as_secs_f64())
        } else {
            None
        };
        let proposed = time_method(Method::Proposed, &model)
            .ok()
            .map(|r| r.elapsed.as_secs_f64());
        let weierstrass = time_method(Method::Weierstrass, &model)
            .ok()
            .map(|r| r.elapsed.as_secs_f64());
        println!(
            "{},{},{},{}",
            order,
            lmi.map_or("".to_string(), |v| format!("{v:.6}")),
            proposed.map_or("".to_string(), |v| format!("{v:.6}")),
            weierstrass.map_or("".to_string(), |v| format!("{v:.6}")),
        );
    }
}
