//! Regenerates **Figure 2** of the paper: CPU-time curves over model order for
//! the three passivity tests (top pane: all methods, log scale; bottom pane:
//! proposed vs Weierstrass, linear scale).  The output is CSV so it can be
//! plotted directly.  Since PR 2 the sweep runs on the `ds-harness` engine.
//!
//! Run with `cargo run -p ds-bench --release --bin fig2 [--quick] [--threads N]`.

use ds_bench::{threads_from_args, Method};
use ds_harness::prelude::*;
use std::collections::HashMap;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_from_args();
    let orders: Vec<usize> = if quick {
        vec![20, 40, 60, 80, 100]
    } else {
        vec![20, 40, 60, 80, 100, 140, 200, 280, 400]
    };

    let scenarios: Vec<Scenario> = orders
        .iter()
        .map(|&o| Scenario::new(FamilyKind::ImpulsiveLadder, o))
        .collect();
    let tasks = scenario_matrix(
        &scenarios,
        &[Method::Lmi, Method::Proposed, Method::Weierstrass],
    );
    let result = run_sweep(&SweepSpec {
        tasks,
        threads,
        sample_violations: false,
        task_ids: None,
    });
    let mut seconds: HashMap<(usize, &str), f64> = HashMap::new();
    for record in &result.records {
        if record.passive.is_some() {
            seconds.insert((record.order, record.method), record.elapsed.as_secs_f64());
        } else {
            eprintln!(
                "order {} / {}: {} ({})",
                record.order,
                record.method,
                record.status.name(),
                record.reason
            );
        }
    }

    println!("# Figure 2 — CPU times for different passivity tests (CSV)");
    println!("# engine: ds-harness, threads={}", result.threads);
    println!("order,lmi_seconds,proposed_seconds,weierstrass_seconds");
    for &order in &orders {
        let fmt = |m: &str| {
            seconds
                .get(&(order, m))
                .map_or(String::new(), |v| format!("{v:.6}"))
        };
        println!(
            "{},{},{},{}",
            order,
            fmt("lmi"),
            fmt("proposed"),
            fmt("weierstrass")
        );
    }
}
