//! EXP-V1: verdict agreement of the three passivity tests across passive and
//! non-passive model families (the qualitative claim of the paper's Section 4
//! that the proposed test is as reliable as the conventional ones).
//!
//! Run with `cargo run -p ds-bench --release --bin verdicts`.

use ds_bench::{run_method, Method};
use ds_circuits::generators;
use ds_circuits::random::{
    random_nonpassive_descriptor, random_passive_descriptor, RandomPassiveOptions,
};

fn main() {
    let mut cases: Vec<(String, ds_descriptor::DescriptorSystem, bool)> = Vec::new();
    for model in [
        generators::rc_ladder(7, 1.0, 1.0).unwrap(),
        generators::rlc_ladder(5, 1.0, 0.5, 1.0).unwrap(),
        generators::rlc_ladder_with_impulsive(12).unwrap(),
        generators::rlc_ladder_with_impulsive(20).unwrap(),
        generators::rc_grid(3, 4).unwrap(),
        generators::nonpassive_ladder(10).unwrap(),
        generators::negative_m1_model(10).unwrap(),
    ] {
        cases.push((
            model.name.clone(),
            model.system.clone(),
            model.expected_passive,
        ));
    }
    for seed in 0..3 {
        let opts = RandomPassiveOptions {
            with_impulsive_part: seed % 2 == 0,
            ..RandomPassiveOptions::default()
        };
        cases.push((
            format!("random_passive(seed={seed})"),
            random_passive_descriptor(&opts, seed).unwrap(),
            true,
        ));
        cases.push((
            format!("random_nonpassive(seed={seed})"),
            random_nonpassive_descriptor(&RandomPassiveOptions::default(), seed).unwrap(),
            false,
        ));
    }

    println!(
        "{:<40} {:>6} {:>10} {:>12} {:>8}",
        "model", "truth", "proposed", "weierstrass", "lmi"
    );
    let mut disagreements = 0usize;
    for (name, system, expected) in &cases {
        let model = ds_circuits::generators::CircuitModel {
            name: name.clone(),
            system: system.clone(),
            expected_passive: *expected,
            has_impulsive_modes: false,
        };
        let mut row: Vec<String> = Vec::new();
        for method in [Method::Proposed, Method::Weierstrass, Method::Lmi] {
            let text = match run_method(method, &model) {
                Ok(report) => {
                    let passive = report.verdict.is_passive();
                    if passive != *expected {
                        disagreements += 1;
                        format!("{passive}(!)")
                    } else {
                        format!("{passive}")
                    }
                }
                Err(e) => format!("err:{e}"),
            };
            row.push(text);
        }
        println!(
            "{:<40} {:>6} {:>10} {:>12} {:>8}",
            name, expected, row[0], row[1], row[2]
        );
    }
    println!("# entries marked (!) disagree with the construction ground truth");
    println!("# total disagreements: {disagreements}");
}
