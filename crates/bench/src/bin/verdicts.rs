//! EXP-V1: verdict agreement of the three passivity tests across passive and
//! non-passive model families (the qualitative claim of the paper's Section 4
//! that the proposed test is as reliable as the conventional ones).  Since
//! PR 2 the scenario matrix — now including the multiport, coupled-mesh,
//! transmission-line and near-boundary families — runs on the `ds-harness`
//! engine.
//!
//! Run with `cargo run -p ds-bench --release --bin verdicts [--threads N]`.

use ds_bench::{threads_from_args, Method};
use ds_harness::prelude::*;
use std::collections::HashMap;

fn main() {
    let threads = threads_from_args();
    let mut scenarios = vec![
        Scenario::new(FamilyKind::RcLadder, 7),
        Scenario::new(FamilyKind::RlcLadder, 5),
        Scenario::new(FamilyKind::ImpulsiveLadder, 12),
        Scenario::new(FamilyKind::ImpulsiveLadder, 20),
        Scenario::new(FamilyKind::RcGrid, 3),
        Scenario::new(FamilyKind::MultiportLadder, 3).with_ports(2),
        Scenario::new(FamilyKind::MultiportLadderImpulsive, 2).with_ports(3),
        Scenario::new(FamilyKind::CoupledMesh, 3),
        Scenario::new(FamilyKind::TlineChain, 4),
        Scenario::new(FamilyKind::PerturbedBoundary, 6).with_seed(1),
        Scenario::new(FamilyKind::PerturbedBoundary, 6)
            .with_margin(0.3)
            .with_seed(1),
        Scenario::new(FamilyKind::NonpassiveLadder, 10),
        Scenario::new(FamilyKind::NegativeM1, 10),
    ];
    for seed in 0..3u64 {
        scenarios.push(Scenario::new(FamilyKind::RandomPassive, 6).with_seed(seed));
        scenarios.push(Scenario::new(FamilyKind::RandomNonpassive, 6).with_seed(seed));
    }

    let tasks = scenario_matrix(&scenarios, &Method::ALL);
    let result = run_sweep(&SweepSpec {
        tasks: tasks.clone(),
        threads,
        sample_violations: true,
        task_ids: None,
    });

    // Group records back by scenario via their task index.
    let mut by_scenario: HashMap<usize, Vec<&SweepRecord>> = HashMap::new();
    for record in &result.records {
        let scenario = &tasks[record.task_id].scenario;
        let index = scenarios
            .iter()
            .position(|s| s == scenario)
            .expect("task without scenario");
        by_scenario.entry(index).or_default().push(record);
    }

    println!(
        "{:<60} {:>6} {:>10} {:>12} {:>8}",
        "model", "truth", "proposed", "weierstrass", "lmi"
    );
    let mut disagreements = 0usize;
    for (index, scenario) in scenarios.iter().enumerate() {
        let records = by_scenario.remove(&index).unwrap_or_default();
        let mut cell = |method: &str| -> String {
            match records.iter().find(|r| r.method == method) {
                None => "n/a".to_string(),
                Some(r) => match r.passive {
                    Some(passive) if r.agrees == Some(false) => {
                        disagreements += 1;
                        format!("{passive}(!)")
                    }
                    Some(passive) => format!("{passive}"),
                    None => format!("err:{}", r.reason),
                },
            }
        };
        let name = records
            .first()
            .map_or_else(|| format!("{:?}", scenario.family), |r| r.scenario.clone());
        let truth = match records.first().and_then(|r| r.expected_passive) {
            Some(expected) => expected.to_string(),
            None => "?".to_string(),
        };
        let proposed = cell("proposed");
        let weierstrass = cell("weierstrass");
        let lmi = cell("lmi");
        println!("{name:<60} {truth:>6} {proposed:>10} {weierstrass:>12} {lmi:>8}");
    }
    println!("# entries marked (!) disagree with the construction ground truth");
    println!("# total disagreements: {disagreements}");
    println!("# engine: ds-harness, threads={}", result.threads);
}
