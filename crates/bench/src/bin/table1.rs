//! Regenerates **Table 1** of the paper: CPU times (seconds) of the LMI test,
//! the proposed SHH test and the Weierstrass decomposition for RLC models of
//! order 20–400.  Since PR 2 the sweep runs on the `ds-harness` engine.
//!
//! Run with `cargo run -p ds-bench --release --bin table1`.
//! Pass `--quick` to restrict the sweep to orders ≤ 100 (useful in CI) and
//! `--threads N` to fan the (order × method) matrix across N workers
//! (default 1: single-shot timings, like the paper's measurements).

use ds_bench::{format_seconds, threads_from_args, Method, LMI_MAX_ORDER, TABLE1_ORDERS};
use ds_harness::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = threads_from_args();
    let orders: Vec<usize> = TABLE1_ORDERS
        .iter()
        .copied()
        .filter(|&o| !quick || o <= 100)
        .collect();

    let scenarios: Vec<Scenario> = orders
        .iter()
        .map(|&o| Scenario::new(FamilyKind::ImpulsiveLadder, o))
        .collect();
    let tasks = scenario_matrix(
        &scenarios,
        &[Method::Lmi, Method::Proposed, Method::Weierstrass],
    );
    let result = run_sweep(&SweepSpec {
        tasks,
        threads,
        sample_violations: false,
        task_ids: None,
    });

    // (order, method) → (elapsed, agrees)
    let mut cells: HashMap<(usize, &str), (Duration, bool)> = HashMap::new();
    for record in &result.records {
        if record.passive.is_some() {
            cells.insert(
                (record.order, record.method),
                (record.elapsed, record.agrees == Some(true)),
            );
        } else {
            eprintln!(
                "order {} / {}: {} ({})",
                record.order,
                record.method,
                record.status.name(),
                record.reason
            );
        }
    }

    println!("# Table 1 — CPU times (s) for different passivity tests");
    println!("# workload: rlc_ladder_with_impulsive(order), passive with impulsive modes");
    println!("# engine: ds-harness, threads={}", result.threads);
    println!(
        "{:>8} {:>14} {:>14} {:>14}  verdicts",
        "order", "LMI", "proposed", "weierstrass"
    );
    for &order in &orders {
        let lmi = cells.get(&(order, "lmi"));
        let proposed = cells.get(&(order, "proposed"));
        let weierstrass = cells.get(&(order, "weierstrass"));
        let fmt_flag = |c: Option<&(Duration, bool)>| c.map_or("-".into(), |r| r.1.to_string());
        let verdicts = format!(
            "lmi:{} shh:{} wst:{}",
            fmt_flag(lmi),
            fmt_flag(proposed),
            fmt_flag(weierstrass)
        );
        println!(
            "{:>8} {:>14} {:>14} {:>14}  {}",
            order,
            format_seconds(lmi.map(|r| r.0)),
            format_seconds(proposed.map(|r| r.0)),
            format_seconds(weierstrass.map(|r| r.0)),
            verdicts
        );
    }
    println!(
        "# 'n/a' for the LMI column beyond order {LMI_MAX_ORDER} mirrors the paper's NIL entries"
    );
}
