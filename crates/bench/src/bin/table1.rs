//! Regenerates **Table 1** of the paper: CPU times (seconds) of the LMI test,
//! the proposed SHH test and the Weierstrass decomposition for RLC models of
//! order 20–400.
//!
//! Run with `cargo run -p ds-bench --release --bin table1`.
//! Pass `--quick` to restrict the sweep to orders ≤ 100 (useful in CI).

use ds_bench::{format_seconds, table1_model, time_method, Method, LMI_MAX_ORDER, TABLE1_ORDERS};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let orders: Vec<usize> = TABLE1_ORDERS
        .iter()
        .copied()
        .filter(|&o| !quick || o <= 100)
        .collect();

    println!("# Table 1 — CPU times (s) for different passivity tests");
    println!("# workload: rlc_ladder_with_impulsive(order), passive with impulsive modes");
    println!(
        "{:>8} {:>14} {:>14} {:>14}  verdicts",
        "order", "LMI", "proposed", "weierstrass"
    );
    for order in orders {
        let model = match table1_model(order) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("order {order}: failed to build model: {e}");
                continue;
            }
        };
        let lmi = if order <= LMI_MAX_ORDER {
            time_method(Method::Lmi, &model).ok()
        } else {
            None
        };
        let proposed = time_method(Method::Proposed, &model).ok();
        let weierstrass = time_method(Method::Weierstrass, &model).ok();
        let verdicts = format!(
            "lmi:{} shh:{} wst:{}",
            lmi.as_ref()
                .map_or("-".into(), |r| r.verdict_correct.to_string()),
            proposed
                .as_ref()
                .map_or("-".into(), |r| r.verdict_correct.to_string()),
            weierstrass
                .as_ref()
                .map_or("-".into(), |r| r.verdict_correct.to_string()),
        );
        println!(
            "{:>8} {:>14} {:>14} {:>14}  {}",
            order,
            format_seconds(lmi.map(|r| r.elapsed)),
            format_seconds(proposed.map(|r| r.elapsed)),
            format_seconds(weierstrass.map(|r| r.elapsed)),
            verdicts
        );
    }
    println!(
        "# 'n/a' for the LMI column beyond order {LMI_MAX_ORDER} mirrors the paper's NIL entries"
    );
}
