//! EXP-F2 (Criterion form): the scaling curves of Figure 2 — proposed vs
//! Weierstrass CPU time as a function of model order.  The `fig2` binary emits
//! the full CSV sweep including order 400 and the LMI prefix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ds_bench::{run_method, table1_model, Method};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_scaling");
    group.sample_size(10);
    for &order in &[20usize, 60, 100, 140] {
        let model = table1_model(order).expect("workload generator");
        group.throughput(Throughput::Elements(order as u64));
        group.bench_with_input(BenchmarkId::new("proposed", order), &model, |b, model| {
            b.iter(|| run_method(Method::Proposed, model).expect("proposed test"))
        });
        group.bench_with_input(
            BenchmarkId::new("weierstrass", order),
            &model,
            |b, model| b.iter(|| run_method(Method::Weierstrass, model).expect("weierstrass test")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
