//! EXP-T1 (Criterion form): CPU times of the proposed test and the
//! Weierstrass baseline on the Table-1 workload for the small/medium orders.
//! The full 20–400 sweep including the LMI baseline is produced by the
//! `table1` binary (single-shot timings, like the paper's measurements).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ds_bench::{run_method, table1_model, Method};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cpu_times");
    group.sample_size(10);
    for &order in &[20usize, 40, 60, 100] {
        let model = table1_model(order).expect("workload generator");
        group.bench_with_input(BenchmarkId::new("proposed", order), &model, |b, model| {
            b.iter(|| run_method(Method::Proposed, model).expect("proposed test"))
        });
        group.bench_with_input(
            BenchmarkId::new("weierstrass", order),
            &model,
            |b, model| b.iter(|| run_method(Method::Weierstrass, model).expect("weierstrass test")),
        );
        if order <= 20 {
            group.bench_with_input(BenchmarkId::new("lmi", order), &model, |b, model| {
                b.iter(|| run_method(Method::Lmi, model).expect("lmi test"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
