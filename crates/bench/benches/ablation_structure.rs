//! EXP-A1: ablation of the design choices called out in DESIGN.md.
//!
//! * `full_test` — the proposed test as published (no precondition checks,
//!   matching the paper's assumptions).
//! * `with_preconditions` — the proposed test plus explicit regularity and
//!   stability verification (the extra O(n³) cost a defensive implementation
//!   would pay).
//! * `proper_part_only` — the paper's "sidetrack": extracting the stable proper
//!   part through the structured SHH route without the final positive-realness
//!   test.
//! * `m1_extraction` — the grade-1/2 chain computation of eq. (24)–(25) alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ds_bench::table1_model;
use ds_passivity::fast::{check_passivity, FastTestOptions};
use ds_passivity::{proper, reduction, residue};
use ds_shh::pencil::build_phi;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_structure");
    group.sample_size(10);
    for &order in &[20usize, 60, 100] {
        let model = table1_model(order).expect("workload generator");
        let sys = &model.system;
        group.bench_with_input(BenchmarkId::new("full_test", order), sys, |b, sys| {
            b.iter(|| check_passivity(sys, &FastTestOptions::default()).expect("test"))
        });
        group.bench_with_input(
            BenchmarkId::new("with_preconditions", order),
            sys,
            |b, sys| {
                b.iter(|| {
                    check_passivity(sys, &FastTestOptions::with_precondition_checks())
                        .expect("test")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("proper_part_only", order),
            sys,
            |b, sys| {
                b.iter(|| {
                    let phi = build_phi(sys).expect("phi");
                    let cancelled = reduction::cancel_impulsive_modes(&phi, 1e-9).expect("cancel");
                    let nondynamic = reduction::remove_nondynamic_modes(&cancelled.reduced, 1e-9)
                        .expect("nondynamic");
                    let restored = reduction::restore_shh(&nondynamic.reduced).expect("restore");
                    proper::extract_proper_part(&restored.system, 1e-9).expect("proper part")
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("m1_extraction", order), sys, |b, sys| {
            b.iter(|| residue::extract_m1(sys, 1e-9).expect("m1"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
