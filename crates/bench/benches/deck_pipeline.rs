//! Deck front-end pipeline costs: parsing a committed SPICE deck,
//! canonicalizing + hashing it, stamping it into a descriptor system, and
//! running the proposed passivity test on the result.

use criterion::{criterion_group, criterion_main, Criterion};
use ds_circuits::mna;
use ds_netlist::parse_deck;
use ds_passivity::fast::{check_passivity, FastTestOptions};

const COUPLED_PAIR: &str = include_str!("../../../examples/decks/coupled_pair.cir");
const RLGC_LINE: &str = include_str!("../../../examples/decks/rlgc_line.cir");

fn bench_deck_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("deck_pipeline");
    group.sample_size(30);
    group.bench_function("parse/coupled_pair", |b| {
        b.iter(|| parse_deck(COUPLED_PAIR).expect("committed deck parses"))
    });
    group.bench_function("canonicalize+hash/coupled_pair", |b| {
        let deck = parse_deck(COUPLED_PAIR).unwrap();
        b.iter(|| deck.content_hash())
    });
    group.bench_function("stamp/coupled_pair", |b| {
        let deck = parse_deck(COUPLED_PAIR).unwrap();
        b.iter(|| mna::stamp(&deck.netlist).expect("deck stamps"))
    });
    group.bench_function("parse+stamp+proposed/rlgc_line", |b| {
        b.iter(|| {
            let deck = parse_deck(RLGC_LINE).unwrap();
            let system = mna::stamp(&deck.netlist).unwrap();
            check_passivity(&system, &FastTestOptions::default()).expect("test runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_deck_pipeline);
criterion_main!(benches);
