//! Micro-benchmark of the ds-linalg kernels behind the SHH hot path, pinning
//! the two bit-exactness contracts of the PR-5 kernel layer on the way:
//! the Q-free Schur path returns the full decomposition's `T` verbatim, and
//! the V-free SVD path returns the full decomposition's `U`/`σ` verbatim.
//!
//! Run with `cargo run -p ds-bench --release --example bench_kernels`.

use ds_linalg::decomp::{lu, schur, svd};
use ds_linalg::Matrix;
use std::time::Instant;

fn main() {
    let n = 400;
    let a = Matrix::from_fn(n, n, |i, j| {
        let v = ((i * 31 + j * 17 + 3) % 23) as f64 / 23.0 - 0.5;
        0.1 * v + if i == j { 2.0 + 0.01 * i as f64 } else { 0.0 }
    });

    let t = Instant::now();
    let full = schur::real_schur(&a).unwrap();
    println!(
        "real_schur({n}):        {:>8.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    let t = Instant::now();
    let t_only = schur::real_schur_t_only(&a).unwrap();
    println!(
        "real_schur_t_only({n}): {:>8.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(full.t.as_slice(), t_only.as_slice());
    println!("T factors bit-identical: ok");

    let t = Instant::now();
    let factor = lu::factor(&a).unwrap();
    let inverse = factor.inverse().unwrap();
    println!(
        "lu factor+inverse({n}): {:>8.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );

    let t = Instant::now();
    let d = svd::svd(&a).unwrap();
    println!(
        "svd({n}):               {:>8.1} ms  (rank {})",
        t.elapsed().as_secs_f64() * 1e3,
        d.rank(1e-10)
    );
    let t = Instant::now();
    let (u, s) = svd::svd_u_s(&a).unwrap();
    println!(
        "svd_u_s({n}):           {:>8.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    assert_eq!(u.as_slice(), d.u.as_slice());
    assert_eq!(s, d.s);
    println!("U/sigma bit-identical: ok");

    let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 29) % 19) as f64 / 5.0 - 1.8);
    let t = Instant::now();
    let c = a.matmul(&b).unwrap();
    println!(
        "matmul({n}):            {:>8.1} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    // Keep every result observable so nothing is optimized away.
    assert!(c[(0, 0)].is_finite() && inverse[(0, 0)].is_finite());
}
