//! Error type for the LMI / ARE routines.

use ds_descriptor::DescriptorError;
use ds_linalg::LinalgError;
use std::fmt;

/// Error returned by the LMI and ARE solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LmiError {
    /// The Riccati equation has no stabilizing solution (eigenvalues of the
    /// associated Hamiltonian matrix lie on the imaginary axis, or the
    /// invariant-subspace basis is singular).
    NoStabilizingSolution {
        /// Explanation of the failure.
        details: String,
    },
    /// `D + Dᵀ` is singular, so the Riccati formulation is not applicable.
    SingularFeedthrough,
    /// The requested operation needs a square (equal inputs/outputs) system.
    NotSquareSystem {
        /// Number of inputs.
        inputs: usize,
        /// Number of outputs.
        outputs: usize,
    },
    /// A numerical kernel failed underneath.
    Numerical(LinalgError),
    /// A descriptor-system operation failed underneath.
    Descriptor(DescriptorError),
}

impl fmt::Display for LmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmiError::NoStabilizingSolution { details } => {
                write!(f, "no stabilizing Riccati solution: {details}")
            }
            LmiError::SingularFeedthrough => {
                write!(
                    f,
                    "D + Dᵀ is singular; the Riccati formulation does not apply"
                )
            }
            LmiError::NotSquareSystem { inputs, outputs } => write!(
                f,
                "operation requires a square system, got {inputs} inputs and {outputs} outputs"
            ),
            LmiError::Numerical(e) => write!(f, "numerical kernel failed: {e}"),
            LmiError::Descriptor(e) => write!(f, "descriptor operation failed: {e}"),
        }
    }
}

impl std::error::Error for LmiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LmiError::Numerical(e) => Some(e),
            LmiError::Descriptor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for LmiError {
    fn from(e: LinalgError) -> Self {
        LmiError::Numerical(e)
    }
}

impl From<DescriptorError> for LmiError {
    fn from(e: DescriptorError) -> Self {
        LmiError::Descriptor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(LmiError::SingularFeedthrough
            .to_string()
            .contains("singular"));
        assert!(LmiError::NoStabilizingSolution {
            details: "imaginary-axis eigenvalues".into()
        }
        .to_string()
        .contains("imaginary-axis"));
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<LmiError>();
    }
}
