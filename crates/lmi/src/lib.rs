//! # ds-lmi
//!
//! LMI and algebraic-Riccati-equation substrate for descriptor-system
//! positive-real tests.
//!
//! This crate provides the two "conventional" ingredients the DAC 2006 paper
//! compares against:
//!
//! * [`are`] — the Kalman–Yakubovich–Popov / algebraic Riccati route for
//!   regular systems (paper eq. (5)): the stabilizing ARE solution is obtained
//!   from the stable invariant subspace of the associated Hamiltonian matrix.
//! * [`positive_real_lmi`] — the extended positive-real LMI for descriptor
//!   systems (paper eq. (4), after Freund & Jarre) together with a first-order
//!   feasibility solver (projected gradient on the cone-violation objective).
//!   A general-purpose interior-point SDP solver would reproduce the paper's
//!   O(n⁵)–O(n⁶) complexity even more faithfully, but even this deliberately
//!   simple solver is orders of magnitude slower than the structured O(n³)
//!   test, which is the comparison the paper makes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod are;
pub mod error;
pub mod positive_real_lmi;

pub use error::LmiError;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::error::LmiError;
    pub use crate::positive_real_lmi::{LmiOptions, LmiOutcome};
}
