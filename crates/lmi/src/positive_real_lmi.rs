//! The extended positive-real LMI for descriptor systems (paper eq. (4)) and a
//! first-order feasibility solver.
//!
//! The LMI asks for an `X ∈ R^{n×n}` with
//!
//! ```text
//! F(X) = [ AᵀX + XᵀA    XᵀB − Cᵀ ]
//!        [ BᵀX − C     −(D + Dᵀ) ]   ⪯ 0,        EᵀX = XᵀE ⪰ 0.
//! ```
//!
//! Feasibility is sufficient for positive realness of the descriptor system
//! (and necessary under the minimality/feedthrough conditions stated in the
//! paper).  The solver below minimizes the squared distance of `F(X)` to the
//! negative-semidefinite cone plus the violation of the `EᵀX` conditions by
//! projected gradient descent; it is intentionally a *generic, unstructured*
//! method — this is the expensive baseline the paper's structured O(n³) test is
//! compared against.

use crate::error::LmiError;
use ds_descriptor::DescriptorSystem;
use ds_linalg::decomp::symmetric;
use ds_linalg::Matrix;

/// Options for the LMI feasibility solver.
#[derive(Debug, Clone)]
pub struct LmiOptions {
    /// Maximum number of gradient iterations.
    pub max_iterations: usize,
    /// Feasibility is declared when the total cone-violation objective drops
    /// below `tolerance * scale²`.
    pub tolerance: f64,
    /// Step-size safety factor (relative to the inverse Lipschitz estimate).
    pub step_scale: f64,
}

impl Default for LmiOptions {
    fn default() -> Self {
        LmiOptions {
            max_iterations: 10_000,
            tolerance: 1e-8,
            step_scale: 0.9,
        }
    }
}

/// Outcome of the LMI feasibility solve.
#[derive(Debug, Clone)]
pub enum LmiOutcome {
    /// A feasible `X` was found: the LMI certifies positive realness.
    Feasible {
        /// The feasible point.
        x: Matrix,
        /// Iterations used.
        iterations: usize,
        /// Final objective value (cone-violation measure).
        objective: f64,
    },
    /// The solver exhausted its iteration budget with a non-negligible
    /// violation: the LMI is (numerically) infeasible, i.e. the test cannot
    /// certify passivity.  For the workloads in this repository that is
    /// interpreted as "not passive".
    Infeasible {
        /// Final objective value (cone-violation measure).
        objective: f64,
        /// Iterations used.
        iterations: usize,
    },
}

impl LmiOutcome {
    /// `true` when a feasible point was found.
    pub fn is_feasible(&self) -> bool {
        matches!(self, LmiOutcome::Feasible { .. })
    }
}

/// The positive-real LMI attached to a specific descriptor system.
#[derive(Debug, Clone)]
pub struct DsPositiveRealLmi {
    e: Matrix,
    a: Matrix,
    b: Matrix,
    c: Matrix,
    r: Matrix,
    scale: f64,
}

impl DsPositiveRealLmi {
    /// Builds the LMI data for a square descriptor system.
    ///
    /// # Errors
    ///
    /// Returns [`LmiError::NotSquareSystem`] for non-square systems.
    pub fn new(sys: &DescriptorSystem) -> Result<Self, LmiError> {
        if !sys.is_square_system() {
            return Err(LmiError::NotSquareSystem {
                inputs: sys.num_inputs(),
                outputs: sys.num_outputs(),
            });
        }
        let r = sys.d() + &sys.d().transpose();
        Ok(DsPositiveRealLmi {
            e: sys.e().clone(),
            a: sys.a().clone(),
            b: sys.b().clone(),
            c: sys.c().clone(),
            r,
            scale: sys.scale(),
        })
    }

    /// State dimension `n`.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// Evaluates the LMI block matrix `F(X)`.
    pub fn f_of_x(&self, x: &Matrix) -> Matrix {
        let xta = x.transpose_matmul(&self.a).expect("shape");
        let f11 = &xta.transpose() + &xta;
        let f12 = &x.transpose_matmul(&self.b).expect("shape") - &self.c.transpose();
        let f21 = f12.transpose();
        let f22 = self.r.scale(-1.0);
        Matrix::from_blocks_2x2(&f11, &f12, &f21, &f22)
    }

    /// The cone-violation objective
    /// `½‖Π₊(F(X))‖² + ½‖Π₋(sym(EᵀX))‖² + ½‖EᵀX − XᵀE‖²` together with its
    /// gradient with respect to `X`.
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures from the cone projections.
    pub fn objective_and_gradient(&self, x: &Matrix) -> Result<(f64, Matrix), LmiError> {
        // Positive part of F(X): the violation of F ⪯ 0.
        let f = self.f_of_x(x).symmetric_part();
        let f_plus = symmetric::project_psd(&f)?;
        // EᵀX conditions.
        let etx = self.e.transpose_matmul(x)?;
        let asym = &etx - &etx.transpose();
        let sym = etx.symmetric_part();
        // Negative part of sym(EᵀX): violation of EᵀX ⪰ 0.
        let sym_minus = symmetric::project_psd(&sym.scale(-1.0))?;

        let objective = 0.5
            * (f_plus.norm_fro().powi(2) + sym_minus.norm_fro().powi(2) + asym.norm_fro().powi(2));

        // Gradient contributions (see the adjoint computations in the module
        // documentation of the repository's DESIGN notes):
        //   d/dX ½‖Π₊(F)‖²      = 2 (A S₁₁ + B S₂₁)  with S = Π₊(F)
        //   d/dX ½‖Π₋(sym)‖²    = −E T               with T = Π₋(sym(EᵀX)) = −sym_minus
        //   d/dX ½‖EᵀX − XᵀE‖²  = 2 E (EᵀX − XᵀE)
        let n = self.order();
        let s11 = f_plus.block(0, n, 0, n);
        let s21 = f_plus.block(n, f_plus.rows(), 0, n);
        let grad_f = (&self.a.matmul(&s11)? + &self.b.matmul(&s21)?).scale(2.0);
        let grad_sym = self.e.matmul(&sym_minus)?.scale(-1.0);
        let grad_asym = self.e.matmul(&asym)?.scale(2.0);
        let gradient = &(&grad_f + &grad_sym) + &grad_asym;
        Ok((objective, gradient))
    }

    /// Runs accelerated (Nesterov/FISTA-style) gradient feasibility.
    ///
    /// The cone-violation objective is convex with a Lipschitz gradient, so the
    /// accelerated scheme converges at the O(1/k²) rate; feasibility is
    /// declared when the violation drops below the (scaled) tolerance or has
    /// decreased by ten orders of magnitude from its initial value.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures; infeasibility is reported through
    /// [`LmiOutcome::Infeasible`], not as an error.
    pub fn solve(&self, options: &LmiOptions) -> Result<LmiOutcome, LmiError> {
        let n = self.order();
        // Initial guess: X = Eᵀ makes EᵀX = EᵀE ⪰ 0 and symmetric.
        let mut x = self.e.transpose();
        if x.norm_fro() == 0.0 {
            x = Matrix::identity(n).scale(0.1);
        }
        // Lipschitz-style estimate for the gradient of the quadratic pieces.
        let lip = (self.a.norm_fro() + self.b.norm_fro()).powi(2) + 3.0 * self.e.norm_fro().powi(2);
        let step = options.step_scale / lip.max(1e-12);
        let tol = options.tolerance * self.scale.powi(2);

        let mut x_prev = x.clone();
        let mut momentum = 1.0_f64;
        let mut objective = f64::INFINITY;
        let mut initial_objective = None;
        for iter in 0..options.max_iterations {
            // Extrapolated point.
            let momentum_next = 0.5 * (1.0 + (1.0 + 4.0 * momentum * momentum).sqrt());
            let beta = (momentum - 1.0) / momentum_next;
            let y = &x + &(&x - &x_prev).scale(beta);
            let (obj_y, grad_y) = self.objective_and_gradient(&y)?;
            let candidate = &y - &grad_y.scale(step);
            let (obj_x, _) = self.objective_and_gradient(&candidate)?;
            x_prev = x;
            x = candidate;
            momentum = momentum_next;
            objective = obj_x.min(obj_y);
            let initial = *initial_objective.get_or_insert(obj_y.max(f64::MIN_POSITIVE));
            if objective <= tol || objective <= 1e-10 * initial {
                return Ok(LmiOutcome::Feasible {
                    x,
                    iterations: iter,
                    objective,
                });
            }
        }
        Ok(LmiOutcome::Infeasible {
            objective,
            iterations: options.max_iterations,
        })
    }
}

/// Convenience wrapper: builds the LMI for `sys` and solves it.
///
/// # Errors
///
/// See [`DsPositiveRealLmi::new`] and [`DsPositiveRealLmi::solve`].
pub fn lmi_feasibility(
    sys: &DescriptorSystem,
    options: &LmiOptions,
) -> Result<LmiOutcome, LmiError> {
    DsPositiveRealLmi::new(sys)?.solve(options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_linalg::Matrix;

    fn passive_rc() -> DescriptorSystem {
        // Impedance of R ∥ C in series with r: strictly passive, E singular.
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0]]);
        let d = Matrix::filled(1, 1, 0.5);
        DescriptorSystem::new(e, a, b, c, d).unwrap()
    }

    fn nonpassive() -> DescriptorSystem {
        // Negative resistor at DC: G(0) < 0.
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0]]);
        let d = Matrix::filled(1, 1, -2.0);
        DescriptorSystem::new(e, a, b, c, d).unwrap()
    }

    #[test]
    fn lmi_structure_blocks() {
        let lmi = DsPositiveRealLmi::new(&passive_rc()).unwrap();
        let x = Matrix::identity(2);
        let f = lmi.f_of_x(&x);
        assert_eq!(f.shape(), (3, 3));
        // F22 = −(D + Dᵀ) = −1.
        assert!((f[(2, 2)] + 1.0).abs() < 1e-14);
        assert!(f.is_symmetric(1e-12));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let lmi = DsPositiveRealLmi::new(&nonpassive()).unwrap();
        let x0 = Matrix::from_rows(&[&[0.4, 0.1], &[-0.2, 0.3]]);
        let (f0, grad) = lmi.objective_and_gradient(&x0).unwrap();
        let h = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let mut xp = x0.clone();
                xp[(i, j)] += h;
                let (fp, _) = lmi.objective_and_gradient(&xp).unwrap();
                let fd = (fp - f0) / h;
                assert!(
                    (fd - grad[(i, j)]).abs() < 1e-4 * (1.0 + fd.abs()),
                    "gradient mismatch at ({i},{j}): fd {fd} vs {g}",
                    g = grad[(i, j)]
                );
            }
        }
    }

    #[test]
    fn passive_system_is_feasible() {
        let outcome = lmi_feasibility(&passive_rc(), &LmiOptions::default()).unwrap();
        assert!(
            outcome.is_feasible(),
            "expected feasibility, got {outcome:?}"
        );
        if let LmiOutcome::Feasible { x, .. } = outcome {
            let lmi = DsPositiveRealLmi::new(&passive_rc()).unwrap();
            let (obj, _) = lmi.objective_and_gradient(&x).unwrap();
            assert!(obj < 1e-6);
        }
    }

    #[test]
    fn nonpassive_system_is_infeasible() {
        // D + Dᵀ < 0 makes F(X) ⪯ 0 impossible for any X.
        let outcome = lmi_feasibility(
            &nonpassive(),
            &LmiOptions {
                max_iterations: 300,
                ..LmiOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.is_feasible());
    }

    #[test]
    fn non_square_rejected() {
        let sys = DescriptorSystem::new(
            Matrix::identity(1),
            Matrix::filled(1, 1, -1.0),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::filled(1, 1, 1.0),
            Matrix::from_rows(&[&[0.0, 0.0]]),
        )
        .unwrap();
        assert!(matches!(
            DsPositiveRealLmi::new(&sys),
            Err(LmiError::NotSquareSystem { .. })
        ));
    }

    #[test]
    fn options_default_values() {
        let o = LmiOptions::default();
        assert!(o.max_iterations > 100);
        assert!(o.tolerance > 0.0 && o.tolerance < 1e-3);
    }
}
