//! The positive-real algebraic Riccati equation (paper eq. (5)) for regular
//! state-space systems.
//!
//! Strict positive realness of a stable `G(s) = D + C (sI − A)⁻¹ B` with
//! `R = D + Dᵀ ≻ 0` is equivalent to the existence of a stabilizing solution
//! `X = Xᵀ ≻ 0` of
//!
//! ```text
//! Aᵀ X + X A + (X B − Cᵀ) R⁻¹ (Bᵀ X − C) = 0.
//! ```
//!
//! The stabilizing solution is obtained from the stable invariant subspace
//! `[U₁; U₂]` of the Hamiltonian matrix `H = [[Ã, G], [−Q, −Ãᵀ]]` with
//! `Ã = A − B R⁻¹ C`, `G = B R⁻¹ Bᵀ`, `Q = Cᵀ R⁻¹ C`, as `X = U₂ U₁⁻¹`.

use crate::error::LmiError;
use ds_descriptor::system::StateSpace;
use ds_linalg::decomp::{lu, symmetric};
use ds_linalg::sign::{self, SignOptions};
use ds_linalg::Matrix;

/// Outcome of the ARE-based Kalman–Yakubovich–Popov test.
#[derive(Debug, Clone, PartialEq)]
pub enum KypOutcome {
    /// A stabilizing, symmetric, positive-semidefinite solution exists:
    /// the system is (strictly) positive real.
    PositiveReal {
        /// The stabilizing Riccati solution.
        solution: Matrix,
    },
    /// No stabilizing solution exists (Hamiltonian eigenvalues on the
    /// imaginary axis or indefinite candidate solution): not strictly
    /// positive real.
    NotPositiveReal {
        /// Diagnostic explanation.
        reason: String,
    },
}

impl KypOutcome {
    /// `true` when the outcome certifies positive realness.
    pub fn is_positive_real(&self) -> bool {
        matches!(self, KypOutcome::PositiveReal { .. })
    }
}

/// Solves the positive-real ARE for a stable, square state-space system.
///
/// # Errors
///
/// * [`LmiError::NotSquareSystem`] for non-square systems.
/// * [`LmiError::SingularFeedthrough`] when `D + Dᵀ` is singular.
/// * [`LmiError::NoStabilizingSolution`] when the Hamiltonian has
///   imaginary-axis eigenvalues or the subspace basis is singular.
pub fn solve_positive_real_are(ss: &StateSpace, tol: f64) -> Result<Matrix, LmiError> {
    if ss.num_inputs() != ss.num_outputs() {
        return Err(LmiError::NotSquareSystem {
            inputs: ss.num_inputs(),
            outputs: ss.num_outputs(),
        });
    }
    let n = ss.order();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }
    let r = &ss.d.clone() + &ss.d.transpose();
    let r_min = symmetric::min_eigenvalue(&r)?;
    if r_min <= tol.abs() * r.norm_fro().max(1.0) {
        return Err(LmiError::SingularFeedthrough);
    }
    let r_inv = lu::inverse(&r)?;
    let br = ss.b.matmul(&r_inv)?;
    let a_tilde = &ss.a - &br.matmul(&ss.c)?;
    let g = br.matmul(&ss.b.transpose())?;
    let q = ss.c.transpose_matmul(&r_inv.matmul(&ss.c)?)?;
    let hamiltonian = Matrix::from_blocks_2x2(
        &a_tilde,
        &g,
        &q.scale(-1.0),
        &a_tilde.transpose().scale(-1.0),
    );
    let split = sign::spectral_split(&hamiltonian, &SignOptions::default()).map_err(|e| {
        LmiError::NoStabilizingSolution {
            details: format!("spectral split failed: {e}"),
        }
    })?;
    if split.stable_basis.cols() != n {
        return Err(LmiError::NoStabilizingSolution {
            details: format!(
                "stable invariant subspace has dimension {} instead of {n} \
                 (imaginary-axis Hamiltonian eigenvalues)",
                split.stable_basis.cols()
            ),
        });
    }
    let u1 = split.stable_basis.block(0, n, 0, n);
    let u2 = split.stable_basis.block(n, 2 * n, 0, n);
    let u1_factor = lu::factor(&u1)?;
    if u1_factor.singular {
        return Err(LmiError::NoStabilizingSolution {
            details: "the leading block of the stable invariant subspace is singular".into(),
        });
    }
    // X = U2 U1⁻¹, computed as the solution of U1ᵀ Xᵀ = U2ᵀ.
    let x_t = lu::solve(&u1.transpose(), &u2.transpose())?;
    let x = x_t.transpose();
    // Symmetrize (the exact solution is symmetric; round-off breaks it mildly).
    Ok(x.symmetric_part())
}

/// Runs the full KYP test: solve the ARE and check symmetry / positive
/// semidefiniteness of the solution.
///
/// # Errors
///
/// Propagates structural errors ([`LmiError::NotSquareSystem`],
/// [`LmiError::SingularFeedthrough`]) and numerical failures; a missing
/// stabilizing solution is reported as [`KypOutcome::NotPositiveReal`], not an
/// error.
pub fn kyp_test(ss: &StateSpace, tol: f64) -> Result<KypOutcome, LmiError> {
    if ss.order() > 0 && !ss.is_stable(0.0)? {
        return Ok(KypOutcome::NotPositiveReal {
            reason: "system has poles in the closed right half-plane".into(),
        });
    }
    match solve_positive_real_are(ss, tol) {
        Ok(x) => {
            let min_eig = if x.rows() > 0 {
                symmetric::min_eigenvalue(&x)?
            } else {
                0.0
            };
            let scale = x.norm_fro().max(1.0);
            if min_eig >= -tol.abs() * scale {
                Ok(KypOutcome::PositiveReal { solution: x })
            } else {
                Ok(KypOutcome::NotPositiveReal {
                    reason: format!("Riccati solution is indefinite (λ_min = {min_eig:.3e})"),
                })
            }
        }
        Err(LmiError::NoStabilizingSolution { details }) => {
            Ok(KypOutcome::NotPositiveReal { reason: details })
        }
        Err(other) => Err(other),
    }
}

/// Residual of the positive-real ARE for a candidate solution, used by tests
/// and diagnostics.
///
/// # Errors
///
/// Propagates shape/numerical failures.
pub fn are_residual(ss: &StateSpace, x: &Matrix) -> Result<f64, LmiError> {
    let r = &ss.d.clone() + &ss.d.transpose();
    let r_inv = lu::inverse(&r)?;
    let xb_c = &ss.b.transpose_matmul(x)?.transpose() - &ss.c.transpose();
    let term = &xb_c.matmul(&r_inv)? * &xb_c.transpose();
    let residual = &(&ss.a.transpose_matmul(x)? + &x.matmul(&ss.a)?) + &term;
    Ok(residual.norm_fro())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// G(s) = (s + 2)/(s + 1): strictly positive real.
    fn spr() -> StateSpace {
        StateSpace::new(
            Matrix::filled(1, 1, -1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
        )
        .unwrap()
    }

    /// G(s) = 0.05 + 1/(s+1): strictly positive real with a small feedthrough,
    /// exercising the near-singular `D + Dᵀ` regime of the ARE route.
    fn small_feedthrough() -> StateSpace {
        StateSpace::new(
            Matrix::filled(1, 1, -1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 0.05),
        )
        .unwrap()
    }

    #[test]
    fn spr_system_has_psd_solution() {
        let x = solve_positive_real_are(&spr(), 1e-10).unwrap();
        assert!(x.is_symmetric(1e-9));
        assert!(x[(0, 0)] > 0.0);
        assert!(are_residual(&spr(), &x).unwrap() < 1e-8);
        assert!(kyp_test(&spr(), 1e-9).unwrap().is_positive_real());
    }

    #[test]
    fn known_scalar_solution() {
        // For A=-1, B=1, C=1, D=1: R=2, Ã = A − BR⁻¹C = −1.5, G = 0.5, Q = 0.5.
        // ARE: 2(−1)x + ... solve numerically and check residual only.
        let x = solve_positive_real_are(&spr(), 1e-10).unwrap();
        let res = are_residual(&spr(), &x).unwrap();
        assert!(res < 1e-9, "residual {res}");
    }

    #[test]
    fn small_feedthrough_system_is_positive_real() {
        // G(s) = 0.05 + 1/(s+1) is strictly PR (Re G > 0 everywhere),
        // so the KYP test should accept it.
        let outcome = kyp_test(&small_feedthrough(), 1e-9).unwrap();
        assert!(outcome.is_positive_real());
    }

    #[test]
    fn non_positive_real_detected() {
        // G(s) = 0.1 + (−s + 1)/(s² + 0.6 s + 1) dips negative at ω ≈ 1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-1.0, -0.6]]);
        let b = Matrix::column(&[0.0, 1.0]);
        let c = Matrix::row_vector(&[1.0, -1.0]);
        let d = Matrix::filled(1, 1, 0.1);
        let ss = StateSpace::new(a, b, c, d).unwrap();
        let outcome = kyp_test(&ss, 1e-9).unwrap();
        assert!(!outcome.is_positive_real());
    }

    #[test]
    fn unstable_system_rejected() {
        let ss = StateSpace::new(
            Matrix::filled(1, 1, 0.5),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
        )
        .unwrap();
        assert!(!kyp_test(&ss, 1e-9).unwrap().is_positive_real());
    }

    #[test]
    fn singular_feedthrough_reported() {
        let ss = StateSpace::new(
            Matrix::filled(1, 1, -1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert!(matches!(
            solve_positive_real_are(&ss, 1e-10),
            Err(LmiError::SingularFeedthrough)
        ));
    }

    #[test]
    fn non_square_rejected() {
        let ss = StateSpace::new(
            Matrix::filled(1, 1, -1.0),
            Matrix::from_rows(&[&[1.0, 0.5]]),
            Matrix::filled(1, 1, 1.0),
            Matrix::from_rows(&[&[1.0, 1.0]]),
        )
        .unwrap();
        assert!(matches!(
            solve_positive_real_are(&ss, 1e-10),
            Err(LmiError::NotSquareSystem { .. })
        ));
    }

    #[test]
    fn mimo_positive_real_system() {
        let a = Matrix::diag(&[-1.0, -2.0, -3.0]);
        let b = Matrix::from_fn(3, 2, |i, j| ((i + j) % 2) as f64 + 0.5);
        let c = b.transpose();
        let d = Matrix::identity(2).scale(1.5);
        let ss = StateSpace::new(a, b, c, d).unwrap();
        let outcome = kyp_test(&ss, 1e-9).unwrap();
        assert!(outcome.is_positive_real());
        if let KypOutcome::PositiveReal { solution } = outcome {
            assert!(are_residual(&ss, &solution).unwrap() < 1e-7);
        }
    }
}
