//! Sylvester and Lyapunov equation solvers (Bartels–Stewart).

use crate::decomp::lu;
use crate::decomp::schur;
use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Solves the Sylvester equation `A X + X B = C`.
///
/// Uses the Bartels–Stewart algorithm: real Schur forms of `A` and `B`, then
/// block back-substitution on the quasi-triangular factors.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] for inconsistent dimensions.
/// * [`LinalgError::Singular`] when `A` and `−B` share an eigenvalue (the
///   equation is then singular).
/// * Propagates Schur convergence failures.
pub fn solve_sylvester(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    let m = b.rows();
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "lyapunov::solve_sylvester (A)",
            shape: a.shape(),
        });
    }
    if !b.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "lyapunov::solve_sylvester (B)",
            shape: b.shape(),
        });
    }
    if c.shape() != (n, m) {
        return Err(LinalgError::ShapeMismatch {
            operation: "lyapunov::solve_sylvester",
            left: (n, m),
            right: c.shape(),
        });
    }
    if n == 0 || m == 0 {
        return Ok(Matrix::zeros(n, m));
    }

    // A = U T Uᵀ, B = V S Vᵀ with T, S quasi-upper-triangular.
    let sa = schur::real_schur(a)?;
    let sb = schur::real_schur(b)?;
    let t = &sa.t;
    let s = &sb.t;
    // Transform the right-hand side: F = Uᵀ C V.
    let f = &sa.q.transpose_matmul(c)? * &sb.q;

    // Solve T Y + Y S = F by processing the columns of Y in blocks determined
    // by the quasi-triangular structure of S (left to right) and, within each
    // column block, the rows of Y in blocks of T (bottom to top).
    let t_blocks = sa.diagonal_blocks();
    let s_blocks = sb.diagonal_blocks();
    let mut y = Matrix::zeros(n, m);

    for &(cj, cw) in &s_blocks {
        for &(ri, rh) in t_blocks.iter().rev() {
            // Right-hand side for this block:
            // F_block - T[ri, ri+rh..n] * Y[ri+rh..n, cols] - Y[rows, 0..cj] * S[0..cj, cols]
            let mut rhs = f.block(ri, ri + rh, cj, cj + cw);
            if ri + rh < n {
                let t_right = t.block(ri, ri + rh, ri + rh, n);
                let y_below = y.block(ri + rh, n, cj, cj + cw);
                rhs = &rhs - &(&t_right * &y_below);
            }
            if cj > 0 {
                let y_left = y.block(ri, ri + rh, 0, cj);
                let s_above = s.block(0, cj, cj, cj + cw);
                rhs = &rhs - &(&y_left * &s_above);
            }
            // Solve the small equation T_ii Y_b + Y_b S_jj = rhs via the
            // Kronecker system (at most 4x4).
            let t_ii = t.block(ri, ri + rh, ri, ri + rh);
            let s_jj = s.block(cj, cj + cw, cj, cj + cw);
            let y_block = solve_small_sylvester(&t_ii, &s_jj, &rhs)?;
            y.set_block(ri, cj, &y_block);
        }
    }

    // X = U Y Vᵀ.
    Ok(&(&sa.q * &y) * &sb.q.transpose())
}

/// Solves the small Sylvester equation `P Y + Y Q = R` (dimensions at most 2x2)
/// through its Kronecker-product linear system.
fn solve_small_sylvester(p: &Matrix, q: &Matrix, r: &Matrix) -> Result<Matrix, LinalgError> {
    let np = p.rows();
    let nq = q.rows();
    let dim = np * nq;
    // Unknowns ordered as vec(Y) column-major: y[(i, j)] ↦ index j*np + i.
    let mut k = Matrix::zeros(dim, dim);
    for j in 0..nq {
        for i in 0..np {
            let row = j * np + i;
            // (P Y)[i, j] = Σ_k P[i, k] Y[k, j]
            for kk in 0..np {
                k[(row, j * np + kk)] += p[(i, kk)];
            }
            // (Y Q)[i, j] = Σ_k Y[i, k] Q[k, j]
            for kk in 0..nq {
                k[(row, kk * np + i)] += q[(kk, j)];
            }
        }
    }
    let mut rhs = Matrix::zeros(dim, 1);
    for j in 0..nq {
        for i in 0..np {
            rhs[(j * np + i, 0)] = r[(i, j)];
        }
    }
    let sol = lu::solve(&k, &rhs).map_err(|_| LinalgError::Singular {
        operation: "lyapunov::solve_sylvester (A and -B share an eigenvalue)",
    })?;
    let mut y = Matrix::zeros(np, nq);
    for j in 0..nq {
        for i in 0..np {
            y[(i, j)] = sol[(j * np + i, 0)];
        }
    }
    Ok(y)
}

/// Solves the continuous-time Lyapunov equation `A X + X Aᵀ + Q = 0`.
///
/// # Errors
///
/// Propagates the errors of [`solve_sylvester`].
pub fn solve_lyapunov(a: &Matrix, q: &Matrix) -> Result<Matrix, LinalgError> {
    solve_sylvester(a, &a.transpose(), &q.scale(-1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sylvester_residual_small() {
        let a = Matrix::from_rows(&[&[-2.0, 1.0], &[0.0, -3.0]]);
        let b = Matrix::from_rows(&[&[-1.0, 0.5, 0.0], &[0.0, -4.0, 1.0], &[0.2, 0.0, -2.0]]);
        let c = Matrix::from_fn(2, 3, |i, j| (i + j) as f64 + 1.0);
        let x = solve_sylvester(&a, &b, &c).unwrap();
        let residual = &(&(&a * &x) + &(&x * &b)) - &c;
        assert!(residual.norm_fro() < 1e-10);
    }

    #[test]
    fn sylvester_with_complex_eigenvalues() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0], &[-2.0, -1.0]]); // -1 ± 2i
        let b = Matrix::from_rows(&[&[-0.5, 1.0], &[-1.0, -0.5]]); // -0.5 ± i
        let c = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = solve_sylvester(&a, &b, &c).unwrap();
        let residual = &(&(&a * &x) + &(&x * &b)) - &c;
        assert!(residual.norm_fro() < 1e-10);
    }

    #[test]
    fn lyapunov_solution_is_symmetric_for_symmetric_q() {
        let a = Matrix::from_rows(&[&[-1.0, 0.3, 0.0], &[0.0, -2.0, 0.4], &[0.1, 0.0, -3.0]]);
        let q = Matrix::identity(3);
        let x = solve_lyapunov(&a, &q).unwrap();
        let residual = &(&(&a * &x) + &(&x * &a.transpose())) + &q;
        assert!(residual.norm_fro() < 1e-10);
        assert!(x.is_symmetric(1e-8));
    }

    #[test]
    fn lyapunov_gramian_is_positive_definite_for_stable_a() {
        // Controllability-Gramian-style equation: A P + P Aᵀ + B Bᵀ = 0.
        let a = Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, -2.0]]);
        let b = Matrix::column(&[1.0, 1.0]);
        let q = &b * &b.transpose();
        let p = solve_lyapunov(&a, &q).unwrap();
        assert!(crate::decomp::cholesky::is_positive_definite(
            &p.symmetric_part()
        ));
    }

    #[test]
    fn singular_equation_rejected() {
        // A and -B share eigenvalue 1.
        let a = Matrix::diag(&[1.0, 2.0]);
        let b = Matrix::diag(&[-1.0, -5.0]);
        let c = Matrix::identity(2);
        assert!(solve_sylvester(&a, &b, &c).is_err());
    }

    #[test]
    fn dimension_checks() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(3);
        let c = Matrix::zeros(3, 2);
        assert!(matches!(
            solve_sylvester(&a, &b, &c),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn moderate_size_equation() {
        let n = 15;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                -2.0 - i as f64 * 0.1
            } else {
                0.05 * ((i + j) % 3) as f64
            }
        });
        let q = Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.1 });
        let q = q.symmetric_part();
        let x = solve_lyapunov(&a, &q).unwrap();
        let residual = &(&(&a * &x) + &(&x * &a.transpose())) + &q;
        assert!(residual.norm_fro() < 1e-8 * q.norm_fro().max(1.0));
    }
}
