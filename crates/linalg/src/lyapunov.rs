//! Sylvester and Lyapunov equation solvers (Bartels–Stewart).

use crate::decomp::lu;
use crate::decomp::schur;
use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Solves the Sylvester equation `A X + X B = C`.
///
/// Uses the Bartels–Stewart algorithm: real Schur forms of `A` and `B`, then
/// block back-substitution on the quasi-triangular factors.
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] for inconsistent dimensions.
/// * [`LinalgError::Singular`] when `A` and `−B` share an eigenvalue (the
///   equation is then singular).
/// * Propagates Schur convergence failures.
pub fn solve_sylvester(a: &Matrix, b: &Matrix, c: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    let m = b.rows();
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "lyapunov::solve_sylvester (A)",
            shape: a.shape(),
        });
    }
    if !b.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "lyapunov::solve_sylvester (B)",
            shape: b.shape(),
        });
    }
    if c.shape() != (n, m) {
        return Err(LinalgError::ShapeMismatch {
            operation: "lyapunov::solve_sylvester",
            left: (n, m),
            right: c.shape(),
        });
    }
    if n == 0 || m == 0 {
        return Ok(Matrix::zeros(n, m));
    }

    // A = U T Uᵀ, B = V S Vᵀ with T, S quasi-upper-triangular.
    let sa = schur::real_schur(a)?;
    let sb = schur::real_schur(b)?;
    let t = &sa.t;
    let s = &sb.t;
    // Transform the right-hand side: F = Uᵀ C V.
    let f = &sa.q.transpose_matmul(c)? * &sb.q;

    // Solve T Y + Y S = F by processing the columns of Y in blocks determined
    // by the quasi-triangular structure of S (left to right) and, within each
    // column block, the rows of Y in blocks of T (bottom to top).  The
    // couplings to already-solved blocks are accumulated straight out of T, S
    // and Y (same multiply-accumulate order as the former explicit `block` /
    // `matmul` calls, so the result is bit-identical) — the per-block copies
    // used to dominate the allocator profile of the split stage.
    let t_blocks = sa.diagonal_blocks();
    let s_blocks = sb.diagonal_blocks();
    let mut y = Matrix::zeros(n, m);
    let mut small = SmallSylvesterScratch::new();

    for &(cj, cw) in &s_blocks {
        for &(ri, rh) in t_blocks.iter().rev() {
            // Right-hand side for this block (at most 2x2):
            // F_block - T[ri, ri+rh..n] * Y[ri+rh..n, cols] - Y[rows, 0..cj] * S[0..cj, cols]
            let mut rhs = [[0.0f64; 2]; 2];
            for (ii, row) in rhs.iter_mut().enumerate().take(rh) {
                for (jj, value) in row.iter_mut().enumerate().take(cw) {
                    *value = f[(ri + ii, cj + jj)];
                }
            }
            if ri + rh < n {
                // product = T_right * Y_below, accumulated in ascending-k
                // order with the matmul kernel's zero skip.
                let mut product = [[0.0f64; 2]; 2];
                for (ii, row) in product.iter_mut().enumerate().take(rh) {
                    for k in (ri + rh)..n {
                        let tik = t[(ri + ii, k)];
                        if tik == 0.0 {
                            continue;
                        }
                        for (jj, value) in row.iter_mut().enumerate().take(cw) {
                            *value += tik * y[(k, cj + jj)];
                        }
                    }
                }
                for ii in 0..rh {
                    for jj in 0..cw {
                        rhs[ii][jj] -= product[ii][jj];
                    }
                }
            }
            if cj > 0 {
                let mut product = [[0.0f64; 2]; 2];
                for (ii, row) in product.iter_mut().enumerate().take(rh) {
                    for k in 0..cj {
                        let yik = y[(ri + ii, k)];
                        if yik == 0.0 {
                            continue;
                        }
                        for (jj, value) in row.iter_mut().enumerate().take(cw) {
                            *value += yik * s[(k, cj + jj)];
                        }
                    }
                }
                for ii in 0..rh {
                    for jj in 0..cw {
                        rhs[ii][jj] -= product[ii][jj];
                    }
                }
            }
            // Solve the small equation T_ii Y_b + Y_b S_jj = rhs via the
            // Kronecker system (at most 4x4) and write the block into Y.
            small.solve(t, ri, rh, s, cj, cw, &rhs, &mut y)?;
        }
    }

    // X = U Y Vᵀ.
    Ok(&(&sa.q * &y) * &sb.q.transpose())
}

/// Reusable buffers for the small (≤ 2x2 blocks, ≤ 4x4 Kronecker system)
/// Sylvester solves inside the Bartels–Stewart back substitution.
struct SmallSylvesterScratch {
    k: Matrix,
    rhs: Matrix,
    sol: Matrix,
    factor: lu::Lu,
}

impl SmallSylvesterScratch {
    fn new() -> Self {
        SmallSylvesterScratch {
            k: Matrix::zeros(0, 0),
            rhs: Matrix::zeros(0, 0),
            sol: Matrix::zeros(0, 0),
            factor: lu::Lu::empty(),
        }
    }

    /// Solves `P Y_b + Y_b Q = R` where `P = T[ri.., ri..]` and
    /// `Q = S[cj.., cj..]` are diagonal blocks of the Schur factors, writing
    /// the solution block into `y` at `(ri, cj)`.
    #[allow(clippy::too_many_arguments)]
    fn solve(
        &mut self,
        t: &Matrix,
        ri: usize,
        rh: usize,
        s: &Matrix,
        cj: usize,
        cw: usize,
        r: &[[f64; 2]; 2],
        y: &mut Matrix,
    ) -> Result<(), LinalgError> {
        let dim = rh * cw;
        // Unknowns ordered as vec(Y) column-major: y[(i, j)] ↦ index j*rh + i.
        self.k.resize_uninit(dim, dim);
        self.k.as_mut_slice().fill(0.0);
        for j in 0..cw {
            for i in 0..rh {
                let row = j * rh + i;
                // (P Y)[i, j] = Σ_k P[i, k] Y[k, j]
                for kk in 0..rh {
                    self.k[(row, j * rh + kk)] += t[(ri + i, ri + kk)];
                }
                // (Y Q)[i, j] = Σ_k Y[i, k] Q[k, j]
                for kk in 0..cw {
                    self.k[(row, kk * rh + i)] += s[(cj + kk, cj + j)];
                }
            }
        }
        self.rhs.resize_uninit(dim, 1);
        for (j, col) in (0..cw).map(|j| (j, j * rh)) {
            for (i, row) in r.iter().enumerate().take(rh) {
                self.rhs[(col + i, 0)] = row[j];
            }
        }
        lu::factor_into(&self.k, &mut self.factor)?;
        self.factor
            .solve_into(&self.rhs, &mut self.sol)
            .map_err(|_| LinalgError::Singular {
                operation: "lyapunov::solve_sylvester (A and -B share an eigenvalue)",
            })?;
        for j in 0..cw {
            for i in 0..rh {
                y[(ri + i, cj + j)] = self.sol[(j * rh + i, 0)];
            }
        }
        Ok(())
    }
}

/// Solves the continuous-time Lyapunov equation `A X + X Aᵀ + Q = 0`.
///
/// # Errors
///
/// Propagates the errors of [`solve_sylvester`].
pub fn solve_lyapunov(a: &Matrix, q: &Matrix) -> Result<Matrix, LinalgError> {
    solve_sylvester(a, &a.transpose(), &q.scale(-1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sylvester_residual_small() {
        let a = Matrix::from_rows(&[&[-2.0, 1.0], &[0.0, -3.0]]);
        let b = Matrix::from_rows(&[&[-1.0, 0.5, 0.0], &[0.0, -4.0, 1.0], &[0.2, 0.0, -2.0]]);
        let c = Matrix::from_fn(2, 3, |i, j| (i + j) as f64 + 1.0);
        let x = solve_sylvester(&a, &b, &c).unwrap();
        let residual = &(&(&a * &x) + &(&x * &b)) - &c;
        assert!(residual.norm_fro() < 1e-10);
    }

    #[test]
    fn sylvester_with_complex_eigenvalues() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0], &[-2.0, -1.0]]); // -1 ± 2i
        let b = Matrix::from_rows(&[&[-0.5, 1.0], &[-1.0, -0.5]]); // -0.5 ± i
        let c = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = solve_sylvester(&a, &b, &c).unwrap();
        let residual = &(&(&a * &x) + &(&x * &b)) - &c;
        assert!(residual.norm_fro() < 1e-10);
    }

    #[test]
    fn lyapunov_solution_is_symmetric_for_symmetric_q() {
        let a = Matrix::from_rows(&[&[-1.0, 0.3, 0.0], &[0.0, -2.0, 0.4], &[0.1, 0.0, -3.0]]);
        let q = Matrix::identity(3);
        let x = solve_lyapunov(&a, &q).unwrap();
        let residual = &(&(&a * &x) + &(&x * &a.transpose())) + &q;
        assert!(residual.norm_fro() < 1e-10);
        assert!(x.is_symmetric(1e-8));
    }

    #[test]
    fn lyapunov_gramian_is_positive_definite_for_stable_a() {
        // Controllability-Gramian-style equation: A P + P Aᵀ + B Bᵀ = 0.
        let a = Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, -2.0]]);
        let b = Matrix::column(&[1.0, 1.0]);
        let q = &b * &b.transpose();
        let p = solve_lyapunov(&a, &q).unwrap();
        assert!(crate::decomp::cholesky::is_positive_definite(
            &p.symmetric_part()
        ));
    }

    #[test]
    fn singular_equation_rejected() {
        // A and -B share eigenvalue 1.
        let a = Matrix::diag(&[1.0, 2.0]);
        let b = Matrix::diag(&[-1.0, -5.0]);
        let c = Matrix::identity(2);
        assert!(solve_sylvester(&a, &b, &c).is_err());
    }

    #[test]
    fn dimension_checks() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(3);
        let c = Matrix::zeros(3, 2);
        assert!(matches!(
            solve_sylvester(&a, &b, &c),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn moderate_size_equation() {
        let n = 15;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                -2.0 - i as f64 * 0.1
            } else {
                0.05 * ((i + j) % 3) as f64
            }
        });
        let q = Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.1 });
        let q = q.symmetric_part();
        let x = solve_lyapunov(&a, &q).unwrap();
        let residual = &(&(&a * &x) + &(&x * &a.transpose())) + &q;
        assert!(residual.norm_fro() < 1e-8 * q.norm_fro().max(1.0));
    }
}
