//! The dense row-major matrix type everything else builds on.

use crate::error::LinalgError;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the single numeric container used throughout the workspace; all
/// factorizations, descriptor systems and pencil transformations operate on it.
/// Vectors are represented as `n x 1` matrices.
///
/// ```
/// use ds_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = &a * &b;
/// assert_eq!(c, a);
/// assert_eq!(a[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Inner-dimension block size of the cache-blocked matmul kernels: a band of
/// 32 rows of a 400-column `f64` matrix is ~100 KiB, comfortably inside L2.
const MATMUL_BLOCK: usize = 32;

impl Matrix {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a column vector (an `n x 1` matrix) from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Creates a row vector (a `1 x n` matrix) from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diag(values: &[f64]) -> Self {
        let n = values.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in values.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Builds a block-diagonal matrix from the given blocks.
    pub fn block_diag(blocks: &[&Matrix]) -> Self {
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut m = Matrix::zeros(rows, cols);
        let (mut r0, mut c0) = (0, 0);
        for b in blocks {
            m.set_block(r0, c0, b);
            r0 += b.rows;
            c0 += b.cols;
        }
        m
    }

    /// Builds a matrix from a 2x2 block layout `[[a, b], [c, d]]`.
    ///
    /// # Panics
    ///
    /// Panics if the block shapes are inconsistent.
    pub fn from_blocks_2x2(a: &Matrix, b: &Matrix, c: &Matrix, d: &Matrix) -> Self {
        assert_eq!(a.rows, b.rows, "top blocks must have equal row counts");
        assert_eq!(c.rows, d.rows, "bottom blocks must have equal row counts");
        assert_eq!(a.cols, c.cols, "left blocks must have equal column counts");
        assert_eq!(b.cols, d.cols, "right blocks must have equal column counts");
        let mut m = Matrix::zeros(a.rows + c.rows, a.cols + b.cols);
        m.set_block(0, 0, a);
        m.set_block(0, a.cols, b);
        m.set_block(a.rows, 0, c);
        m.set_block(a.rows, a.cols, d);
        m
    }

    /// Horizontally concatenates matrices (all must have the same row count).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(blocks: &[&Matrix]) -> Self {
        if blocks.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let rows = blocks[0].rows;
        assert!(blocks.iter().all(|b| b.rows == rows));
        let cols = blocks.iter().map(|b| b.cols).sum();
        let mut m = Matrix::zeros(rows, cols);
        let mut c0 = 0;
        for b in blocks {
            m.set_block(0, c0, b);
            c0 += b.cols;
        }
        m
    }

    /// Vertically concatenates matrices (all must have the same column count).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(blocks: &[&Matrix]) -> Self {
        if blocks.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = blocks[0].cols;
        assert!(blocks.iter().all(|b| b.cols == cols));
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut m = Matrix::zeros(rows, cols);
        let mut r0 = 0;
        for b in blocks {
            m.set_block(r0, 0, b);
            r0 += b.rows;
        }
        m
    }

    // ------------------------------------------------------------------
    // Shape and element access
    // ------------------------------------------------------------------

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix has zero rows or zero columns.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    ///
    /// Intended for the in-place (`_in`) kernels; the shape is not changed.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reshapes the matrix to `rows x cols`, reusing the existing buffer.
    ///
    /// The contents after the call are unspecified (a mix of old data and
    /// zeros); every caller is expected to overwrite them.  No allocation
    /// happens when the buffer capacity already suffices.
    pub fn resize_uninit(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` a copy of `src`, reusing the existing buffer when its
    /// capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.resize_uninit(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Overwrites `self` with the `n x n` identity matrix, reusing the buffer.
    pub fn set_identity(&mut self, n: usize) {
        self.resize_uninit(n, n);
        self.data.fill(0.0);
        for i in 0..n {
            self.data[i * n + i] = 1.0;
        }
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the element at `(i, j)` or `None` when out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Extracts row `i` as a `1 x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> Matrix {
        assert!(i < self.rows, "row index out of bounds");
        Matrix::from_vec(
            1,
            self.cols,
            self.data[i * self.cols..(i + 1) * self.cols].to_vec(),
        )
    }

    /// Extracts column `j` as a `rows x 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> Matrix {
        assert!(j < self.cols, "column index out of bounds");
        let mut v = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            v.push(self[(i, j)]);
        }
        Matrix::from_vec(self.rows, 1, v)
    }

    /// Extracts the contiguous block with rows `r0..r1` and columns `c0..c1`
    /// (half-open ranges).
    ///
    /// # Panics
    ///
    /// Panics if the ranges exceed the matrix dimensions or are reversed.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "row range out of bounds");
        assert!(c0 <= c1 && c1 <= self.cols, "column range out of bounds");
        let mut m = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            for j in c0..c1 {
                m[(i - r0, j - c0)] = self[(i, j)];
            }
        }
        m
    }

    /// Copies `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block does not fit at the requested position"
        );
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }

    /// Returns a matrix whose columns are the columns of `self` selected by
    /// `indices`, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(self.rows, indices.len());
        for (k, &j) in indices.iter().enumerate() {
            assert!(j < self.cols, "column index out of bounds");
            for i in 0..self.rows {
                m[(i, k)] = self[(i, j)];
            }
        }
        m
    }

    /// Returns a matrix whose rows are the rows of `self` selected by
    /// `indices`, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            assert!(i < self.rows, "row index out of bounds");
            for j in 0..self.cols {
                m[(k, j)] = self[(i, j)];
            }
        }
        m
    }

    /// Swaps rows `i` and `j` in place.
    pub fn swap_rows(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for k in 0..self.cols {
            let a = self[(i, k)];
            self[(i, k)] = self[(j, k)];
            self[(j, k)] = a;
        }
    }

    /// Swaps columns `i` and `j` in place.
    pub fn swap_cols(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        for k in 0..self.rows {
            let a = self[(k, i)];
            self[(k, i)] = self[(k, j)];
            self[(k, j)] = a;
        }
    }

    /// The main diagonal as a vector of values.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    // ------------------------------------------------------------------
    // Elementary algebra
    // ------------------------------------------------------------------

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every element by `factor`, returning a new matrix.
    pub fn scale(&self, factor: f64) -> Matrix {
        self.map(|x| x * factor)
    }

    /// In-place scaling by `factor`.
    pub fn scale_mut(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self * rhs` written into a caller-provided output.
    ///
    /// `out` is reshaped to `self.rows x rhs.cols` (reusing its buffer when the
    /// capacity suffices) and fully overwritten, so a workspace matrix can be
    /// reused across calls without heap allocation in steady state.
    ///
    /// The kernel is cache-blocked over the inner dimension: a fixed band of
    /// `rhs` rows stays resident while all output rows accumulate its
    /// contribution.  Per output element the additions happen in the same
    /// (ascending-`k`) order as the unblocked row-slice kernel, so the result
    /// is bit-for-bit identical.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let (m, n, p) = (self.rows, self.cols, rhs.cols);
        out.resize_uninit(m, p);
        out.data.fill(0.0);
        let mut k0 = 0;
        while k0 < n {
            let k1 = (k0 + MATMUL_BLOCK).min(n);
            for i in 0..m {
                let row_a = &self.data[i * n..(i + 1) * n];
                let row_out = &mut out.data[i * p..(i + 1) * p];
                for (k, &aik) in row_a.iter().enumerate().take(k1).skip(k0) {
                    if aik == 0.0 {
                        continue;
                    }
                    let row_rhs = &rhs.data[k * p..(k + 1) * p];
                    for (o, &r) in row_out.iter_mut().zip(row_rhs.iter()) {
                        *o += aik * r;
                    }
                }
            }
            k0 = k1;
        }
        Ok(())
    }

    /// `selfᵀ * rhs` without forming the transpose explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.rows != rhs.rows`.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// `selfᵀ * rhs` written into a caller-provided output (see
    /// [`Matrix::matmul_into`] for the reuse and blocking contract).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.rows != rhs.rows`.
    pub fn transpose_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "transpose_matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let (m, n, p) = (self.rows, self.cols, rhs.cols);
        out.resize_uninit(n, p);
        out.data.fill(0.0);
        // Block over the output rows: the resident output band accumulates the
        // full ascending-`k` sweep before moving on, which keeps the additions
        // in the exact order of the unblocked kernel.
        let mut i0 = 0;
        while i0 < n {
            let i1 = (i0 + MATMUL_BLOCK).min(n);
            for k in 0..m {
                let row_a = &self.data[k * n..(k + 1) * n];
                let row_rhs = &rhs.data[k * p..(k + 1) * p];
                for (i, &aki) in row_a.iter().enumerate().take(i1).skip(i0) {
                    if aki == 0.0 {
                        continue;
                    }
                    let row_out = &mut out.data[i * p..(i + 1) * p];
                    for (o, &r) in row_out.iter_mut().zip(row_rhs.iter()) {
                        *o += aki * r;
                    }
                }
            }
            i0 = i1;
        }
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                operation: "add",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn try_sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                operation: "sub",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    // ------------------------------------------------------------------
    // Norms and structural predicates
    // ------------------------------------------------------------------

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (the max norm).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()))
    }

    /// Induced 1-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        let mut best = 0.0_f64;
        for j in 0..self.cols {
            let mut s = 0.0;
            for i in 0..self.rows {
                s += self[(i, j)].abs();
            }
            best = best.max(s);
        }
        best
    }

    /// Induced infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.rows {
            let mut s = 0.0;
            for j in 0..self.cols {
                s += self[(i, j)].abs();
            }
            best = best.max(s);
        }
        best
    }

    /// Returns `true` when `self` is symmetric to within `tol`
    /// (absolute tolerance on each entry pair).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when `self` is skew-symmetric to within `tol`.
    pub fn is_skew_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if (self[(i, j)] + self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when every entry differs from the corresponding entry of
    /// `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// The symmetric part `(self + selfᵀ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetric_part(&self) -> Matrix {
        assert!(self.is_square(), "symmetric_part requires a square matrix");
        let t = self.transpose();
        self.try_add(&t).expect("shapes match").scale(0.5)
    }

    /// The skew-symmetric part `(self - selfᵀ) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn skew_part(&self) -> Matrix {
        assert!(self.is_square(), "skew_part requires a square matrix");
        let t = self.transpose();
        self.try_sub(&t).expect("shapes match").scale(0.5)
    }

    /// Dot product of two vectors stored as `n x 1` (or `1 x n`) matrices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the element counts differ.
    pub fn dot(&self, rhs: &Matrix) -> Result<f64, LinalgError> {
        if self.data.len() != rhs.data.len() {
            return Err(LinalgError::ShapeMismatch {
                operation: "dot",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.try_add(rhs).expect("shape mismatch in `+`")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.try_sub(rhs).expect("shape mismatch in `-`")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("shape mismatch in `*`")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert!(i.is_symmetric(0.0));
    }

    #[test]
    fn from_fn_matches_closure() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m[(2, 1)], 7.0);
    }

    #[test]
    fn indexing_and_rows_cols() {
        let m = sample();
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), Matrix::row_vector(&[4.0, 5.0, 6.0]));
        assert_eq!(m.col(0), Matrix::column(&[1.0, 4.0]));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn out_of_bounds_panics() {
        let m = sample();
        let _ = m[(5, 0)];
    }

    #[test]
    fn get_returns_none_out_of_bounds() {
        let m = sample();
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(2, 0), None);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_sub_scale() {
        let m = sample();
        let twice = &m + &m;
        assert_eq!(twice, m.scale(2.0));
        let zero = &m - &m;
        assert_eq!(zero.norm_fro(), 0.0);
        assert_eq!((&m * 3.0)[(1, 2)], 18.0);
        assert_eq!((-&m)[(0, 0)], -1.0);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = sample();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        // a is 2x3 so aᵀ is 3x2 — need rhs with 2 rows.
        let rhs = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let fast = a.transpose_matmul(&rhs).unwrap();
        let slow = &a.transpose() * &rhs;
        assert!(fast.approx_eq(&slow, 1e-14));
        let _ = b; // silence unused helper
    }

    #[test]
    fn block_and_set_block() {
        let m = sample();
        let blk = m.block(0, 2, 1, 3);
        assert_eq!(blk, Matrix::from_rows(&[&[2.0, 3.0], &[5.0, 6.0]]));
        let mut z = Matrix::zeros(3, 3);
        z.set_block(1, 1, &Matrix::identity(2));
        assert_eq!(z[(1, 1)], 1.0);
        assert_eq!(z[(2, 2)], 1.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 1);
        let h = Matrix::hstack(&[&a, &b]);
        assert_eq!(h.shape(), (2, 3));
        let v = Matrix::vstack(&[&a, &Matrix::zeros(1, 2)]);
        assert_eq!(v.shape(), (3, 2));
        let d = Matrix::block_diag(&[&a, &Matrix::filled(1, 1, 5.0)]);
        assert_eq!(d.shape(), (3, 3));
        assert_eq!(d[(2, 2)], 5.0);
        assert_eq!(d[(0, 2)], 0.0);
    }

    #[test]
    fn from_blocks_2x2_layout() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 1);
        let c = Matrix::zeros(1, 2);
        let d = Matrix::filled(1, 1, 7.0);
        let m = Matrix::from_blocks_2x2(&a, &b, &c, &d);
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(m[(2, 2)], 7.0);
        assert_eq!(m[(0, 0)], 1.0);
    }

    #[test]
    fn select_rows_and_columns() {
        let m = sample();
        let c = m.select_columns(&[2, 0]);
        assert_eq!(c, Matrix::from_rows(&[&[3.0, 1.0], &[6.0, 4.0]]));
        let r = m.select_rows(&[1]);
        assert_eq!(r, Matrix::row_vector(&[4.0, 5.0, 6.0]));
    }

    #[test]
    fn swap_rows_cols() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m[(0, 0)], 4.0);
        m.swap_cols(0, 2);
        assert_eq!(m[(0, 0)], 6.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, -4.0], &[0.0, 0.0]]);
        assert!((m.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(m.norm_max(), 4.0);
        assert_eq!(m.norm_one(), 4.0);
        assert_eq!(m.norm_inf(), 7.0);
    }

    #[test]
    fn symmetry_predicates() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]);
        assert!(s.is_symmetric(0.0));
        assert!(!s.is_skew_symmetric(1e-12));
        let k = Matrix::from_rows(&[&[0.0, 2.0], &[-2.0, 0.0]]);
        assert!(k.is_skew_symmetric(0.0));
        assert!(!k.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
    }

    #[test]
    fn symmetric_and_skew_parts_sum_back() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[5.0, -1.0]]);
        let sum = &m.symmetric_part() + &m.skew_part();
        assert!(sum.approx_eq(&m, 1e-15));
        assert!(m.symmetric_part().is_symmetric(1e-15));
        assert!(m.skew_part().is_skew_symmetric(1e-15));
    }

    #[test]
    fn dot_product() {
        let a = Matrix::column(&[1.0, 2.0, 3.0]);
        let b = Matrix::column(&[4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        assert!(a.dot(&Matrix::column(&[1.0])).is_err());
    }

    #[test]
    fn diag_and_diagonal() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.diagonal(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn display_contains_dimensions() {
        let text = format!("{}", Matrix::identity(2));
        assert!(text.contains("2x2"));
    }

    #[test]
    fn empty_matrix() {
        let e = Matrix::zeros(0, 3);
        assert!(e.is_empty());
        let h = Matrix::hstack(&[]);
        assert!(h.is_empty());
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_matmul() {
        let a = Matrix::from_fn(37, 53, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(53, 41, |i, j| ((i * 5 + j * 13) % 9) as f64 * 0.25 - 1.0);
        let mut out = Matrix::zeros(64, 64); // wrong shape on purpose
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        // Second call with a correctly shaped buffer must also be exact.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        assert!(a.matmul_into(&a, &mut out).is_err());
    }

    #[test]
    fn blocked_matmul_is_bitwise_identical_to_reference() {
        // Reference kernel: the plain i-k-j row-slice loop the blocked kernel
        // must reproduce bit for bit (same per-element addition order).
        let n = 70; // larger than one block so the blocking actually kicks in
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 23) as f64 / 7.0 - 1.5);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 29) % 19) as f64 / 5.0 - 1.8);
        let mut reference = Matrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                let aik = a[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    reference[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        let fast = a.matmul(&b).unwrap();
        assert_eq!(fast.as_slice(), reference.as_slice());
        let mut tref = Matrix::zeros(n, n);
        for k in 0..n {
            for i in 0..n {
                let aki = a[(k, i)];
                if aki == 0.0 {
                    continue;
                }
                for j in 0..n {
                    tref[(i, j)] += aki * b[(k, j)];
                }
            }
        }
        let tfast = a.transpose_matmul(&b).unwrap();
        assert_eq!(tfast.as_slice(), tref.as_slice());
    }

    #[test]
    fn copy_from_and_set_identity_reuse() {
        let src = sample();
        let mut dst = Matrix::zeros(1, 1);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.set_identity(3);
        assert_eq!(dst, Matrix::identity(3));
        dst.resize_uninit(2, 2);
        assert_eq!(dst.shape(), (2, 2));
    }
}
