//! # ds-linalg
//!
//! Dense numerical linear algebra substrate for the descriptor-system passivity
//! suite.  Everything is implemented from scratch in safe Rust on top of a single
//! row-major [`Matrix`] type: no BLAS/LAPACK bindings are used.
//!
//! The crate provides exactly the kernels the DAC 2006 passivity test needs:
//!
//! * factorizations: [`decomp::lu`], [`decomp::qr`], [`decomp::cholesky`],
//!   [`decomp::hessenberg`], [`decomp::schur`] (Francis double-shift real Schur),
//!   [`decomp::svd`] (one-sided Jacobi), [`decomp::symmetric`] (cyclic Jacobi),
//! * eigenvalues of general and symmetric matrices ([`eigen`]),
//! * SVD-based subspace arithmetic — null spaces, ranges, intersections,
//!   complements ([`subspace`]),
//! * the matrix sign function for invariant-subspace splitting ([`sign`]),
//! * Lyapunov/Sylvester solvers via Bartels–Stewart ([`lyapunov`]),
//! * Moore–Penrose pseudo-inverse ([`pinv`]),
//! * reusable per-dimension scratch buffers for the eigen/sign hot path
//!   ([`workspace`]): the `_in` kernel variants run with zero heap allocation
//!   in steady state, and the classic entry points route their scratch
//!   through a per-thread [`workspace::WorkspacePool`] automatically.
//!
//! # Example
//!
//! ```
//! # use ds_linalg::prelude::*;
//! # fn main() -> Result<(), ds_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]);
//! let eig = ds_linalg::eigen::eigenvalues(&a)?;
//! assert_eq!(eig.len(), 2);
//! let x = ds_linalg::decomp::lu::solve(&a, &Matrix::identity(2))?;
//! assert!((&(&a * &x) - &Matrix::identity(2)).norm_fro() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomp;
pub mod eigen;
pub mod error;
pub mod lyapunov;
pub mod matrix;
pub mod pinv;
pub mod scalar;
pub mod sign;
pub mod sparse;
pub mod subspace;
pub mod workspace;

pub use error::LinalgError;
pub use matrix::Matrix;
pub use scalar::Complex;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::error::LinalgError;
    pub use crate::matrix::Matrix;
    pub use crate::scalar::Complex;
}

/// Default relative tolerance used across the crate when none is supplied.
///
/// Rank decisions, convergence thresholds and structural checks scale this by
/// the relevant matrix norm and dimension.
pub const DEFAULT_RELATIVE_TOLERANCE: f64 = 1e-10;

/// Machine epsilon for `f64`, re-exported for convenience.
pub const EPS: f64 = f64::EPSILON;
