//! Error type shared by every fallible routine in the crate.

use std::fmt;

/// Error returned by the linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Description of the operation that failed.
        operation: &'static str,
        /// Shape of the left / first operand.
        left: (usize, usize),
        /// Shape of the right / second operand.
        right: (usize, usize),
    },
    /// The operation requires a square matrix but received a rectangular one.
    NotSquare {
        /// Description of the operation that failed.
        operation: &'static str,
        /// Actual shape received.
        shape: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be factored
    /// or inverted.
    Singular {
        /// Description of the operation that failed.
        operation: &'static str,
    },
    /// The matrix is not positive definite (Cholesky factorization failed).
    NotPositiveDefinite,
    /// An iterative algorithm failed to converge within its iteration budget.
    ConvergenceFailure {
        /// Description of the algorithm that failed.
        operation: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input violates a precondition that is not a simple shape constraint.
    InvalidInput {
        /// Explanation of the violated precondition.
        message: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "shape mismatch in {operation}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { operation, shape } => write!(
                f,
                "{operation} requires a square matrix, got {}x{}",
                shape.0, shape.1
            ),
            LinalgError::Singular { operation } => {
                write!(f, "matrix is singular in {operation}")
            }
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::ConvergenceFailure {
                operation,
                iterations,
            } => write!(
                f,
                "{operation} failed to converge after {iterations} iterations"
            ),
            LinalgError::InvalidInput { message } => write!(f, "invalid input: {message}"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl LinalgError {
    /// Convenience constructor for [`LinalgError::InvalidInput`].
    pub fn invalid_input(message: impl Into<String>) -> Self {
        LinalgError::InvalidInput {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = LinalgError::ShapeMismatch {
            operation: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn display_not_square() {
        let err = LinalgError::NotSquare {
            operation: "lu",
            shape: (2, 3),
        };
        assert!(err.to_string().contains("square"));
    }

    #[test]
    fn display_singular() {
        let err = LinalgError::Singular { operation: "solve" };
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn display_convergence() {
        let err = LinalgError::ConvergenceFailure {
            operation: "schur",
            iterations: 30,
        };
        assert!(err.to_string().contains("30"));
    }

    #[test]
    fn display_invalid_input() {
        let err = LinalgError::invalid_input("bad tolerance");
        assert!(err.to_string().contains("bad tolerance"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<LinalgError>();
    }
}
