//! The matrix sign function and sign-based invariant subspaces.
//!
//! For a matrix `A` with no eigenvalues on the imaginary axis, the matrix sign
//! function `sign(A)` has eigenvalues `±1` with the same invariant subspaces as
//! `A`: the range of `(I - sign(A))/2` is the invariant subspace associated
//! with the open left half-plane.  The DAC 2006 passivity test uses this to
//! split the spectrum of the Hamiltonian matrix `A₄₄` (paper eq. (22)) without
//! requiring ordered Schur forms.

use crate::decomp::lu;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::subspace;
use crate::workspace::{self, EigenWorkspace};

/// Minimum dimension at which the Newton iteration switches from the
/// substitution-based inverse to the cheaper triangular inverse.
const FAST_INVERSE_MIN_DIM: usize = 64;

/// Per-iteration scaling strategy for the Newton sign iteration
/// `Z ← (c Z + (c Z)⁻¹) / 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignScaling {
    /// Frobenius-norm scaling `c = (‖Z⁻¹‖_F / ‖Z‖_F)^{1/2}` — the geometric
    /// mean of the extremal singular-value estimates. Overflow-immune by
    /// construction (two norms, no determinant) and on Hamiltonian spectra it
    /// converges in fewer iterations than determinantal scaling, whose
    /// `|det Z|^{1/n} ≈ 1` for a ±λ-symmetric spectrum makes it a near no-op.
    Frobenius,
    /// Determinantal scaling `c = |det Z|^{-1/n}`, with the exponent
    /// accumulated in the log domain (`Σ ln|u_ii|`): the raw diagonal product
    /// over/underflows f64 near n ≈ 200 even for well-conditioned iterates,
    /// which would silently disable scaling (c = 1) exactly where it matters
    /// most.
    Determinantal,
    /// No scaling (plain Newton). Exists for diagnostics and convergence-rate
    /// regression tests.
    None,
}

/// Options controlling the Newton iteration for the matrix sign function.
#[derive(Debug, Clone, Copy)]
pub struct SignOptions {
    /// Maximum number of Newton iterations.
    pub max_iterations: usize,
    /// Target accuracy of the converged sign. The iteration stops when
    /// `‖Z_{k+1} − Z_k‖_F / ‖Z_{k+1}‖_F ≤ √tolerance`: convergence is
    /// quadratic, so a step of size √tolerance means the error committed by
    /// not taking the next step is already below `tolerance`.
    pub tolerance: f64,
    /// Per-iteration scaling strategy ([`SignScaling::Frobenius`] by default).
    pub scaling: SignScaling,
}

impl Default for SignOptions {
    fn default() -> Self {
        SignOptions {
            max_iterations: 100,
            tolerance: 1e-12,
            scaling: SignScaling::Frobenius,
        }
    }
}

/// Computes the matrix sign function of `a` by the scaled Newton iteration
/// `Z ← (c Z + (c Z)⁻¹) / 2` (see [`SignScaling`] for the scaling choices).
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::Singular`] if an iterate becomes singular — this happens
///   exactly when `a` has an eigenvalue on (or numerically on) the imaginary
///   axis, for which the sign function is undefined.
/// * [`LinalgError::ConvergenceFailure`] if the iteration stalls.
pub fn matrix_sign(a: &Matrix, options: &SignOptions) -> Result<Matrix, LinalgError> {
    let mut out = Matrix::zeros(0, 0);
    workspace::with_thread_pool(|pool| {
        matrix_sign_into(a, options, pool.get(a.rows()), &mut out).map(|_| ())
    })?;
    Ok(out)
}

/// Computes the matrix sign function into a caller-provided output matrix
/// using caller-provided scratch buffers: the scaled Newton iteration runs
/// with zero heap allocation in steady state (the LU factorization, the
/// inverse and the next iterate all live in the workspace).
///
/// Returns the number of Newton iterations performed, so convergence-rate
/// regressions (e.g. scaling silently degrading to `c = 1`) are observable.
///
/// # Errors
///
/// Same as [`matrix_sign`].
pub fn matrix_sign_into(
    a: &Matrix,
    options: &SignOptions,
    ws: &mut EigenWorkspace,
    out: &mut Matrix,
) -> Result<usize, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "sign::matrix_sign",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        out.resize_uninit(0, 0);
        return Ok(0);
    }
    // `out` is the iterate Z; ws.w1 the inverse, ws.w2 the next iterate.
    out.copy_from(a);
    // Quadratic convergence: a step of relative size √tol leaves an error of
    // order tol, so stopping there skips one confirming iteration for free.
    let stop_tol = options.tolerance.sqrt();
    for iteration in 1..=options.max_iterations {
        lu::factor_into(out, &mut ws.lu)?;
        if ws.lu.singular {
            return Err(LinalgError::Singular {
                operation: "sign::matrix_sign (eigenvalue on the imaginary axis?)",
            });
        }
        // The triangular inverse costs (4/3)n³ against 2n³ for substitution;
        // below the crossover the substitution path is kept, which also keeps
        // small-matrix results bit-identical to earlier releases.
        if n >= FAST_INVERSE_MIN_DIM {
            // ws.w2 only holds the next iterate later in the loop, so it is
            // free to serve as the triangular-inverse scratch here.
            ws.lu.inverse_into_ws(&mut ws.w1, &mut ws.w2)?;
        } else {
            ws.lu.inverse_into(&mut ws.w1)?;
        }
        let c = match options.scaling {
            SignScaling::Frobenius => {
                let scale = (ws.w1.norm_fro() / out.norm_fro()).sqrt();
                if scale.is_finite() && scale > 0.0 {
                    scale
                } else {
                    1.0
                }
            }
            SignScaling::Determinantal => {
                let log_abs_det = ws.lu.log_abs_det();
                let scale = (-log_abs_det / n as f64).exp();
                if scale.is_finite() && scale > 0.0 {
                    scale
                } else {
                    1.0
                }
            }
            SignScaling::None => 1.0,
        };
        // next = Z·(c/2) + Z⁻¹·(1/(2c)), with the running difference and norm
        // accumulated in the same element order as the matrix-level formula.
        ws.w2.resize_uninit(n, n);
        let cz = c * 0.5;
        let ci = 0.5 / c;
        let mut diff_sq = 0.0;
        let mut norm_sq = 0.0;
        for ((nx, &z), &zi) in ws
            .w2
            .as_mut_slice()
            .iter_mut()
            .zip(out.as_slice())
            .zip(ws.w1.as_slice())
        {
            let value = z * cz + zi * ci;
            let delta = value - z;
            diff_sq += delta * delta;
            norm_sq += value * value;
            *nx = value;
        }
        let diff = diff_sq.sqrt();
        let scale = norm_sq.sqrt().max(f64::MIN_POSITIVE);
        std::mem::swap(out, &mut ws.w2);
        if diff <= stop_tol * scale {
            return Ok(iteration);
        }
    }
    Err(LinalgError::ConvergenceFailure {
        operation: "sign::matrix_sign",
        iterations: options.max_iterations,
    })
}

/// Result of a spectral split along the imaginary axis.
#[derive(Debug, Clone)]
pub struct SpectralSplit {
    /// Orthonormal basis of the invariant subspace for eigenvalues with
    /// negative real part (`n x n_stable`).
    pub stable_basis: Matrix,
    /// Orthonormal basis of the invariant subspace for eigenvalues with
    /// positive real part (`n x n_unstable`).
    pub unstable_basis: Matrix,
}

/// Splits `R^n` into the stable and antistable invariant subspaces of `a`
/// using the matrix sign function.
///
/// # Errors
///
/// Propagates the errors of [`matrix_sign`]; in particular the split is
/// rejected when `a` has eigenvalues on the imaginary axis.
pub fn spectral_split(a: &Matrix, options: &SignOptions) -> Result<SpectralSplit, LinalgError> {
    let n = a.rows();
    let s = matrix_sign(a, options)?;
    let identity = Matrix::identity(n);
    let p_stable = (&identity - &s).scale(0.5);
    let p_unstable = (&identity + &s).scale(0.5);
    // The projectors have eigenvalues ≈ 0/1, so a generous relative tolerance
    // cleanly separates the range.
    let stable_basis = subspace::range_basis(&p_stable, 1e-6)?;
    let unstable_basis = subspace::range_basis(&p_unstable, 1e-6)?;
    if stable_basis.cols() + unstable_basis.cols() != n {
        return Err(LinalgError::invalid_input(format!(
            "spectral split dimensions {} + {} do not add up to {} (eigenvalues too close to the imaginary axis)",
            stable_basis.cols(),
            unstable_basis.cols(),
            n
        )));
    }
    Ok(SpectralSplit {
        stable_basis,
        unstable_basis,
    })
}

/// Stable half of a spectral split, with the antistable dimension inferred
/// from `trace(sign(A))` instead of a second projector factorization.
#[derive(Debug, Clone)]
pub struct StableSplit {
    /// Orthonormal basis of the stable invariant subspace (`n x n_stable`).
    pub stable_basis: Matrix,
    /// Dimension of the antistable invariant subspace (`n − n_stable`).
    pub unstable_dim: usize,
    /// The converged matrix sign `S = sign(A)` itself. Callers can reuse it:
    /// e.g. for block-triangular `Vᵀ A V = [[Ã, Γ], [0, −Ãᵀ]]` the congruent
    /// sign `Vᵀ S V = [[−I, 2Y], [0, I]]` hands over the solution of the
    /// decoupling Lyapunov equation `Ã Y + Y Ãᵀ + Γ = 0` for free.
    pub sign: Matrix,
}

/// Computes only the stable invariant subspace of `a` via the sign function.
///
/// `trace(sign(A)) = n₊ − n₋` counts the eigenvalues on each side of the
/// imaginary axis, so the dimension consistency check that
/// [`spectral_split`] performs with a second projector SVD reduces to a
/// trace evaluation — callers that only consume the stable basis (e.g. the
/// Hamiltonian split in the passivity test) skip an entire `n × n` range
/// factorization.
///
/// # Errors
///
/// Propagates the errors of [`matrix_sign`]; additionally rejects the split
/// (as [`LinalgError::InvalidInput`]) when the trace is far from an integer
/// or disagrees with the numerical rank of the stable projector — both
/// symptoms of eigenvalues too close to the imaginary axis.
pub fn stable_split(a: &Matrix, options: &SignOptions) -> Result<StableSplit, LinalgError> {
    let n = a.rows();
    let s = matrix_sign(a, options)?;
    let tr = s.trace();
    let stable_dim_f = (n as f64 - tr) * 0.5;
    let stable_dim = stable_dim_f.round();
    // NaN traces fail the range check below, so a plain `>` is safe here.
    if (stable_dim_f - stable_dim).abs() > 0.1 || !(0.0..=n as f64).contains(&stable_dim) {
        return Err(LinalgError::invalid_input(format!(
            "trace of the matrix sign ({tr:.6}) is not consistent with an {n}-dimensional \
             spectral split (eigenvalues too close to the imaginary axis)"
        )));
    }
    let stable_dim = stable_dim as usize;
    let identity = Matrix::identity(n);
    let p_stable = (&identity - &s).scale(0.5);
    let stable_basis = subspace::range_basis(&p_stable, 1e-6)?;
    if stable_basis.cols() != stable_dim {
        return Err(LinalgError::invalid_input(format!(
            "stable projector rank {} disagrees with trace-derived dimension {} \
             (eigenvalues too close to the imaginary axis)",
            stable_basis.cols(),
            stable_dim
        )));
    }
    Ok(StableSplit {
        stable_basis,
        unstable_dim: n - stable_dim,
        sign: s,
    })
}

/// Orthonormal basis of the stable (left-half-plane) invariant subspace of `a`.
///
/// # Errors
///
/// Propagates the errors of [`spectral_split`].
pub fn stable_invariant_subspace(a: &Matrix, options: &SignOptions) -> Result<Matrix, LinalgError> {
    Ok(spectral_split(a, options)?.stable_basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen;

    #[test]
    fn sign_of_definite_diagonal() {
        let a = Matrix::diag(&[-2.0, -0.5, 3.0]);
        let s = matrix_sign(&a, &SignOptions::default()).unwrap();
        assert!(s.approx_eq(&Matrix::diag(&[-1.0, -1.0, 1.0]), 1e-10));
    }

    #[test]
    fn sign_is_involutory() {
        let a = Matrix::from_rows(&[&[-3.0, 1.0, 0.5], &[0.0, 2.0, -1.0], &[0.0, 0.0, -1.0]]);
        let s = matrix_sign(&a, &SignOptions::default()).unwrap();
        assert!((&s * &s).approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn sign_commutes_with_argument() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0], &[0.5, -4.0]]);
        let s = matrix_sign(&a, &SignOptions::default()).unwrap();
        let as_ = &a * &s;
        let sa = &s * &a;
        assert!(as_.approx_eq(&sa, 1e-8));
    }

    #[test]
    fn imaginary_axis_eigenvalue_is_rejected() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]]); // eigenvalues ±i
        assert!(matrix_sign(&a, &SignOptions::default()).is_err());
    }

    #[test]
    fn stable_subspace_of_block_diagonal() {
        let a = Matrix::block_diag(&[
            &Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, -2.0]]),
            &Matrix::from_rows(&[&[3.0]]),
        ]);
        let split = spectral_split(&a, &SignOptions::default()).unwrap();
        assert_eq!(split.stable_basis.cols(), 2);
        assert_eq!(split.unstable_basis.cols(), 1);
        // Invariance: A * V_stable stays inside span(V_stable).
        let av = &a * &split.stable_basis;
        assert!(subspace::is_contained(&av, &split.stable_basis, 1e-8).unwrap());
    }

    #[test]
    fn stable_subspace_matches_eigen_count() {
        // Build a matrix with 3 stable and 2 unstable eigenvalues.
        let d = Matrix::diag(&[-1.0, -2.0, -0.3, 0.7, 1.5]);
        // Similarity transform with a well-conditioned matrix.
        let t = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                1.0
            } else {
                0.1 * ((i + 2 * j) % 3) as f64
            }
        });
        let t_inv = lu::inverse(&t).unwrap();
        let a = &(&t * &d) * &t_inv;
        let basis = stable_invariant_subspace(&a, &SignOptions::default()).unwrap();
        assert_eq!(basis.cols(), 3);
        // Restriction of A to the subspace is Hurwitz.
        let restricted = basis.transpose_matmul(&(&a * &basis)).unwrap();
        assert!(eigen::is_hurwitz(&restricted, 1e-9).unwrap());
    }

    #[test]
    fn stable_split_matches_spectral_split() {
        let a = Matrix::block_diag(&[
            &Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, -2.0]]),
            &Matrix::from_rows(&[&[3.0, 0.5], &[0.0, 0.7]]),
        ]);
        let full = spectral_split(&a, &SignOptions::default()).unwrap();
        let stable = stable_split(&a, &SignOptions::default()).unwrap();
        assert_eq!(stable.stable_basis.cols(), full.stable_basis.cols());
        assert_eq!(stable.unstable_dim, full.unstable_basis.cols());
        let av = &a * &stable.stable_basis;
        assert!(subspace::is_contained(&av, &stable.stable_basis, 1e-8).unwrap());
    }

    #[test]
    fn unscaled_newton_still_converges() {
        let a = Matrix::diag(&[-2.0, -0.5, 3.0, 10.0]);
        let options = SignOptions {
            scaling: SignScaling::None,
            ..SignOptions::default()
        };
        let s = matrix_sign(&a, &options).unwrap();
        assert!(s.approx_eq(&Matrix::diag(&[-1.0, -1.0, 1.0, 1.0]), 1e-10));
    }

    #[test]
    fn scaling_survives_det_overflow() {
        // 300 eigenvalues of magnitude 100 → |det| = 10^600 overflows f64, so
        // the pre-fix scaling guard silently fell back to c = 1. The log-domain
        // path must keep scaling active and converge quickly.
        let n = 300;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    100.0
                } else {
                    -100.0
                }
            } else {
                0.0
            }
        });
        let mut out = Matrix::zeros(0, 0);
        let options = SignOptions {
            scaling: SignScaling::Determinantal,
            ..SignOptions::default()
        };
        let iterations = workspace::with_thread_pool(|pool| {
            matrix_sign_into(&a, &options, pool.get(n), &mut out)
        })
        .unwrap();
        // With c = |det|^{-1/n} = 1/100 the first step already maps the
        // spectrum to ±1; unscaled Newton needs ~10 halvings to pull 100 → 1.
        assert!(
            iterations <= 4,
            "determinantal scaling ineffective: {iterations} iterations"
        );
        for i in 0..n {
            let want = if i % 2 == 0 { 1.0 } else { -1.0 };
            assert!((out[(i, i)] - want).abs() < 1e-10);
        }
    }

    #[test]
    fn frobenius_scaling_is_overflow_immune_and_fast() {
        // Same spectrum as the determinantal overflow fixture: Frobenius
        // scaling sees c = √(‖Z⁻¹‖_F/‖Z‖_F) = 1/100 without ever touching a
        // determinant, so there is nothing to overflow in the first place.
        let n = 300;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                if i % 2 == 0 {
                    100.0
                } else {
                    -100.0
                }
            } else {
                0.0
            }
        });
        let mut out = Matrix::zeros(0, 0);
        let iterations = workspace::with_thread_pool(|pool| {
            matrix_sign_into(&a, &SignOptions::default(), pool.get(n), &mut out)
        })
        .unwrap();
        assert!(
            iterations <= 4,
            "Frobenius scaling ineffective: {iterations} iterations"
        );
        for i in 0..n {
            let want = if i % 2 == 0 { 1.0 } else { -1.0 };
            assert!((out[(i, i)] - want).abs() < 1e-10);
        }
    }

    #[test]
    fn scaled_newton_beats_unscaled_at_n200() {
        // Well-conditioned Hamiltonian H = diag(D, −D) (so J·H is symmetric)
        // with eigenvalue magnitudes 10²..10⁴: the geometric mean is 10³, so
        // the first scaled step maps the spectrum near ±1, while unscaled
        // Newton has to halve the extremal magnitudes all the way down.
        let half = 100;
        let n = 2 * half;
        let magnitude = |i: usize| 10f64.powf(2.0 + 2.0 * (i as f64) / ((half - 1) as f64));
        let h = Matrix::from_fn(n, n, |i, j| {
            if i != j {
                0.0
            } else if i < half {
                -magnitude(i)
            } else {
                magnitude(i - half)
            }
        });
        let mut out = Matrix::zeros(0, 0);
        let scaled = workspace::with_thread_pool(|pool| {
            matrix_sign_into(&h, &SignOptions::default(), pool.get(n), &mut out)
        })
        .unwrap();
        for i in 0..n {
            let want = if i < half { -1.0 } else { 1.0 };
            assert!((out[(i, i)] - want).abs() < 1e-10);
        }
        let unscaled_options = SignOptions {
            scaling: SignScaling::None,
            ..SignOptions::default()
        };
        let unscaled = workspace::with_thread_pool(|pool| {
            matrix_sign_into(&h, &unscaled_options, pool.get(n), &mut out)
        })
        .unwrap();
        // Scaling must be active (c ≠ 1 ⇒ strictly fewer iterations) and the
        // absolute count is pinned so a silent scaling regression — like the
        // determinantal-overflow fallback this module once had — trips here.
        assert!(
            scaled < unscaled,
            "scaled Newton took {scaled} iterations, unscaled {unscaled}"
        );
        assert!(
            scaled <= 8,
            "scaled Newton convergence regressed: {scaled} iterations at n = {n}"
        );
    }

    #[test]
    fn empty_matrix() {
        let s = matrix_sign(&Matrix::zeros(0, 0), &SignOptions::default()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matrix_sign(&Matrix::zeros(2, 3), &SignOptions::default()).is_err());
    }
}
