//! The matrix sign function and sign-based invariant subspaces.
//!
//! For a matrix `A` with no eigenvalues on the imaginary axis, the matrix sign
//! function `sign(A)` has eigenvalues `±1` with the same invariant subspaces as
//! `A`: the range of `(I - sign(A))/2` is the invariant subspace associated
//! with the open left half-plane.  The DAC 2006 passivity test uses this to
//! split the spectrum of the Hamiltonian matrix `A₄₄` (paper eq. (22)) without
//! requiring ordered Schur forms.

use crate::decomp::lu;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::subspace;
use crate::workspace::{self, EigenWorkspace};

/// Options controlling the Newton iteration for the matrix sign function.
#[derive(Debug, Clone, Copy)]
pub struct SignOptions {
    /// Maximum number of Newton iterations.
    pub max_iterations: usize,
    /// Relative convergence tolerance on `‖Z_{k+1} − Z_k‖_F / ‖Z_{k+1}‖_F`.
    pub tolerance: f64,
}

impl Default for SignOptions {
    fn default() -> Self {
        SignOptions {
            max_iterations: 100,
            tolerance: 1e-12,
        }
    }
}

/// Computes the matrix sign function of `a` by the scaled Newton iteration
/// `Z ← (c Z + (c Z)⁻¹) / 2` with determinantal scaling `c = |det Z|^{-1/n}`.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::Singular`] if an iterate becomes singular — this happens
///   exactly when `a` has an eigenvalue on (or numerically on) the imaginary
///   axis, for which the sign function is undefined.
/// * [`LinalgError::ConvergenceFailure`] if the iteration stalls.
pub fn matrix_sign(a: &Matrix, options: &SignOptions) -> Result<Matrix, LinalgError> {
    let mut out = Matrix::zeros(0, 0);
    workspace::with_thread_pool(|pool| matrix_sign_into(a, options, pool.get(a.rows()), &mut out))?;
    Ok(out)
}

/// Computes the matrix sign function into a caller-provided output matrix
/// using caller-provided scratch buffers: the scaled Newton iteration runs
/// with zero heap allocation in steady state (the LU factorization, the
/// inverse and the next iterate all live in the workspace).
///
/// # Errors
///
/// Same as [`matrix_sign`].
pub fn matrix_sign_into(
    a: &Matrix,
    options: &SignOptions,
    ws: &mut EigenWorkspace,
    out: &mut Matrix,
) -> Result<(), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "sign::matrix_sign",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        out.resize_uninit(0, 0);
        return Ok(());
    }
    // `out` is the iterate Z; ws.w1 the inverse, ws.w2 the next iterate.
    out.copy_from(a);
    for _ in 0..options.max_iterations {
        lu::factor_into(out, &mut ws.lu)?;
        if ws.lu.singular {
            return Err(LinalgError::Singular {
                operation: "sign::matrix_sign (eigenvalue on the imaginary axis?)",
            });
        }
        // Determinantal scaling accelerates convergence dramatically.
        let det = ws.lu.det().abs();
        let c = if det > 0.0 && det.is_finite() {
            det.powf(-1.0 / n as f64)
        } else {
            1.0
        };
        ws.lu.inverse_into(&mut ws.w1)?;
        // next = Z·(c/2) + Z⁻¹·(1/(2c)), with the running difference and norm
        // accumulated in the same element order as the matrix-level formula.
        ws.w2.resize_uninit(n, n);
        let cz = c * 0.5;
        let ci = 0.5 / c;
        let mut diff_sq = 0.0;
        let mut norm_sq = 0.0;
        for ((nx, &z), &zi) in ws
            .w2
            .as_mut_slice()
            .iter_mut()
            .zip(out.as_slice())
            .zip(ws.w1.as_slice())
        {
            let value = z * cz + zi * ci;
            let delta = value - z;
            diff_sq += delta * delta;
            norm_sq += value * value;
            *nx = value;
        }
        let diff = diff_sq.sqrt();
        let scale = norm_sq.sqrt().max(f64::MIN_POSITIVE);
        std::mem::swap(out, &mut ws.w2);
        if diff <= options.tolerance * scale {
            return Ok(());
        }
    }
    Err(LinalgError::ConvergenceFailure {
        operation: "sign::matrix_sign",
        iterations: options.max_iterations,
    })
}

/// Result of a spectral split along the imaginary axis.
#[derive(Debug, Clone)]
pub struct SpectralSplit {
    /// Orthonormal basis of the invariant subspace for eigenvalues with
    /// negative real part (`n x n_stable`).
    pub stable_basis: Matrix,
    /// Orthonormal basis of the invariant subspace for eigenvalues with
    /// positive real part (`n x n_unstable`).
    pub unstable_basis: Matrix,
}

/// Splits `R^n` into the stable and antistable invariant subspaces of `a`
/// using the matrix sign function.
///
/// # Errors
///
/// Propagates the errors of [`matrix_sign`]; in particular the split is
/// rejected when `a` has eigenvalues on the imaginary axis.
pub fn spectral_split(a: &Matrix, options: &SignOptions) -> Result<SpectralSplit, LinalgError> {
    let n = a.rows();
    let s = matrix_sign(a, options)?;
    let identity = Matrix::identity(n);
    let p_stable = (&identity - &s).scale(0.5);
    let p_unstable = (&identity + &s).scale(0.5);
    // The projectors have eigenvalues ≈ 0/1, so a generous relative tolerance
    // cleanly separates the range.
    let stable_basis = subspace::range_basis(&p_stable, 1e-6)?;
    let unstable_basis = subspace::range_basis(&p_unstable, 1e-6)?;
    if stable_basis.cols() + unstable_basis.cols() != n {
        return Err(LinalgError::invalid_input(format!(
            "spectral split dimensions {} + {} do not add up to {} (eigenvalues too close to the imaginary axis)",
            stable_basis.cols(),
            unstable_basis.cols(),
            n
        )));
    }
    Ok(SpectralSplit {
        stable_basis,
        unstable_basis,
    })
}

/// Orthonormal basis of the stable (left-half-plane) invariant subspace of `a`.
///
/// # Errors
///
/// Propagates the errors of [`spectral_split`].
pub fn stable_invariant_subspace(a: &Matrix, options: &SignOptions) -> Result<Matrix, LinalgError> {
    Ok(spectral_split(a, options)?.stable_basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen;

    #[test]
    fn sign_of_definite_diagonal() {
        let a = Matrix::diag(&[-2.0, -0.5, 3.0]);
        let s = matrix_sign(&a, &SignOptions::default()).unwrap();
        assert!(s.approx_eq(&Matrix::diag(&[-1.0, -1.0, 1.0]), 1e-10));
    }

    #[test]
    fn sign_is_involutory() {
        let a = Matrix::from_rows(&[&[-3.0, 1.0, 0.5], &[0.0, 2.0, -1.0], &[0.0, 0.0, -1.0]]);
        let s = matrix_sign(&a, &SignOptions::default()).unwrap();
        assert!((&s * &s).approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn sign_commutes_with_argument() {
        let a = Matrix::from_rows(&[&[-1.0, 2.0], &[0.5, -4.0]]);
        let s = matrix_sign(&a, &SignOptions::default()).unwrap();
        let as_ = &a * &s;
        let sa = &s * &a;
        assert!(as_.approx_eq(&sa, 1e-8));
    }

    #[test]
    fn imaginary_axis_eigenvalue_is_rejected() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]]); // eigenvalues ±i
        assert!(matrix_sign(&a, &SignOptions::default()).is_err());
    }

    #[test]
    fn stable_subspace_of_block_diagonal() {
        let a = Matrix::block_diag(&[
            &Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, -2.0]]),
            &Matrix::from_rows(&[&[3.0]]),
        ]);
        let split = spectral_split(&a, &SignOptions::default()).unwrap();
        assert_eq!(split.stable_basis.cols(), 2);
        assert_eq!(split.unstable_basis.cols(), 1);
        // Invariance: A * V_stable stays inside span(V_stable).
        let av = &a * &split.stable_basis;
        assert!(subspace::is_contained(&av, &split.stable_basis, 1e-8).unwrap());
    }

    #[test]
    fn stable_subspace_matches_eigen_count() {
        // Build a matrix with 3 stable and 2 unstable eigenvalues.
        let d = Matrix::diag(&[-1.0, -2.0, -0.3, 0.7, 1.5]);
        // Similarity transform with a well-conditioned matrix.
        let t = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                1.0
            } else {
                0.1 * ((i + 2 * j) % 3) as f64
            }
        });
        let t_inv = lu::inverse(&t).unwrap();
        let a = &(&t * &d) * &t_inv;
        let basis = stable_invariant_subspace(&a, &SignOptions::default()).unwrap();
        assert_eq!(basis.cols(), 3);
        // Restriction of A to the subspace is Hurwitz.
        let restricted = basis.transpose_matmul(&(&a * &basis)).unwrap();
        assert!(eigen::is_hurwitz(&restricted, 1e-9).unwrap());
    }

    #[test]
    fn empty_matrix() {
        let s = matrix_sign(&Matrix::zeros(0, 0), &SignOptions::default()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matrix_sign(&Matrix::zeros(2, 3), &SignOptions::default()).is_err());
    }
}
