//! LU factorization with partial pivoting and the solvers built on it.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// `L` is unit lower triangular and `U` upper triangular; both are packed into
/// [`Lu::lu`]. The permutation is stored as a row-index vector.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed `L` (strictly lower part, unit diagonal implied) and `U` (upper part).
    pub lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of the input.
    pub perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), used for the determinant.
    pub perm_sign: f64,
    /// `true` when a (numerically) zero pivot was encountered.
    pub singular: bool,
}

/// Computes the LU factorization of a square matrix.
///
/// The factorization always completes (singularity is reported through
/// [`Lu::singular`]), so rank-deficient matrices can still be inspected.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] if `a` is not square.
pub fn factor(a: &Matrix) -> Result<Lu, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "lu::factor",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut perm_sign = 1.0;
    let mut singular = false;
    let scale = a.norm_max().max(1.0);
    let tol = f64::EPSILON * scale * (n as f64);

    for k in 0..n {
        // Partial pivoting: find the largest entry in column k at or below row k.
        let mut p = k;
        let mut max_val = lu[(k, k)].abs();
        for i in (k + 1)..n {
            if lu[(i, k)].abs() > max_val {
                max_val = lu[(i, k)].abs();
                p = i;
            }
        }
        if p != k {
            lu.swap_rows(p, k);
            perm.swap(p, k);
            perm_sign = -perm_sign;
        }
        let pivot = lu[(k, k)];
        if pivot.abs() <= tol {
            singular = true;
            continue;
        }
        for i in (k + 1)..n {
            let factor = lu[(i, k)] / pivot;
            lu[(i, k)] = factor;
            for j in (k + 1)..n {
                let delta = factor * lu[(k, j)];
                lu[(i, j)] -= delta;
            }
        }
    }
    Ok(Lu {
        lu,
        perm,
        perm_sign,
        singular,
    })
}

impl Lu {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Solves `A X = B` for `X` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the factorization flagged a zero
    /// pivot, and [`LinalgError::ShapeMismatch`] when `b` has the wrong row count.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if self.singular {
            return Err(LinalgError::Singular {
                operation: "lu::solve",
            });
        }
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                operation: "lu::solve",
                left: self.lu.shape(),
                right: b.shape(),
            });
        }
        let nrhs = b.cols();
        // Apply permutation to B.
        let mut x = Matrix::zeros(n, nrhs);
        for i in 0..n {
            for j in 0..nrhs {
                x[(i, j)] = b[(self.perm[i], j)];
            }
        }
        // Forward substitution with unit lower triangular L.
        for i in 0..n {
            for k in 0..i {
                let lik = self.lu[(i, k)];
                if lik != 0.0 {
                    for j in 0..nrhs {
                        let delta = lik * x[(k, j)];
                        x[(i, j)] -= delta;
                    }
                }
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let uik = self.lu[(i, k)];
                if uik != 0.0 {
                    for j in 0..nrhs {
                        let delta = uik * x[(k, j)];
                        x[(i, j)] -= delta;
                    }
                }
            }
            let uii = self.lu[(i, i)];
            for j in 0..nrhs {
                x[(i, j)] /= uii;
            }
        }
        Ok(x)
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the matrix is singular.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve(&Matrix::identity(self.dim()))
    }
}

/// One-shot solve of `A X = B`.
///
/// # Errors
///
/// Propagates the errors of [`factor`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    factor(a)?.solve(b)
}

/// One-shot matrix inverse.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when `a` is singular and
/// [`LinalgError::NotSquare`] when it is not square.
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    factor(a)?.inverse()
}

/// One-shot determinant.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] when `a` is not square.
pub fn det(a: &Matrix) -> Result<f64, LinalgError> {
    Ok(factor(a)?.det())
}

/// Solves `X A = B`, i.e. `X = B A⁻¹`, without forming the inverse.
///
/// # Errors
///
/// Propagates the errors of [`solve`].
pub fn solve_transposed(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    // X A = B  ⇔  Aᵀ Xᵀ = Bᵀ
    let xt = solve(&a.transpose(), &b.transpose())?;
    Ok(xt.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_small_system() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let b = Matrix::column(&[10.0, 12.0]);
        let x = solve(&a, &b).unwrap();
        let residual = &(&a * &x) - &b;
        assert!(residual.norm_fro() < 1e-12);
    }

    #[test]
    fn determinant_matches_formula() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((det(&a).unwrap() - (-2.0)).abs() < 1e-12);
        let id = Matrix::identity(5);
        assert!((det(&id).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let inv = inverse(&a).unwrap();
        assert!((&a * &inv).approx_eq(&Matrix::identity(3), 1e-12));
        assert!((&inv * &a).approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let f = factor(&a).unwrap();
        assert!(f.singular);
        assert!(matches!(
            f.solve(&Matrix::identity(2)),
            Err(LinalgError::Singular { .. })
        ));
        assert!(det(&a).unwrap().abs() < 1e-10);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 1.0], &[8.0, 0.0]]);
        let x = solve(&a, &b).unwrap();
        assert!((&(&a * &x) - &b).norm_fro() < 1e-12);
    }

    #[test]
    fn solve_transposed_right_division() {
        let a = Matrix::from_rows(&[&[2.0, 0.5], &[-1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let x = solve_transposed(&a, &b).unwrap();
        assert!((&(&x * &a) - &b).norm_fro() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &Matrix::column(&[2.0, 3.0])).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn larger_random_like_system() {
        let n = 12;
        // Deterministic well-conditioned matrix: diagonally dominant.
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                ((i * 7 + j * 3) % 5) as f64 * 0.3 - 0.6
            }
        });
        let x_true = Matrix::from_fn(n, 2, |i, j| (i + j) as f64 * 0.5 - 1.0);
        let b = &a * &x_true;
        let x = solve(&a, &b).unwrap();
        assert!((&x - &x_true).norm_fro() < 1e-10);
    }
}
