//! LU factorization with partial pivoting and the solvers built on it.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// `L` is unit lower triangular and `U` upper triangular; both are packed into
/// [`Lu::lu`]. The permutation is stored as a row-index vector.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed `L` (strictly lower part, unit diagonal implied) and `U` (upper part).
    pub lu: Matrix,
    /// Row permutation: row `i` of the factored matrix is row `perm[i]` of the input.
    pub perm: Vec<usize>,
    /// Sign of the permutation (`+1.0` or `-1.0`), used for the determinant.
    pub perm_sign: f64,
    /// `true` when a (numerically) zero pivot was encountered.
    pub singular: bool,
}

/// Computes the LU factorization of a square matrix.
///
/// The factorization always completes (singularity is reported through
/// [`Lu::singular`]), so rank-deficient matrices can still be inspected.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] if `a` is not square.
pub fn factor(a: &Matrix) -> Result<Lu, LinalgError> {
    let mut f = Lu::empty();
    factor_into(a, &mut f)?;
    Ok(f)
}

/// Computes the LU factorization of `a` into a caller-provided [`Lu`],
/// reusing its matrix and pivot buffers (zero heap allocation in steady state
/// when the dimension repeats).
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] if `a` is not square.
pub fn factor_into(a: &Matrix, f: &mut Lu) -> Result<(), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "lu::factor",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    f.lu.copy_from(a);
    f.perm.clear();
    f.perm.extend(0..n);
    f.perm_sign = 1.0;
    f.singular = false;
    let scale = a.norm_max().max(1.0);
    let tol = f64::EPSILON * scale * (n as f64);
    let lu = f.lu.as_mut_slice();

    for k in 0..n {
        // Partial pivoting: find the largest entry in column k at or below row k.
        let mut p = k;
        let mut max_val = lu[k * n + k].abs();
        for i in (k + 1)..n {
            if lu[i * n + k].abs() > max_val {
                max_val = lu[i * n + k].abs();
                p = i;
            }
        }
        if p != k {
            for j in 0..n {
                lu.swap(p * n + j, k * n + j);
            }
            f.perm.swap(p, k);
            f.perm_sign = -f.perm_sign;
        }
        let pivot = lu[k * n + k];
        if pivot.abs() <= tol {
            f.singular = true;
            continue;
        }
        // Eliminate below the pivot; row k is read-only while rows k+1.. are
        // updated, so split the buffer once per step.
        let (top, below) = lu.split_at_mut((k + 1) * n);
        let row_k = &top[k * n..];
        for row_i in below.chunks_exact_mut(n) {
            let factor = row_i[k] / pivot;
            row_i[k] = factor;
            for j in (k + 1)..n {
                let delta = factor * row_k[j];
                row_i[j] -= delta;
            }
        }
    }
    Ok(())
}

impl Lu {
    /// An empty factorization, used as reusable storage for [`factor_into`].
    pub fn empty() -> Lu {
        Lu {
            lu: Matrix::zeros(0, 0),
            perm: Vec::new(),
            perm_sign: 1.0,
            singular: false,
        }
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the factored matrix.
    ///
    /// Computed as the raw product of the `U` diagonal, so the result
    /// over/underflows `f64` once `n · log₂(typical |u_ii|)` exceeds ±1024 —
    /// in practice a few hundred rows for matrices whose entries are not
    /// close to unit scale. Callers that only need the *magnitude* of the
    /// determinant (e.g. determinantal scaling) must use
    /// [`Lu::log_abs_det`], which stays finite in exactly those regimes.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Natural logarithm of `|det A| = Σ ln|u_ii|`, accumulated in the log
    /// domain so it neither overflows nor underflows where [`Lu::det`] does.
    ///
    /// Returns `-∞` when a diagonal entry is exactly zero (singular matrix).
    pub fn log_abs_det(&self) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..self.dim() {
            acc += self.lu[(i, i)].abs().ln();
        }
        acc
    }

    /// Solves `A X = B` for `X` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the factorization flagged a zero
    /// pivot, and [`LinalgError::ShapeMismatch`] when `b` has the wrong row count.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let mut x = Matrix::zeros(0, 0);
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A X = B` into a caller-provided output matrix (reshaped and
    /// fully overwritten; no allocation in steady state).
    ///
    /// # Errors
    ///
    /// Same as [`Lu::solve`].
    pub fn solve_into(&self, b: &Matrix, x: &mut Matrix) -> Result<(), LinalgError> {
        let n = self.dim();
        if self.singular {
            return Err(LinalgError::Singular {
                operation: "lu::solve",
            });
        }
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                operation: "lu::solve",
                left: self.lu.shape(),
                right: b.shape(),
            });
        }
        let nrhs = b.cols();
        // Apply permutation to B.
        x.resize_uninit(n, nrhs);
        {
            let xd = x.as_mut_slice();
            let bd = b.as_slice();
            for i in 0..n {
                xd[i * nrhs..(i + 1) * nrhs]
                    .copy_from_slice(&bd[self.perm[i] * nrhs..(self.perm[i] + 1) * nrhs]);
            }
        }
        self.substitute_in_place(x);
        Ok(())
    }

    /// Forward/back substitution on a permuted right-hand side already stored
    /// in `x` (shared by [`Lu::solve_into`] and [`Lu::inverse_into`]).
    fn substitute_in_place(&self, x: &mut Matrix) {
        let n = self.dim();
        let nrhs = x.cols();
        let lud = self.lu.as_slice();
        let xd = x.as_mut_slice();
        // Forward substitution with unit lower triangular L.
        for i in 0..n {
            let (above, current) = xd.split_at_mut(i * nrhs);
            let row_i = &mut current[..nrhs];
            let lrow = &lud[i * n..i * n + i];
            for (k, &lik) in lrow.iter().enumerate() {
                if lik != 0.0 {
                    let row_k = &above[k * nrhs..(k + 1) * nrhs];
                    for (xi, &xk) in row_i.iter_mut().zip(row_k.iter()) {
                        let delta = lik * xk;
                        *xi -= delta;
                    }
                }
            }
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let (head, tail) = xd.split_at_mut((i + 1) * nrhs);
            let row_i = &mut head[i * nrhs..];
            let urow = &lud[i * n..(i + 1) * n];
            for k in (i + 1)..n {
                let uik = urow[k];
                if uik != 0.0 {
                    let row_k = &tail[(k - i - 1) * nrhs..(k - i) * nrhs];
                    for (xi, &xk) in row_i.iter_mut().zip(row_k.iter()) {
                        let delta = uik * xk;
                        *xi -= delta;
                    }
                }
            }
            let uii = urow[i];
            for xi in row_i.iter_mut() {
                *xi /= uii;
            }
        }
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the matrix is singular.
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let mut x = Matrix::zeros(0, 0);
        self.inverse_into(&mut x)?;
        Ok(x)
    }

    /// Inverse of the factored matrix into a caller-provided output
    /// (reshaped and fully overwritten; no allocation in steady state).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the matrix is singular.
    pub fn inverse_into(&self, x: &mut Matrix) -> Result<(), LinalgError> {
        let n = self.dim();
        if self.singular {
            return Err(LinalgError::Singular {
                operation: "lu::solve",
            });
        }
        // The permuted identity right-hand side, written directly.
        x.resize_uninit(n, n);
        {
            let xd = x.as_mut_slice();
            xd.fill(0.0);
            for i in 0..n {
                xd[i * n + self.perm[i]] = 1.0;
            }
        }
        self.substitute_in_place(x);
        Ok(())
    }

    /// Inverse of the factored matrix via triangular inversion
    /// (`A⁻¹ = U⁻¹·L⁻¹·P`), using a caller-provided `n × n` scratch matrix.
    ///
    /// Costs `(4/3)n³` flops against the `2n³` of the substitution-based
    /// [`Lu::inverse_into`], which makes it the right choice inside iterative
    /// callers (the Newton sign iteration spends almost all its time here).
    /// The floating-point operation *order* differs from `inverse_into`, so
    /// the two are numerically equivalent but not bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the matrix is singular.
    pub fn inverse_into_ws(&self, x: &mut Matrix, scratch: &mut Matrix) -> Result<(), LinalgError> {
        let n = self.dim();
        if self.singular {
            return Err(LinalgError::Singular {
                operation: "lu::solve",
            });
        }
        scratch.resize_uninit(n, n);
        x.resize_uninit(n, n);
        let lud = self.lu.as_slice();
        // scratch ← U⁻¹ (upper triangular), rows bottom-up: row i only reads
        // already-finished rows k > i.
        {
            let ud = scratch.as_mut_slice();
            for i in (0..n).rev() {
                let (head, tail) = ud.split_at_mut((i + 1) * n);
                let row_i = &mut head[i * n..];
                row_i.fill(0.0);
                for k in (i + 1)..n {
                    let f = lud[i * n + k];
                    if f != 0.0 {
                        let row_k = &tail[(k - i - 1) * n..(k - i) * n];
                        for (xi, &xk) in row_i[k..].iter_mut().zip(row_k[k..].iter()) {
                            *xi += f * xk;
                        }
                    }
                }
                let inv_uii = 1.0 / lud[i * n + i];
                for xi in row_i[(i + 1)..].iter_mut() {
                    *xi = -*xi * inv_uii;
                }
                row_i[i] = inv_uii;
            }
        }
        // x ← L⁻¹ (unit lower triangular), rows top-down.
        {
            let xd = x.as_mut_slice();
            for i in 0..n {
                let (head, row_rest) = xd.split_at_mut(i * n);
                let row_i = &mut row_rest[..n];
                row_i.fill(0.0);
                for k in 0..i {
                    let f = lud[i * n + k];
                    if f != 0.0 {
                        let row_k = &head[k * n..(k + 1) * n];
                        for (xi, &xk) in row_i[..=k].iter_mut().zip(row_k[..=k].iter()) {
                            *xi += f * xk;
                        }
                    }
                }
                for xi in row_i[..i].iter_mut() {
                    *xi = -*xi;
                }
                row_i[i] = 1.0;
            }
        }
        // x ← U⁻¹·L⁻¹ in place, rows top-down: row i scales itself first, then
        // accumulates only rows k > i, which are still untouched L⁻¹ rows.
        {
            let ud = scratch.as_slice();
            let xd = x.as_mut_slice();
            for i in 0..n {
                let (head, tail) = xd.split_at_mut((i + 1) * n);
                let row_i = &mut head[i * n..];
                let uii = ud[i * n + i];
                for xi in row_i.iter_mut() {
                    *xi *= uii;
                }
                for k in (i + 1)..n {
                    let f = ud[i * n + k];
                    if f != 0.0 {
                        let row_k = &tail[(k - i - 1) * n..(k - i) * n];
                        for (xi, &xk) in row_i[..=k].iter_mut().zip(row_k[..=k].iter()) {
                            *xi += f * xk;
                        }
                    }
                }
            }
        }
        // Apply the column permutation: (M·P)[i][perm[k]] = M[i][k]. The U⁻¹
        // scratch is spent, so its first row doubles as the permutation buffer.
        {
            let tmp = &mut scratch.as_mut_slice()[..n];
            let xd = x.as_mut_slice();
            for i in 0..n {
                let row_i = &mut xd[i * n..(i + 1) * n];
                tmp.copy_from_slice(row_i);
                for (k, &p) in self.perm.iter().enumerate() {
                    row_i[p] = tmp[k];
                }
            }
        }
        Ok(())
    }
}

/// One-shot solve of `A X = B`.
///
/// # Errors
///
/// Propagates the errors of [`factor`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    factor(a)?.solve(b)
}

/// One-shot matrix inverse.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when `a` is singular and
/// [`LinalgError::NotSquare`] when it is not square.
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    factor(a)?.inverse()
}

/// One-shot determinant.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] when `a` is not square.
pub fn det(a: &Matrix) -> Result<f64, LinalgError> {
    Ok(factor(a)?.det())
}

/// Solves `X A = B`, i.e. `X = B A⁻¹`, without forming the inverse.
///
/// # Errors
///
/// Propagates the errors of [`solve`].
pub fn solve_transposed(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    // X A = B  ⇔  Aᵀ Xᵀ = Bᵀ
    let xt = solve(&a.transpose(), &b.transpose())?;
    Ok(xt.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_small_system() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let b = Matrix::column(&[10.0, 12.0]);
        let x = solve(&a, &b).unwrap();
        let residual = &(&a * &x) - &b;
        assert!(residual.norm_fro() < 1e-12);
    }

    #[test]
    fn determinant_matches_formula() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((det(&a).unwrap() - (-2.0)).abs() < 1e-12);
        let id = Matrix::identity(5);
        assert!((det(&id).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let inv = inverse(&a).unwrap();
        assert!((&a * &inv).approx_eq(&Matrix::identity(3), 1e-12));
        assert!((&inv * &a).approx_eq(&Matrix::identity(3), 1e-12));
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let f = factor(&a).unwrap();
        assert!(f.singular);
        assert!(matches!(
            f.solve(&Matrix::identity(2)),
            Err(LinalgError::Singular { .. })
        ));
        assert!(det(&a).unwrap().abs() < 1e-10);
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 1.0], &[8.0, 0.0]]);
        let x = solve(&a, &b).unwrap();
        assert!((&(&a * &x) - &b).norm_fro() < 1e-12);
    }

    #[test]
    fn solve_transposed_right_division() {
        let a = Matrix::from_rows(&[&[2.0, 0.5], &[-1.0, 3.0]]);
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let x = solve_transposed(&a, &b).unwrap();
        assert!((&(&x * &a) - &b).norm_fro() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &Matrix::column(&[2.0, 3.0])).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn factor_into_reuses_buffers_and_matches_factor() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let reference = factor(&a).unwrap();
        let mut f = Lu::empty();
        // Warm the buffers with a different matrix first.
        factor_into(&Matrix::identity(3), &mut f).unwrap();
        factor_into(&a, &mut f).unwrap();
        assert_eq!(f.lu, reference.lu);
        assert_eq!(f.perm, reference.perm);
        assert_eq!(f.perm_sign, reference.perm_sign);
        assert_eq!(f.singular, reference.singular);
        let mut inv = Matrix::zeros(0, 0);
        f.inverse_into(&mut inv).unwrap();
        assert_eq!(inv, reference.inverse().unwrap());
        let b = Matrix::from_fn(3, 2, |i, j| (i + 2 * j) as f64);
        let mut x = Matrix::zeros(0, 0);
        f.solve_into(&b, &mut x).unwrap();
        assert_eq!(x, reference.solve(&b).unwrap());
    }

    #[test]
    fn triangular_inverse_matches_substitution_inverse() {
        for n in [1usize, 2, 3, 5, 8, 13, 21, 40] {
            let a = Matrix::from_fn(n, n, |i, j| {
                if i == j {
                    4.0 + (i % 3) as f64
                } else {
                    (((i * 5 + j * 11) % 7) as f64 - 3.0) * 0.4
                }
            });
            let f = factor(&a).unwrap();
            let reference = f.inverse().unwrap();
            let mut x = Matrix::zeros(0, 0);
            let mut scratch = Matrix::zeros(0, 0);
            f.inverse_into_ws(&mut x, &mut scratch).unwrap();
            assert!(
                (&x - &reference).norm_max() <= 1e-12 * reference.norm_max().max(1.0),
                "triangular inverse diverges from substitution inverse at n = {n}"
            );
            assert!((&a * &x).approx_eq(&Matrix::identity(n), 1e-10));
        }
    }

    #[test]
    fn triangular_inverse_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let f = factor(&a).unwrap();
        let mut x = Matrix::zeros(0, 0);
        let mut scratch = Matrix::zeros(0, 0);
        assert!(matches!(
            f.inverse_into_ws(&mut x, &mut scratch),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn log_abs_det_matches_det_in_safe_range() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let f = factor(&a).unwrap();
        assert!((f.log_abs_det() - f.det().abs().ln()).abs() < 1e-12);
        // 250 diagonal entries of 100 → det = 10^500 overflows f64, the log
        // form does not.
        let big = Matrix::identity(250).scale(100.0);
        let f = factor(&big).unwrap();
        assert!(!f.det().is_finite());
        assert!((f.log_abs_det() - 250.0 * 100.0f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn larger_random_like_system() {
        let n = 12;
        // Deterministic well-conditioned matrix: diagonally dominant.
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0 + i as f64
            } else {
                ((i * 7 + j * 3) % 5) as f64 * 0.3 - 0.6
            }
        });
        let x_true = Matrix::from_fn(n, 2, |i, j| (i + j) as f64 * 0.5 - 1.0);
        let b = &a * &x_true;
        let x = solve(&a, &b).unwrap();
        assert!((&x - &x_true).norm_fro() < 1e-10);
    }
}
