//! Householder QR factorization and least-squares solves.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// The result of a Householder QR factorization `A = Q R`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthogonal factor. Thin (`m x min(m,n)`) or full (`m x m`) depending on
    /// the constructor used.
    pub q: Matrix,
    /// Upper-triangular (or upper-trapezoidal) factor.
    pub r: Matrix,
}

/// Computes the *full* QR factorization: `q` is `m x m` orthogonal and `r` is
/// `m x n` upper trapezoidal.
pub fn factor_full(a: &Matrix) -> Qr {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    let mut v = vec![0.0; m];
    let mut dots = vec![0.0; n];
    for k in 0..n.min(m.saturating_sub(1)) {
        let rd = r.as_mut_slice();
        // Householder vector for column k, rows k..m.
        let mut norm_x = 0.0;
        for i in k..m {
            norm_x += rd[i * n + k] * rd[i * n + k];
        }
        norm_x = norm_x.sqrt();
        if norm_x == 0.0 {
            continue;
        }
        let alpha = if rd[k * n + k] >= 0.0 {
            -norm_x
        } else {
            norm_x
        };
        let vlen = m - k;
        let v = &mut v[..vlen];
        v[0] = rd[k * n + k] - alpha;
        for i in (k + 1)..m {
            v[i - k] = rd[i * n + k];
        }
        let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
        if vnorm_sq <= f64::MIN_POSITIVE {
            continue;
        }
        let beta = 2.0 / vnorm_sq;
        // Apply H = I - beta v vᵀ to R (rows k..m) in the row-major two-pass
        // form: all column dot products first, then the rank-1 update.  Per
        // column the additions happen in the same ascending-row order as the
        // column-at-a-time loop.  Columns j < k carry only self-contained
        // round-off below the diagonal (never read again, wiped at the end),
        // so the sweep starts at column k; both changes leave the returned
        // factors bit-identical.
        let jlo = k.min(n);
        dots[jlo..n].fill(0.0);
        for i in k..m {
            let vi = v[i - k];
            let row = &rd[i * n + jlo..(i + 1) * n];
            for (d, &x) in dots[jlo..n].iter_mut().zip(row.iter()) {
                *d += vi * x;
            }
        }
        for i in k..m {
            let vi = v[i - k];
            let row = &mut rd[i * n + jlo..(i + 1) * n];
            for (x, &d) in row.iter_mut().zip(dots[jlo..n].iter()) {
                *x -= (beta * d) * vi;
            }
        }
        // Accumulate into Q: Q = Q * H (apply H on the right, i.e. to columns k..m of Q).
        let qd = q.as_mut_slice();
        for i in 0..m {
            let row = &mut qd[i * m + k..(i + 1) * m];
            let mut dot = 0.0;
            for (&x, &vj) in row.iter().zip(v.iter()) {
                dot += x * vj;
            }
            let s = beta * dot;
            for (x, &vj) in row.iter_mut().zip(v.iter()) {
                *x -= s * vj;
            }
        }
    }
    // Zero out the numerically-negligible strictly lower part of R.
    for i in 1..m {
        for j in 0..i.min(n) {
            r[(i, j)] = 0.0;
        }
    }
    // Normalize signs so that R has a non-negative diagonal; this makes the
    // factorization unique for full-rank input (and QR of I equal to (I, I)).
    for k in 0..m.min(n) {
        if r[(k, k)] < 0.0 {
            for j in 0..n {
                r[(k, j)] = -r[(k, j)];
            }
            for i in 0..m {
                q[(i, k)] = -q[(i, k)];
            }
        }
    }
    Qr { q, r }
}

/// Computes the *thin* QR factorization: `q` is `m x min(m,n)` with orthonormal
/// columns and `r` is `min(m,n) x n`.
pub fn factor_thin(a: &Matrix) -> Qr {
    let (m, n) = a.shape();
    let k = m.min(n);
    let full = factor_full(a);
    Qr {
        q: full.q.block(0, m, 0, k),
        r: full.r.block(0, k, 0, n),
    }
}

/// Solves the least-squares problem `min ||A x - b||₂` for full-column-rank `A`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when the row counts differ and
/// [`LinalgError::Singular`] when `A` is (numerically) rank deficient.
pub fn least_squares(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let (m, n) = a.shape();
    if b.rows() != m {
        return Err(LinalgError::ShapeMismatch {
            operation: "qr::least_squares",
            left: a.shape(),
            right: b.shape(),
        });
    }
    if m < n {
        return Err(LinalgError::invalid_input(
            "least_squares requires at least as many rows as columns",
        ));
    }
    let qr = factor_thin(a);
    let tol = f64::EPSILON * a.norm_max().max(1.0) * (m.max(n) as f64);
    for i in 0..n {
        if qr.r[(i, i)].abs() <= tol {
            return Err(LinalgError::Singular {
                operation: "qr::least_squares",
            });
        }
    }
    let rhs = qr.q.transpose_matmul(b)?;
    // Back substitution R x = Qᵀ b.
    let nrhs = rhs.cols();
    let mut x = Matrix::zeros(n, nrhs);
    for j in 0..nrhs {
        for i in (0..n).rev() {
            let mut s = rhs[(i, j)];
            for k in (i + 1)..n {
                s -= qr.r[(i, k)] * x[(k, j)];
            }
            x[(i, j)] = s / qr.r[(i, i)];
        }
    }
    Ok(x)
}

/// Orthonormalizes the columns of `a` (modified Gram–Schmidt with
/// reorthogonalization), dropping columns that are numerically dependent.
///
/// Returns a matrix with orthonormal columns spanning the column space of `a`.
pub fn orthonormalize_columns(a: &Matrix, tol: f64) -> Matrix {
    let (m, n) = a.shape();
    let scale = a.norm_max().max(1.0);
    // The accepted basis vectors live as contiguous rows of a flat buffer (the
    // transposed basis); the projection loop then runs over slices with no
    // per-step allocation.  Per element the arithmetic matches the former
    // matrix-at-a-time version (`v ← v − q·(qᵀv)`, two passes) exactly.
    let mut basis: Vec<f64> = Vec::new();
    let mut kept = 0usize;
    let mut v = vec![0.0; m];
    for j in 0..n {
        for (i, value) in v.iter_mut().enumerate() {
            *value = a[(i, j)];
        }
        // Two passes of Gram–Schmidt for numerical robustness.
        for _ in 0..2 {
            for q in basis.chunks_exact(m) {
                let mut coeff = 0.0;
                for (&qi, &vi) in q.iter().zip(v.iter()) {
                    coeff += qi * vi;
                }
                for (x, &qi) in v.iter_mut().zip(q.iter()) {
                    *x -= qi * coeff;
                }
            }
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > tol * scale {
            let inv = 1.0 / norm;
            basis.extend(v.iter().map(|&x| x * inv));
            kept += 1;
        }
    }
    let mut out = Matrix::zeros(m, kept);
    for (k, q) in basis.chunks_exact(m).enumerate() {
        for (i, &x) in q.iter().enumerate() {
            out[(i, k)] = x;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthogonal(q: &Matrix, tol: f64) {
        let qtq = q.transpose_matmul(q).unwrap();
        assert!(
            qtq.approx_eq(&Matrix::identity(q.cols()), tol),
            "QᵀQ deviates from identity by {}",
            (&qtq - &Matrix::identity(q.cols())).norm_max()
        );
    }

    #[test]
    fn full_qr_reconstructs() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            &[7.0, 8.0, 10.0],
            &[1.0, -1.0, 2.0],
        ]);
        let qr = factor_full(&a);
        assert_eq!(qr.q.shape(), (4, 4));
        assert_eq!(qr.r.shape(), (4, 3));
        assert_orthogonal(&qr.q, 1e-12);
        let recon = &qr.q * &qr.r;
        assert!(recon.approx_eq(&a, 1e-12));
    }

    #[test]
    fn thin_qr_reconstructs() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 2.0]]);
        let qr = factor_thin(&a);
        assert_eq!(qr.q.shape(), (3, 2));
        assert_eq!(qr.r.shape(), (2, 2));
        assert_orthogonal(&qr.q, 1e-12);
        assert!((&qr.q * &qr.r).approx_eq(&a, 1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64) * 0.1);
        let qr = factor_full(&a);
        for i in 0..5 {
            for j in 0..i.min(4) {
                assert!(qr.r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn least_squares_exact_for_square() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::column(&[5.0, 10.0]);
        let x = least_squares(&a, &b).unwrap();
        assert!((&(&a * &x) - &b).norm_fro() < 1e-12);
    }

    #[test]
    fn least_squares_overdetermined() {
        // Fit y = 2 t + 1 exactly representable.
        let t: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let a = Matrix::from_fn(6, 2, |i, j| if j == 0 { t[i] } else { 1.0 });
        let b = Matrix::from_fn(6, 1, |i, _| 2.0 * t[i] + 1.0);
        let x = least_squares(&a, &b).unwrap();
        assert!((x[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_rank_deficient_errors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let b = Matrix::column(&[1.0, 2.0, 3.0]);
        assert!(matches!(
            least_squares(&a, &b),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn orthonormalize_drops_dependent_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 0.0, 1.0], &[1.0, 2.0, 1.0]]);
        let q = orthonormalize_columns(&a, 1e-10);
        assert_eq!(q.cols(), 2);
        assert_orthogonal(&q, 1e-12);
    }

    #[test]
    fn orthonormalize_empty_input() {
        let a = Matrix::zeros(3, 0);
        let q = orthonormalize_columns(&a, 1e-10);
        assert_eq!(q.shape(), (3, 0));
        let z = Matrix::zeros(3, 2);
        let qz = orthonormalize_columns(&z, 1e-10);
        assert_eq!(qz.cols(), 0);
    }

    #[test]
    fn qr_of_identity_is_identity() {
        let qr = factor_full(&Matrix::identity(4));
        assert!(qr.q.approx_eq(&Matrix::identity(4), 1e-14));
        assert!(qr.r.approx_eq(&Matrix::identity(4), 1e-14));
    }
}
