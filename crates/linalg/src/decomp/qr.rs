//! Householder QR factorization and least-squares solves.
//!
//! Like the Hessenberg reduction, the full factorization has two kernels: a
//! one-reflector-at-a-time sweep (bit-identical to the historical code) and a
//! compact-WY blocked sweep that aggregates [`hessenberg::PANEL_NB`] reflectors
//! into `I − V·T·Vᵀ` form so the trailing and Q updates run as block products.
//! [`factor_full`] routes matrices with at least
//! [`hessenberg::BLOCKED_MIN_DIM`] rows to the blocked kernel.

use super::hessenberg;
use crate::error::LinalgError;
use crate::matrix::Matrix;

/// The result of a Householder QR factorization `A = Q R`.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthogonal factor. Thin (`m x min(m,n)`) or full (`m x m`) depending on
    /// the constructor used.
    pub q: Matrix,
    /// Upper-triangular (or upper-trapezoidal) factor.
    pub r: Matrix,
}

/// Computes the *full* QR factorization: `q` is `m x m` orthogonal and `r` is
/// `m x n` upper trapezoidal.
pub fn factor_full(a: &Matrix) -> Qr {
    if a.rows() >= hessenberg::BLOCKED_MIN_DIM {
        factor_full_blocked(a)
    } else {
        factor_full_unblocked(a)
    }
}

/// Compact-WY blocked full QR, used by [`factor_full`] for tall matrices and
/// exposed so equivalence tests and benchmarks can run it at any size.
///
/// Panel columns are reduced one reflector at a time (rank-1 updates confined
/// to the panel); the accumulated block reflector `I − V·T·Vᵀ` then hits the
/// trailing columns as `C ← C − V·(Tᵀ·(Vᵀ·C))` and the orthogonal factor as
/// `Q ← Q − (Q·V)·T·Vᵀ`, all with contiguous `nb`-length inner loops.
pub fn factor_full_blocked(a: &Matrix) -> Qr {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    let kmax = n.min(m.saturating_sub(1));
    let nb = hessenberg::PANEL_NB.max(1);
    let mut panel_v: Vec<f64> = Vec::new();
    let mut panel_t: Vec<f64> = Vec::new();
    let mut panel_z: Vec<f64> = Vec::new();
    let mut hvec: Vec<f64> = vec![0.0; m];
    let mut tdots: Vec<f64> = vec![0.0; nb];
    let mut dots: Vec<f64> = vec![0.0; n.max(1)];
    let mut k0 = 0;
    while k0 < kmax {
        let nbe = nb.min(kmax - k0);
        let vrows = m - k0; // V row r ↔ global row k0 + r
        panel_v.clear();
        panel_v.resize(vrows * nbe, 0.0);
        panel_t.clear();
        panel_t.resize(nbe * nbe, 0.0);
        {
            let rd = r.as_mut_slice();
            for j in 0..nbe {
                let c = k0 + j;
                // Householder vector for column c, rows c..m (same sign
                // convention and skip conditions as the unblocked sweep; a
                // skipped column leaves the zero reflector in V/T column j).
                let mut norm_x = 0.0;
                for i in c..m {
                    norm_x += rd[i * n + c] * rd[i * n + c];
                }
                norm_x = norm_x.sqrt();
                if norm_x == 0.0 {
                    continue;
                }
                let alpha = if rd[c * n + c] >= 0.0 {
                    -norm_x
                } else {
                    norm_x
                };
                let vlen = m - c;
                let v = &mut hvec[..vlen];
                v[0] = rd[c * n + c] - alpha;
                for i in (c + 1)..m {
                    v[i - c] = rd[i * n + c];
                }
                let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
                if vnorm_sq <= f64::MIN_POSITIVE {
                    continue;
                }
                let beta = 2.0 / vnorm_sq;
                let v = &hvec[..vlen];
                for (i, &vi) in v.iter().enumerate() {
                    panel_v[(j + i) * nbe + j] = vi;
                }
                // Apply H_j to the remaining panel columns c..k0+nbe
                // immediately (rows c..m, two-pass); trailing columns wait for
                // the aggregated block update.
                let jhi = k0 + nbe;
                dots[c..jhi].fill(0.0);
                for i in c..m {
                    let vi = v[i - c];
                    let row = &rd[i * n + c..i * n + jhi];
                    for (d, &x) in dots[c..jhi].iter_mut().zip(row.iter()) {
                        *d += vi * x;
                    }
                }
                for i in c..m {
                    let vi = v[i - c];
                    let row = &mut rd[i * n + c..i * n + jhi];
                    for (x, &d) in row.iter_mut().zip(dots[c..jhi].iter()) {
                        *x -= (beta * d) * vi;
                    }
                }
                // T column j: T[0..j, j] = −β_j·T_j·(Vᵀ v_j), T[j][j] = β_j.
                if j > 0 {
                    let w = &mut tdots[..j];
                    w.fill(0.0);
                    for (i, &vi) in v.iter().enumerate() {
                        let vrow = &panel_v[(j + i) * nbe..(j + i) * nbe + j];
                        for (wl, vl) in w.iter_mut().zip(vrow.iter()) {
                            *wl += vl * vi;
                        }
                    }
                    for i2 in 0..j {
                        let mut acc = 0.0;
                        for (l, wl) in w.iter().enumerate().skip(i2) {
                            acc += panel_t[i2 * nbe + l] * wl;
                        }
                        panel_t[i2 * nbe + j] = -beta * acc;
                    }
                }
                panel_t[j * nbe + j] = beta;
            }
            // Aggregated trailing update: the left-applied product is
            // H_nbe···H_1 = (I − V·T·Vᵀ)ᵀ, so C ← C − V·(Tᵀ·(Vᵀ·C)).
            let nc = n - (k0 + nbe);
            if nc > 0 {
                panel_z.clear();
                panel_z.resize(nbe * nc, 0.0);
                for r_i in 0..vrows {
                    let arow = &rd[(k0 + r_i) * n + k0 + nbe..(k0 + r_i + 1) * n];
                    let vrow = &panel_v[r_i * nbe..(r_i + 1) * nbe];
                    for (j, &vl) in vrow.iter().enumerate().take(r_i.min(nbe - 1) + 1) {
                        if vl != 0.0 {
                            let zrow = &mut panel_z[j * nc..(j + 1) * nc];
                            for (zl, &al) in zrow.iter_mut().zip(arow.iter()) {
                                *zl += vl * al;
                            }
                        }
                    }
                }
                // Z ← Tᵀ·Z in place (descending row index only reads
                // originals at indices ≤ the target).
                for idx in (0..nbe).rev() {
                    let tii = panel_t[idx * nbe + idx];
                    {
                        let zrow = &mut panel_z[idx * nc..(idx + 1) * nc];
                        for zl in zrow.iter_mut() {
                            *zl *= tii;
                        }
                    }
                    for l in 0..idx {
                        let tli = panel_t[l * nbe + idx];
                        if tli != 0.0 {
                            let (head, tail) = panel_z.split_at_mut(idx * nc);
                            let src = &head[l * nc..(l + 1) * nc];
                            let dst = &mut tail[..nc];
                            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                                *d += tli * s;
                            }
                        }
                    }
                }
                for r_i in 0..vrows {
                    let vrow = &panel_v[r_i * nbe..(r_i + 1) * nbe];
                    let start = (k0 + r_i) * n + k0 + nbe;
                    for (j, &vl) in vrow.iter().enumerate().take(r_i.min(nbe - 1) + 1) {
                        if vl != 0.0 {
                            let zrow = &panel_z[j * nc..(j + 1) * nc];
                            let arow = &mut rd[start..start + nc];
                            for (al, &zl) in arow.iter_mut().zip(zrow.iter()) {
                                *al -= vl * zl;
                            }
                        }
                    }
                }
            }
        }
        // Q ← Q·(I − V·T·Vᵀ): columns k0..m, all rows.
        {
            panel_z.clear();
            panel_z.resize(m * nbe, 0.0);
            let qv = &mut panel_z;
            let qd = q.as_mut_slice();
            for i in 0..m {
                let qrow = &qd[i * m + k0..(i + 1) * m];
                let qvrow = &mut qv[i * nbe..(i + 1) * nbe];
                for (r_i, &qx) in qrow.iter().enumerate() {
                    if qx != 0.0 {
                        let vrow = &panel_v[r_i * nbe..r_i * nbe + r_i.min(nbe - 1) + 1];
                        for (ql, &vl) in qvrow.iter_mut().zip(vrow.iter()) {
                            *ql += qx * vl;
                        }
                    }
                }
            }
            // QV ← QV·T in place per row (descending target index).
            for i in 0..m {
                let qvrow = &mut qv[i * nbe..(i + 1) * nbe];
                for l in (0..nbe).rev() {
                    let mut acc = 0.0;
                    for mm in 0..=l {
                        acc += qvrow[mm] * panel_t[mm * nbe + l];
                    }
                    qvrow[l] = acc;
                }
            }
            for i in 0..m {
                let mrow = &qv[i * nbe..(i + 1) * nbe];
                let qrow = &mut qd[i * m + k0..(i + 1) * m];
                for (r_i, qx) in qrow.iter_mut().enumerate() {
                    let vrow = &panel_v[r_i * nbe..(r_i + 1) * nbe];
                    let mut acc = 0.0;
                    for (ml, vl) in mrow.iter().zip(vrow.iter()) {
                        acc += ml * vl;
                    }
                    *qx -= acc;
                }
            }
        }
        k0 += nbe;
    }
    finish_qr(q, r)
}

/// One reflector at a time; bit-identical to the historical kernel.
fn factor_full_unblocked(a: &Matrix) -> Qr {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    let mut v = vec![0.0; m];
    let mut dots = vec![0.0; n];
    for k in 0..n.min(m.saturating_sub(1)) {
        let rd = r.as_mut_slice();
        // Householder vector for column k, rows k..m.
        let mut norm_x = 0.0;
        for i in k..m {
            norm_x += rd[i * n + k] * rd[i * n + k];
        }
        norm_x = norm_x.sqrt();
        if norm_x == 0.0 {
            continue;
        }
        let alpha = if rd[k * n + k] >= 0.0 {
            -norm_x
        } else {
            norm_x
        };
        let vlen = m - k;
        let v = &mut v[..vlen];
        v[0] = rd[k * n + k] - alpha;
        for i in (k + 1)..m {
            v[i - k] = rd[i * n + k];
        }
        let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
        if vnorm_sq <= f64::MIN_POSITIVE {
            continue;
        }
        let beta = 2.0 / vnorm_sq;
        // Apply H = I - beta v vᵀ to R (rows k..m) in the row-major two-pass
        // form: all column dot products first, then the rank-1 update.  Per
        // column the additions happen in the same ascending-row order as the
        // column-at-a-time loop.  Columns j < k carry only self-contained
        // round-off below the diagonal (never read again, wiped at the end),
        // so the sweep starts at column k; both changes leave the returned
        // factors bit-identical.
        let jlo = k.min(n);
        dots[jlo..n].fill(0.0);
        for i in k..m {
            let vi = v[i - k];
            let row = &rd[i * n + jlo..(i + 1) * n];
            for (d, &x) in dots[jlo..n].iter_mut().zip(row.iter()) {
                *d += vi * x;
            }
        }
        for i in k..m {
            let vi = v[i - k];
            let row = &mut rd[i * n + jlo..(i + 1) * n];
            for (x, &d) in row.iter_mut().zip(dots[jlo..n].iter()) {
                *x -= (beta * d) * vi;
            }
        }
        // Accumulate into Q: Q = Q * H (apply H on the right, i.e. to columns k..m of Q).
        let qd = q.as_mut_slice();
        for i in 0..m {
            let row = &mut qd[i * m + k..(i + 1) * m];
            let mut dot = 0.0;
            for (&x, &vj) in row.iter().zip(v.iter()) {
                dot += x * vj;
            }
            let s = beta * dot;
            for (x, &vj) in row.iter_mut().zip(v.iter()) {
                *x -= s * vj;
            }
        }
    }
    finish_qr(q, r)
}

/// Shared postlude of both full-QR kernels: wipe the numerically-negligible
/// strictly lower part of `R` and normalize signs so `R` has a non-negative
/// diagonal (making the factorization unique for full-rank input, and QR of I
/// equal to (I, I)).
fn finish_qr(mut q: Matrix, mut r: Matrix) -> Qr {
    let (m, n) = r.shape();
    for i in 1..m {
        for j in 0..i.min(n) {
            r[(i, j)] = 0.0;
        }
    }
    for k in 0..m.min(n) {
        if r[(k, k)] < 0.0 {
            for j in 0..n {
                r[(k, j)] = -r[(k, j)];
            }
            for i in 0..m {
                q[(i, k)] = -q[(i, k)];
            }
        }
    }
    Qr { q, r }
}

/// Computes the *thin* QR factorization: `q` is `m x min(m,n)` with orthonormal
/// columns and `r` is `min(m,n) x n`.
pub fn factor_thin(a: &Matrix) -> Qr {
    let (m, n) = a.shape();
    let k = m.min(n);
    let full = factor_full(a);
    Qr {
        q: full.q.block(0, m, 0, k),
        r: full.r.block(0, k, 0, n),
    }
}

/// Solves the least-squares problem `min ||A x - b||₂` for full-column-rank `A`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when the row counts differ and
/// [`LinalgError::Singular`] when `A` is (numerically) rank deficient.
pub fn least_squares(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let (m, n) = a.shape();
    if b.rows() != m {
        return Err(LinalgError::ShapeMismatch {
            operation: "qr::least_squares",
            left: a.shape(),
            right: b.shape(),
        });
    }
    if m < n {
        return Err(LinalgError::invalid_input(
            "least_squares requires at least as many rows as columns",
        ));
    }
    let qr = factor_thin(a);
    let tol = f64::EPSILON * a.norm_max().max(1.0) * (m.max(n) as f64);
    for i in 0..n {
        if qr.r[(i, i)].abs() <= tol {
            return Err(LinalgError::Singular {
                operation: "qr::least_squares",
            });
        }
    }
    let rhs = qr.q.transpose_matmul(b)?;
    // Back substitution R x = Qᵀ b.
    let nrhs = rhs.cols();
    let mut x = Matrix::zeros(n, nrhs);
    for j in 0..nrhs {
        for i in (0..n).rev() {
            let mut s = rhs[(i, j)];
            for k in (i + 1)..n {
                s -= qr.r[(i, k)] * x[(k, j)];
            }
            x[(i, j)] = s / qr.r[(i, i)];
        }
    }
    Ok(x)
}

/// Orthonormalizes the columns of `a` (modified Gram–Schmidt with
/// reorthogonalization), dropping columns that are numerically dependent.
///
/// Returns a matrix with orthonormal columns spanning the column space of `a`.
pub fn orthonormalize_columns(a: &Matrix, tol: f64) -> Matrix {
    let (m, n) = a.shape();
    let scale = a.norm_max().max(1.0);
    // The accepted basis vectors live as contiguous rows of a flat buffer (the
    // transposed basis); the projection loop then runs over slices with no
    // per-step allocation.  Per element the arithmetic matches the former
    // matrix-at-a-time version (`v ← v − q·(qᵀv)`, two passes) exactly.
    let mut basis: Vec<f64> = Vec::new();
    let mut kept = 0usize;
    let mut v = vec![0.0; m];
    for j in 0..n {
        for (i, value) in v.iter_mut().enumerate() {
            *value = a[(i, j)];
        }
        // Two passes of Gram–Schmidt for numerical robustness.
        for _ in 0..2 {
            for q in basis.chunks_exact(m) {
                let mut coeff = 0.0;
                for (&qi, &vi) in q.iter().zip(v.iter()) {
                    coeff += qi * vi;
                }
                for (x, &qi) in v.iter_mut().zip(q.iter()) {
                    *x -= qi * coeff;
                }
            }
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > tol * scale {
            let inv = 1.0 / norm;
            basis.extend(v.iter().map(|&x| x * inv));
            kept += 1;
        }
    }
    let mut out = Matrix::zeros(m, kept);
    for (k, q) in basis.chunks_exact(m).enumerate() {
        for (i, &x) in q.iter().enumerate() {
            out[(i, k)] = x;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthogonal(q: &Matrix, tol: f64) {
        let qtq = q.transpose_matmul(q).unwrap();
        assert!(
            qtq.approx_eq(&Matrix::identity(q.cols()), tol),
            "QᵀQ deviates from identity by {}",
            (&qtq - &Matrix::identity(q.cols())).norm_max()
        );
    }

    #[test]
    fn full_qr_reconstructs() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            &[7.0, 8.0, 10.0],
            &[1.0, -1.0, 2.0],
        ]);
        let qr = factor_full(&a);
        assert_eq!(qr.q.shape(), (4, 4));
        assert_eq!(qr.r.shape(), (4, 3));
        assert_orthogonal(&qr.q, 1e-12);
        let recon = &qr.q * &qr.r;
        assert!(recon.approx_eq(&a, 1e-12));
    }

    #[test]
    fn thin_qr_reconstructs() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 2.0]]);
        let qr = factor_thin(&a);
        assert_eq!(qr.q.shape(), (3, 2));
        assert_eq!(qr.r.shape(), (2, 2));
        assert_orthogonal(&qr.q, 1e-12);
        assert!((&qr.q * &qr.r).approx_eq(&a, 1e-12));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64) * 0.1);
        let qr = factor_full(&a);
        for i in 0..5 {
            for j in 0..i.min(4) {
                assert!(qr.r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn least_squares_exact_for_square() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Matrix::column(&[5.0, 10.0]);
        let x = least_squares(&a, &b).unwrap();
        assert!((&(&a * &x) - &b).norm_fro() < 1e-12);
    }

    #[test]
    fn least_squares_overdetermined() {
        // Fit y = 2 t + 1 exactly representable.
        let t: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let a = Matrix::from_fn(6, 2, |i, j| if j == 0 { t[i] } else { 1.0 });
        let b = Matrix::from_fn(6, 1, |i, _| 2.0 * t[i] + 1.0);
        let x = least_squares(&a, &b).unwrap();
        assert!((x[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_rank_deficient_errors() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let b = Matrix::column(&[1.0, 2.0, 3.0]);
        assert!(matches!(
            least_squares(&a, &b),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn orthonormalize_drops_dependent_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 0.0, 1.0], &[1.0, 2.0, 1.0]]);
        let q = orthonormalize_columns(&a, 1e-10);
        assert_eq!(q.cols(), 2);
        assert_orthogonal(&q, 1e-12);
    }

    #[test]
    fn orthonormalize_empty_input() {
        let a = Matrix::zeros(3, 0);
        let q = orthonormalize_columns(&a, 1e-10);
        assert_eq!(q.shape(), (3, 0));
        let z = Matrix::zeros(3, 2);
        let qz = orthonormalize_columns(&z, 1e-10);
        assert_eq!(qz.cols(), 0);
    }

    #[test]
    fn qr_of_identity_is_identity() {
        let qr = factor_full(&Matrix::identity(4));
        assert!(qr.q.approx_eq(&Matrix::identity(4), 1e-14));
        assert!(qr.r.approx_eq(&Matrix::identity(4), 1e-14));
    }

    #[test]
    fn blocked_qr_reconstructs_all_shapes() {
        // Square, tall, wide, and sizes straddling a panel boundary.
        for &(m, n) in &[
            (5usize, 5usize),
            (40, 40),
            (50, 33),
            (33, 50),
            (64, 64),
            (70, 3),
        ] {
            let a = Matrix::from_fn(m, n, |i, j| {
                ((i * 13 + j * 7) % 11) as f64 * 0.37 - 1.5 + if i == j { 2.0 } else { 0.0 }
            });
            let qr = factor_full_blocked(&a);
            assert_eq!(qr.q.shape(), (m, m));
            assert_eq!(qr.r.shape(), (m, n));
            assert_orthogonal(&qr.q, 1e-11);
            for i in 1..m {
                for j in 0..i.min(n) {
                    assert_eq!(qr.r[(i, j)], 0.0, "({m},{n}) lower entry ({i},{j})");
                }
            }
            assert!(
                (&qr.q * &qr.r).approx_eq(&a, 1e-10 * a.norm_fro().max(1.0)),
                "({m},{n}) reconstruction failed"
            );
        }
    }

    #[test]
    fn blocked_and_unblocked_qr_agree() {
        // The sign normalization makes the full-rank factorization unique, so
        // the two kernels agree to roundoff (not bitwise).
        for &(m, n) in &[(21usize, 21usize), (45, 30), (30, 45)] {
            let a = Matrix::from_fn(m, n, |i, j| {
                ((i * 3 + j * 11) % 13) as f64 * 0.29 - 1.7 + if i == j { 3.0 } else { 0.0 }
            });
            let blocked = factor_full_blocked(&a);
            let unblocked = factor_full_unblocked(&a);
            assert!(
                blocked
                    .r
                    .approx_eq(&unblocked.r, 1e-10 * a.norm_fro().max(1.0)),
                "({m},{n}) R divergence {}",
                (&blocked.r - &unblocked.r).norm_max()
            );
            assert!(
                blocked.q.approx_eq(&unblocked.q, 1e-10),
                "({m},{n}) Q divergence {}",
                (&blocked.q - &unblocked.q).norm_max()
            );
        }
    }

    #[test]
    fn blocked_qr_handles_rank_deficiency_and_zero_columns() {
        // A zero column inside a panel exercises the zero-reflector path.
        let m = 40;
        let a = Matrix::from_fn(m, 6, |i, j| match j {
            2 => 0.0,
            3 => ((i * 13) % 11) as f64 * 0.37 - 1.5, // duplicate of col 0 pattern
            _ => ((i * 13 + j * 7) % 11) as f64 * 0.37 - 1.5,
        });
        let qr = factor_full_blocked(&a);
        assert_orthogonal(&qr.q, 1e-11);
        assert!((&qr.q * &qr.r).approx_eq(&a, 1e-11 * a.norm_fro().max(1.0)));
    }
}
