//! Eigendecomposition of symmetric matrices via the cyclic Jacobi method.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Eigendecomposition of a symmetric matrix: `A = V diag(values) Vᵀ`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in non-decreasing order.
    pub values: Vec<f64>,
    /// Orthogonal matrix of eigenvectors (columns), ordered like `values`.
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// The input is symmetrized (`(A + Aᵀ)/2`) before the iteration, so slightly
/// non-symmetric input caused by round-off is accepted.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input and
/// [`LinalgError::ConvergenceFailure`] if the sweeps do not converge.
pub fn eigen_symmetric(a: &Matrix) -> Result<SymmetricEigen, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "symmetric::eigen_symmetric",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymmetricEigen {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut m = a.symmetric_part();
    let mut v = Matrix::identity(n);
    let eps = f64::EPSILON;
    let norm = m.norm_fro().max(f64::MIN_POSITIVE);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        // Sum of squares of off-diagonal entries.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= eps * norm * (n as f64) {
            converged = true;
            break;
        }
        for p in 0..n.saturating_sub(1) {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= eps * norm {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (1.0 + theta * theta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Update rows/columns p and q of M (symmetric rotation).
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if !converged {
        return Err(LinalgError::ConvergenceFailure {
            operation: "symmetric::eigen_symmetric",
            iterations: MAX_SWEEPS,
        });
    }
    let mut values: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    values = order.iter().map(|&i| values[i]).collect();
    let vectors = v.select_columns(&order);
    Ok(SymmetricEigen { values, vectors })
}

/// Returns the smallest eigenvalue of a symmetric matrix.
///
/// # Errors
///
/// Propagates the errors of [`eigen_symmetric`].
pub fn min_eigenvalue(a: &Matrix) -> Result<f64, LinalgError> {
    let e = eigen_symmetric(a)?;
    Ok(e.values.first().copied().unwrap_or(0.0))
}

/// Checks positive semidefiniteness of a symmetric matrix by its spectrum.
///
/// The tolerance is interpreted as an absolute allowance for slightly negative
/// eigenvalues (scaled rounding noise).
///
/// # Errors
///
/// Propagates the errors of [`eigen_symmetric`].
pub fn is_positive_semidefinite(a: &Matrix, tol: f64) -> Result<bool, LinalgError> {
    if a.rows() == 0 {
        return Ok(true);
    }
    let min = min_eigenvalue(&a.symmetric_part())?;
    Ok(min >= -tol.abs())
}

/// Projects a symmetric matrix onto the cone of positive semidefinite matrices
/// by clipping negative eigenvalues at zero.
///
/// # Errors
///
/// Propagates the errors of [`eigen_symmetric`].
pub fn project_psd(a: &Matrix) -> Result<Matrix, LinalgError> {
    let e = eigen_symmetric(a)?;
    let n = a.rows();
    let mut out = Matrix::zeros(n, n);
    for (k, &lambda) in e.values.iter().enumerate() {
        if lambda <= 0.0 {
            continue;
        }
        let vk = e.vectors.col(k);
        let outer = &vk * &vk.transpose();
        out = &out + &outer.scale(lambda);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::diag(&[3.0, -1.0, 2.0]);
        let e = eigen_symmetric(&a).unwrap();
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let e = eigen_symmetric(&a).unwrap();
        let d = Matrix::diag(&e.values);
        let recon = &(&e.vectors * &d) * &e.vectors.transpose();
        assert!(recon.approx_eq(&a, 1e-10));
        // Eigenvectors orthogonal.
        let vtv = e.vectors.transpose_matmul(&e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-11));
    }

    #[test]
    fn known_2x2_eigenvalues() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigen_symmetric(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn psd_checks() {
        let psd = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(is_positive_semidefinite(&psd, 1e-12).unwrap());
        let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(!is_positive_semidefinite(&indef, 1e-12).unwrap());
        let zero = Matrix::zeros(3, 3);
        assert!(is_positive_semidefinite(&zero, 1e-12).unwrap());
    }

    #[test]
    fn min_eigenvalue_of_negative_definite() {
        let a = Matrix::diag(&[-5.0, -1.0]);
        assert!((min_eigenvalue(&a).unwrap() + 5.0).abs() < 1e-12);
    }

    #[test]
    fn projection_onto_psd_cone() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -2.0]]);
        let p = project_psd(&a).unwrap();
        assert!(p.approx_eq(&Matrix::diag(&[1.0, 0.0]), 1e-12));
        // Projection of a PSD matrix is itself.
        let b = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(project_psd(&b).unwrap().approx_eq(&b, 1e-10));
    }

    #[test]
    fn handles_empty_matrix() {
        let e = eigen_symmetric(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
        assert!(is_positive_semidefinite(&Matrix::zeros(0, 0), 0.0).unwrap());
    }

    #[test]
    fn moderate_size_spectrum_sums_to_trace() {
        let n = 20;
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 11) % 17) as f64 * 0.2 - 1.6);
        let a = &b + &b.transpose();
        let e = eigen_symmetric(&a).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-8);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            eigen_symmetric(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
