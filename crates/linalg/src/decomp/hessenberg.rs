//! Orthogonal reduction to upper Hessenberg form.
//!
//! Two kernels share the public entry points: the classic one-reflector-at-a-
//! time sweep, and a compact-WY blocked sweep that aggregates `PANEL_NB`
//! Householder reflectors into `I − V·T·Vᵀ` form so the trailing updates run
//! as small-inner-dimension matrix products over contiguous rows instead of
//! `n` separate rank-1 sweeps.  [`reduce_in`] dispatches on the dimension:
//! below [`BLOCKED_MIN_DIM`] the unblocked sweep runs (bit-identical to the
//! historical kernel), at or above it the blocked sweep takes over.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::workspace::ReflectorScratch;

/// Smallest dimension routed to the compact-WY blocked sweep by [`reduce_in`].
/// Below this the panel bookkeeping costs more than the cache locality wins.
pub const BLOCKED_MIN_DIM: usize = 128;

/// Reflectors aggregated per compact-WY panel.
pub const PANEL_NB: usize = 32;

/// Result of the Hessenberg reduction `Qᵀ A Q = H`.
#[derive(Debug, Clone)]
pub struct Hessenberg {
    /// Orthogonal transformation matrix.
    pub q: Matrix,
    /// Upper Hessenberg matrix (zero below the first subdiagonal).
    pub h: Matrix,
}

/// Reduces a square matrix to upper Hessenberg form by Householder similarity
/// transformations.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input.
pub fn reduce(a: &Matrix) -> Result<Hessenberg, LinalgError> {
    let mut h = a.clone();
    let mut q = Matrix::zeros(0, 0);
    crate::workspace::with_thread_pool(|pool| {
        let ws = pool.get(a.rows());
        reduce_in(&mut h, Some(&mut q), &mut ws.refl)
    })?;
    Ok(Hessenberg { q, h })
}

/// In-place Hessenberg reduction: overwrites `h` with its upper Hessenberg
/// form and, when `q` is provided, overwrites `q` with the accumulated
/// orthogonal factor (`q` is reset to the identity first, so any buffer can be
/// passed).  Passing `q = None` skips all Q updates — the Q-free path used by
/// pure eigenvalue computations.
///
/// `scratch` holds every temporary the kernels need (Householder vector,
/// dot-product accumulators, compact-WY panels); the buffers are resized as
/// needed and can be reused across calls for zero steady-state allocation.
///
/// Dimensions at or above [`BLOCKED_MIN_DIM`] run the compact-WY blocked
/// sweep; smaller ones run the unblocked sweep (bit-identical to the
/// historical kernel).
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input.
pub fn reduce_in(
    h: &mut Matrix,
    q: Option<&mut Matrix>,
    scratch: &mut ReflectorScratch,
) -> Result<(), LinalgError> {
    let blocked = h.rows() >= BLOCKED_MIN_DIM;
    reduce_impl(h, q, scratch, blocked)
}

/// In-place Hessenberg reduction forced through the compact-WY blocked sweep
/// regardless of dimension.  Exposed so equivalence tests and benchmarks can
/// exercise the blocked kernel at sizes [`reduce_in`] would route to the
/// unblocked one; production callers should use [`reduce_in`].
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input.
pub fn reduce_blocked_in(
    h: &mut Matrix,
    q: Option<&mut Matrix>,
    scratch: &mut ReflectorScratch,
) -> Result<(), LinalgError> {
    reduce_impl(h, q, scratch, true)
}

fn reduce_impl(
    h: &mut Matrix,
    mut q: Option<&mut Matrix>,
    scratch: &mut ReflectorScratch,
    blocked: bool,
) -> Result<(), LinalgError> {
    if !h.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "hessenberg::reduce",
            shape: h.shape(),
        });
    }
    let n = h.rows();
    if let Some(q) = q.as_deref_mut() {
        q.set_identity(n);
    }
    if n <= 2 {
        return Ok(());
    }
    if blocked {
        blocked_sweep(h, q, scratch, PANEL_NB);
    } else {
        unblocked_sweep(h, q, scratch);
    }
    // Clean the entries that are structurally zero.
    let hd = h.as_mut_slice();
    for i in 2..n {
        for j in 0..(i - 1) {
            hd[i * n + j] = 0.0;
        }
    }
    Ok(())
}

/// One reflector at a time; every update is a rank-1 sweep applied
/// immediately.  Kept bit-identical to the historical kernel.
fn unblocked_sweep(h: &mut Matrix, mut q: Option<&mut Matrix>, scratch: &mut ReflectorScratch) {
    let n = h.rows();
    let hv = &mut scratch.hv;
    let dots = &mut scratch.dots;
    hv.resize(n, 0.0);
    dots.resize(n, 0.0);
    let hd = h.as_mut_slice();
    for k in 0..(n - 2) {
        // Householder vector annihilating H[k+2.., k].
        let mut norm_x = 0.0;
        for i in (k + 1)..n {
            norm_x += hd[i * n + k] * hd[i * n + k];
        }
        norm_x = norm_x.sqrt();
        if norm_x == 0.0 {
            continue;
        }
        let alpha = if hd[(k + 1) * n + k] >= 0.0 {
            -norm_x
        } else {
            norm_x
        };
        let vlen = n - k - 1;
        let v = &mut hv[..vlen];
        v[0] = hd[(k + 1) * n + k] - alpha;
        for i in (k + 2)..n {
            v[i - k - 1] = hd[i * n + k];
        }
        let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
        if vnorm_sq <= f64::MIN_POSITIVE {
            continue;
        }
        let v = &hv[..vlen];
        let beta = 2.0 / vnorm_sq;
        // H ← P H (rows k+1..n).  Columns j < k are structurally zero below
        // the subdiagonal — they are only ever written by this same update and
        // wiped at the end — so the sweep starts at column k instead of 0.
        // Row-major two-pass form: accumulate all column dot products first,
        // then apply the rank-1 update; per column the additions happen in the
        // same ascending-row order as the textbook column-at-a-time loop.
        dots[k..n].fill(0.0);
        for i in (k + 1)..n {
            let vi = v[i - k - 1];
            let row = &hd[i * n + k..(i + 1) * n];
            for (d, &x) in dots[k..n].iter_mut().zip(row.iter()) {
                *d += vi * x;
            }
        }
        for i in (k + 1)..n {
            let vi = v[i - k - 1];
            let row = &mut hd[i * n + k..(i + 1) * n];
            for (x, &d) in row.iter_mut().zip(dots[k..n].iter()) {
                *x -= (beta * d) * vi;
            }
        }
        // H ← H P (columns k+1..n, all rows).
        for i in 0..n {
            let row = &mut hd[i * n + k + 1..(i + 1) * n];
            let mut dot = 0.0;
            for (&x, &vj) in row.iter().zip(v.iter()) {
                dot += x * vj;
            }
            let s = beta * dot;
            for (x, &vj) in row.iter_mut().zip(v.iter()) {
                *x -= s * vj;
            }
        }
        // Q ← Q P (columns k+1..n, all rows).
        if let Some(q) = q.as_deref_mut() {
            let qd = q.as_mut_slice();
            for i in 0..n {
                let row = &mut qd[i * n + k + 1..(i + 1) * n];
                let mut dot = 0.0;
                for (&x, &vj) in row.iter().zip(v.iter()) {
                    dot += x * vj;
                }
                let s = beta * dot;
                for (x, &vj) in row.iter_mut().zip(v.iter()) {
                    *x -= s * vj;
                }
            }
        }
    }
}

/// Compact-WY blocked sweep.
///
/// Reflectors `H_j = I − β_j v_j v_jᵀ` for a panel of `nb` columns are
/// accumulated as `H_1 ⋯ H_nb = I − V·T·Vᵀ` (`V` unit-lower-trapezoidal by
/// support, `T` upper triangular with `T[j][j] = β_j`).  During the panel only
/// the panel columns themselves are written: column `c = k0 + j` is formed on
/// demand as `Q_jᵀ (A Q_j) e_c = x − V·Tᵀ·Vᵀ·(x − U·T·(Vᵀe_c))` from the
/// *original* trailing matrix and `U = A·V`, which is valid because the
/// similarity's right half only ever reads original columns to the right of
/// `c` (all of which are still untouched when reflector `j` is formed).  At
/// panel end the trailing matrix gets the aggregated two-sided update
/// `A ← (I − V·Tᵀ·Vᵀ)·A·(I − V·T·Vᵀ)` and `Q ← Q·(I − V·T·Vᵀ)` as three
/// block products whose inner loops run over contiguous `nb`-length rows.
///
/// A column whose below-subdiagonal part is already (numerically) zero gets
/// the zero reflector `v_j = 0, β_j = 0` — column `j` of `V`, `T` and `U`
/// stays zero and the aggregated product is unaffected, mirroring the
/// unblocked `continue`.
fn blocked_sweep(
    h: &mut Matrix,
    mut q: Option<&mut Matrix>,
    scratch: &mut ReflectorScratch,
    nb: usize,
) {
    let n = h.rows();
    let nb = nb.max(1);
    scratch.col.clear();
    scratch.col.resize(n, 0.0);
    scratch.hv.clear();
    scratch.hv.resize(n, 0.0);
    scratch.dots.clear();
    scratch.dots.resize(nb, 0.0);
    let mut k0 = 0;
    while k0 + 2 < n {
        let nbe = nb.min(n - 2 - k0);
        let vrows = n - k0 - 1; // V row r ↔ global row k0 + 1 + r
        scratch.panel_v.clear();
        scratch.panel_v.resize(vrows * nbe, 0.0);
        scratch.panel_t.clear();
        scratch.panel_t.resize(nbe * nbe, 0.0);
        scratch.panel_u.clear();
        scratch.panel_u.resize(n * nbe, 0.0);

        for j in 0..nbe {
            let c = k0 + j;
            let x = &mut scratch.col[..n];
            {
                let hd = h.as_slice();
                for (i, xi) in x.iter_mut().enumerate() {
                    *xi = hd[i * n + c];
                }
            }
            if j > 0 {
                let v = &scratch.panel_v;
                let t = &scratch.panel_t;
                let u = &scratch.panel_u;
                let tmp = &mut scratch.dots[..j];
                // tmp = T_j · (Vᵀ e_c); row c of V is V row j−1.
                let vrow_c = &v[(j - 1) * nbe..(j - 1) * nbe + j];
                for i in 0..j {
                    let mut acc = 0.0;
                    for l in i..j {
                        acc += t[i * nbe + l] * vrow_c[l];
                    }
                    tmp[i] = acc;
                }
                // Right half: x ← x − U·tmp (all rows).
                for (i, xi) in x.iter_mut().enumerate() {
                    let urow = &u[i * nbe..i * nbe + j];
                    let mut acc = 0.0;
                    for (ul, tl) in urow.iter().zip(tmp.iter()) {
                        acc += ul * tl;
                    }
                    *xi -= acc;
                }
                // Left half: x ← x − V·(Tᵀ·(Vᵀ x)) over rows k0+1..n.
                tmp.fill(0.0);
                for r in 0..vrows {
                    let xv = x[k0 + 1 + r];
                    let vrow = &v[r * nbe..r * nbe + j];
                    for (tl, vl) in tmp.iter_mut().zip(vrow.iter()) {
                        *tl += vl * xv;
                    }
                }
                // tmp ← Tᵀ·tmp in place (descending index: entry `idx` only
                // reads originals at indices ≤ idx).
                for idx in (0..j).rev() {
                    let mut acc = 0.0;
                    for (l, tl) in tmp.iter().enumerate().take(idx + 1) {
                        acc += t[l * nbe + idx] * tl;
                    }
                    tmp[idx] = acc;
                }
                for r in 0..vrows {
                    let vrow = &v[r * nbe..r * nbe + j];
                    let mut acc = 0.0;
                    for (vl, tl) in vrow.iter().zip(tmp.iter()) {
                        acc += vl * tl;
                    }
                    x[k0 + 1 + r] -= acc;
                }
            }
            // Householder vector annihilating x[c+2..]; zero reflector when
            // the tail is already negligible.
            let mut norm_x = 0.0;
            for &xi in &x[(c + 1)..n] {
                norm_x += xi * xi;
            }
            norm_x = norm_x.sqrt();
            let mut beta = 0.0;
            let mut subdiag = x[c + 1];
            let vlen = vrows - j; // v_j support: V rows j..vrows
            if norm_x != 0.0 {
                let alpha = if x[c + 1] >= 0.0 { -norm_x } else { norm_x };
                let vj = &mut scratch.hv[..vlen];
                vj[0] = x[c + 1] - alpha;
                vj[1..].copy_from_slice(&x[(c + 2)..n]);
                let vnorm_sq: f64 = vj.iter().map(|y| y * y).sum();
                if vnorm_sq > f64::MIN_POSITIVE {
                    beta = 2.0 / vnorm_sq;
                    subdiag = alpha;
                    for (r, &vi) in vj.iter().enumerate() {
                        scratch.panel_v[(j + r) * nbe + j] = vi;
                    }
                }
            }
            // Write the finalized column back; rows below the subdiagonal are
            // structurally zero from here on.
            {
                let hd = h.as_mut_slice();
                for (i, &xi) in x.iter().enumerate().take(c + 1) {
                    hd[i * n + c] = xi;
                }
                hd[(c + 1) * n + c] = subdiag;
                for i in (c + 2)..n {
                    hd[i * n + c] = 0.0;
                }
            }
            // T column j: T[0..j, j] = −β_j · T_j · (Vᵀ v_j), T[j][j] = β_j.
            if beta != 0.0 {
                if j > 0 {
                    let w = &mut scratch.dots[..j];
                    w.fill(0.0);
                    {
                        let v = &scratch.panel_v;
                        let vj = &scratch.hv[..vlen];
                        for (r, &vi) in vj.iter().enumerate() {
                            let vrow = &v[(j + r) * nbe..(j + r) * nbe + j];
                            for (wl, vl) in w.iter_mut().zip(vrow.iter()) {
                                *wl += vl * vi;
                            }
                        }
                    }
                    let t = &mut scratch.panel_t;
                    for i in 0..j {
                        let mut acc = 0.0;
                        for (l, wl) in w.iter().enumerate().skip(i) {
                            acc += t[i * nbe + l] * wl;
                        }
                        t[i * nbe + j] = -beta * acc;
                    }
                }
                scratch.panel_t[j * nbe + j] = beta;
                // U column j = A[:, c+1..n]·v_j against the original trailing
                // columns (panel columns > c are not yet written back).
                let hd = h.as_slice();
                let vj = &scratch.hv[..vlen];
                let u = &mut scratch.panel_u;
                for i in 0..n {
                    let arow = &hd[i * n + (c + 1)..(i + 1) * n];
                    let mut acc = 0.0;
                    for (al, vl) in arow.iter().zip(vj.iter()) {
                        acc += al * vl;
                    }
                    u[i * nbe + j] = acc;
                }
            }
        }

        // Aggregated right update on the not-yet-reduced columns:
        // A[:, k0+nbe..] ← A[:, k0+nbe..] − (U·T)·Vᵀ.  U ← U·T happens in
        // place per row (descending target index only reads originals).
        {
            let t = &scratch.panel_t;
            let u = &mut scratch.panel_u;
            for i in 0..n {
                let urow = &mut u[i * nbe..(i + 1) * nbe];
                for l in (0..nbe).rev() {
                    let mut acc = 0.0;
                    for m in 0..=l {
                        acc += urow[m] * t[m * nbe + l];
                    }
                    urow[l] = acc;
                }
            }
            let v = &scratch.panel_v;
            let hd = h.as_mut_slice();
            for i in 0..n {
                let (wrow, hrow) = {
                    let urow = &u[i * nbe..(i + 1) * nbe];
                    (urow, i * n)
                };
                for r in (nbe - 1)..vrows {
                    let vrow = &v[r * nbe..(r + 1) * nbe];
                    let mut acc = 0.0;
                    for (wl, vl) in wrow.iter().zip(vrow.iter()) {
                        acc += wl * vl;
                    }
                    hd[hrow + k0 + 1 + r] -= acc;
                }
            }
        }
        // Aggregated left update: A[k0+1.., k0+nbe..] ← same − V·(Tᵀ·(Vᵀ·A)).
        let ncols_t = n - (k0 + nbe);
        {
            scratch.panel_w.clear();
            scratch.panel_w.resize(nbe * ncols_t, 0.0);
            let z = &mut scratch.panel_w;
            let v = &scratch.panel_v;
            let t = &scratch.panel_t;
            let hd = h.as_mut_slice();
            for r in 0..vrows {
                let arow = &hd[(k0 + 1 + r) * n + k0 + nbe..(k0 + 2 + r) * n];
                let vrow = &v[r * nbe..(r + 1) * nbe];
                for (j, &vl) in vrow.iter().enumerate().take(r.min(nbe - 1) + 1) {
                    if vl != 0.0 {
                        let zrow = &mut z[j * ncols_t..(j + 1) * ncols_t];
                        for (zl, &al) in zrow.iter_mut().zip(arow.iter()) {
                            *zl += vl * al;
                        }
                    }
                }
            }
            // Z ← Tᵀ·Z in place (descending row index).
            for idx in (0..nbe).rev() {
                let tii = t[idx * nbe + idx];
                {
                    let zrow = &mut z[idx * ncols_t..(idx + 1) * ncols_t];
                    for zl in zrow.iter_mut() {
                        *zl *= tii;
                    }
                }
                for l in 0..idx {
                    let tli = t[l * nbe + idx];
                    if tli != 0.0 {
                        let (zl_part, zi_part) = z.split_at_mut(idx * ncols_t);
                        let src = &zl_part[l * ncols_t..(l + 1) * ncols_t];
                        let dst = &mut zi_part[..ncols_t];
                        for (d, &s) in dst.iter_mut().zip(src.iter()) {
                            *d += tli * s;
                        }
                    }
                }
            }
            for r in 0..vrows {
                let vrow = &v[r * nbe..(r + 1) * nbe];
                let row_start = (k0 + 1 + r) * n + k0 + nbe;
                for (j, &vl) in vrow.iter().enumerate().take(r.min(nbe - 1) + 1) {
                    if vl != 0.0 {
                        let zrow = &z[j * ncols_t..(j + 1) * ncols_t];
                        let arow = &mut hd[row_start..row_start + ncols_t];
                        for (al, &zl) in arow.iter_mut().zip(zrow.iter()) {
                            *al -= vl * zl;
                        }
                    }
                }
            }
        }
        // Q ← Q·(I − V·T·Vᵀ): columns k0+1..n, all rows.
        if let Some(q) = q.as_deref_mut() {
            scratch.panel_w.clear();
            scratch.panel_w.resize(n * nbe, 0.0);
            let qv = &mut scratch.panel_w;
            let v = &scratch.panel_v;
            let t = &scratch.panel_t;
            let qd = q.as_mut_slice();
            for i in 0..n {
                let qrow = &qd[i * n + k0 + 1..(i + 1) * n];
                let qvrow = &mut qv[i * nbe..(i + 1) * nbe];
                for (r, &qx) in qrow.iter().enumerate() {
                    if qx != 0.0 {
                        let vrow = &v[r * nbe..r * nbe + r.min(nbe - 1) + 1];
                        for (ql, &vl) in qvrow.iter_mut().zip(vrow.iter()) {
                            *ql += qx * vl;
                        }
                    }
                }
            }
            // QV ← QV·T in place per row.
            for i in 0..n {
                let qvrow = &mut qv[i * nbe..(i + 1) * nbe];
                for l in (0..nbe).rev() {
                    let mut acc = 0.0;
                    for m in 0..=l {
                        acc += qvrow[m] * t[m * nbe + l];
                    }
                    qvrow[l] = acc;
                }
            }
            for i in 0..n {
                let mrow = &qv[i * nbe..(i + 1) * nbe];
                let qrow = &mut qd[i * n + k0 + 1..(i + 1) * n];
                for (r, qx) in qrow.iter_mut().enumerate() {
                    let vrow = &v[r * nbe..(r + 1) * nbe];
                    let mut acc = 0.0;
                    for (ml, vl) in mrow.iter().zip(vrow.iter()) {
                        acc += ml * vl;
                    }
                    *qx -= acc;
                }
            }
        }
        k0 += nbe;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            ((i * 13 + j * 7) % 11) as f64 * 0.37 - 1.5 + if i == j { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn similarity_is_preserved() {
        let a = sample(7);
        let hess = reduce(&a).unwrap();
        // Qᵀ A Q = H  ⇔  A = Q H Qᵀ
        let recon = &(&hess.q * &hess.h) * &hess.q.transpose();
        assert!(recon.approx_eq(&a, 1e-11));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = sample(6);
        let hess = reduce(&a).unwrap();
        let qtq = hess.q.transpose_matmul(&hess.q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(6), 1e-12));
    }

    #[test]
    fn result_is_hessenberg() {
        let a = sample(8);
        let hess = reduce(&a).unwrap();
        for i in 2..8 {
            for j in 0..(i - 1) {
                assert_eq!(hess.h[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn small_matrices_pass_through() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let hess = reduce(&a).unwrap();
        assert!(hess.h.approx_eq(&a, 1e-15));
        assert!(hess.q.approx_eq(&Matrix::identity(2), 1e-15));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            reduce(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            reduce_in(&mut Matrix::zeros(2, 3), None, &mut ReflectorScratch::new()),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn q_free_path_produces_identical_h() {
        let a = sample(9);
        let full = reduce(&a).unwrap();
        let mut h = a.clone();
        let mut scratch = ReflectorScratch::new();
        reduce_in(&mut h, None, &mut scratch).unwrap();
        // Skipping the Q accumulation must not change H in any bit.
        assert_eq!(h.as_slice(), full.h.as_slice());
    }

    #[test]
    fn reduce_in_reuses_buffers_across_sizes() {
        let mut scratch = ReflectorScratch::new();
        for &n in &[8usize, 5, 8] {
            let a = sample(n);
            let mut h = a.clone();
            let mut q = Matrix::zeros(0, 0);
            reduce_in(&mut h, Some(&mut q), &mut scratch).unwrap();
            let reference = reduce(&a).unwrap();
            assert_eq!(h.as_slice(), reference.h.as_slice());
            assert_eq!(q.as_slice(), reference.q.as_slice());
        }
    }

    #[test]
    fn blocked_path_is_a_valid_similarity_reduction() {
        let mut scratch = ReflectorScratch::new();
        for &n in &[3usize, 5, 17, 33, 40, 67, 95] {
            let a = sample(n);
            let mut h = a.clone();
            let mut q = Matrix::zeros(0, 0);
            reduce_blocked_in(&mut h, Some(&mut q), &mut scratch).unwrap();
            // H is Hessenberg.
            for i in 2..n {
                for j in 0..(i - 1) {
                    assert_eq!(h[(i, j)], 0.0, "n={n} below-subdiagonal ({i},{j})");
                }
            }
            // Q orthogonal, Q H Qᵀ = A.
            let qtq = q.transpose_matmul(&q).unwrap();
            assert!(qtq.approx_eq(&Matrix::identity(n), 1e-11), "n={n} Q drift");
            let recon = &(&q * &h) * &q.transpose();
            assert!(
                recon.approx_eq(&a, 1e-9 * a.norm_fro().max(1.0)),
                "n={n} similarity residual {}",
                (&recon - &a).norm_max()
            );
        }
    }

    #[test]
    fn blocked_q_free_matches_blocked_full_h() {
        let a = sample(41);
        let mut scratch = ReflectorScratch::new();
        let mut h_full = a.clone();
        let mut q = Matrix::zeros(0, 0);
        reduce_blocked_in(&mut h_full, Some(&mut q), &mut scratch).unwrap();
        let mut h_free = a.clone();
        reduce_blocked_in(&mut h_free, None, &mut scratch).unwrap();
        assert_eq!(h_free.as_slice(), h_full.as_slice());
    }

    #[test]
    fn blocked_handles_zero_reflector_columns() {
        // Upper-triangular input: every column's below-subdiagonal tail is
        // zero, so every reflector is the zero reflector and the sweep must be
        // an exact no-op (matching the unblocked `continue`).
        let n = 37;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i > j {
                0.0
            } else {
                ((i * 5 + j * 3) % 7) as f64 - 2.0
            }
        });
        let mut h = a.clone();
        let mut q = Matrix::zeros(0, 0);
        reduce_blocked_in(&mut h, Some(&mut q), &mut ReflectorScratch::new()).unwrap();
        assert_eq!(h.as_slice(), a.as_slice());
        assert_eq!(q.as_slice(), Matrix::identity(n).as_slice());
    }

    #[test]
    fn blocked_and_unblocked_agree_on_hessenberg_form() {
        // The two kernels apply the same reflectors in different groupings, so
        // H agrees to roundoff (not bitwise).  The n=34 case zeroes a block of
        // early-column tails so panels mix zero and nonzero reflectors.
        for &n in &[11usize, 29, 34, 50] {
            let mut a = sample(n);
            if n == 34 {
                for j in 0..n / 2 {
                    for i in (j + 1)..n {
                        a[(i, j)] = 0.0;
                    }
                }
            }
            let mut scratch = ReflectorScratch::new();
            let mut h_b = a.clone();
            reduce_blocked_in(&mut h_b, None, &mut scratch).unwrap();
            let mut h_u = a.clone();
            unblocked_sweep(&mut h_u, None, &mut scratch);
            let hd = h_u.as_mut_slice();
            for i in 2..n {
                for j in 0..(i - 1) {
                    hd[i * n + j] = 0.0;
                }
            }
            assert!(
                h_b.approx_eq(&h_u, 1e-9 * a.norm_fro().max(1.0)),
                "n={n} blocked/unblocked divergence {}",
                (&h_b - &h_u).norm_max()
            );
        }
    }
}
