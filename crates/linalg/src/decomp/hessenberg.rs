//! Orthogonal reduction to upper Hessenberg form.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Result of the Hessenberg reduction `Qᵀ A Q = H`.
#[derive(Debug, Clone)]
pub struct Hessenberg {
    /// Orthogonal transformation matrix.
    pub q: Matrix,
    /// Upper Hessenberg matrix (zero below the first subdiagonal).
    pub h: Matrix,
}

/// Reduces a square matrix to upper Hessenberg form by Householder similarity
/// transformations.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input.
pub fn reduce(a: &Matrix) -> Result<Hessenberg, LinalgError> {
    let mut h = a.clone();
    let mut q = Matrix::zeros(0, 0);
    crate::workspace::with_thread_pool(|pool| {
        let ws = pool.get(a.rows());
        reduce_in(&mut h, Some(&mut q), &mut ws.hv, &mut ws.dots)
    })?;
    Ok(Hessenberg { q, h })
}

/// In-place Hessenberg reduction: overwrites `h` with its upper Hessenberg
/// form and, when `q` is provided, overwrites `q` with the accumulated
/// orthogonal factor (`q` is reset to the identity first, so any buffer can be
/// passed).  Passing `q = None` skips all Q updates — the Q-free path used by
/// pure eigenvalue computations.
///
/// `hv` and `dots` are scratch vectors (Householder vector and per-column dot
/// products); they are resized as needed and can be reused across calls for
/// zero steady-state allocation.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input.
pub fn reduce_in(
    h: &mut Matrix,
    mut q: Option<&mut Matrix>,
    hv: &mut Vec<f64>,
    dots: &mut Vec<f64>,
) -> Result<(), LinalgError> {
    if !h.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "hessenberg::reduce",
            shape: h.shape(),
        });
    }
    let n = h.rows();
    if let Some(q) = q.as_deref_mut() {
        q.set_identity(n);
    }
    if n <= 2 {
        return Ok(());
    }
    hv.resize(n, 0.0);
    dots.resize(n, 0.0);
    let hd = h.as_mut_slice();
    for k in 0..(n - 2) {
        // Householder vector annihilating H[k+2.., k].
        let mut norm_x = 0.0;
        for i in (k + 1)..n {
            norm_x += hd[i * n + k] * hd[i * n + k];
        }
        norm_x = norm_x.sqrt();
        if norm_x == 0.0 {
            continue;
        }
        let alpha = if hd[(k + 1) * n + k] >= 0.0 {
            -norm_x
        } else {
            norm_x
        };
        let vlen = n - k - 1;
        let v = &mut hv[..vlen];
        v[0] = hd[(k + 1) * n + k] - alpha;
        for i in (k + 2)..n {
            v[i - k - 1] = hd[i * n + k];
        }
        let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
        if vnorm_sq <= f64::MIN_POSITIVE {
            continue;
        }
        let v = &hv[..vlen];
        let beta = 2.0 / vnorm_sq;
        // H ← P H (rows k+1..n).  Columns j < k are structurally zero below
        // the subdiagonal — they are only ever written by this same update and
        // wiped at the end — so the sweep starts at column k instead of 0.
        // Row-major two-pass form: accumulate all column dot products first,
        // then apply the rank-1 update; per column the additions happen in the
        // same ascending-row order as the textbook column-at-a-time loop.
        dots[k..n].fill(0.0);
        for i in (k + 1)..n {
            let vi = v[i - k - 1];
            let row = &hd[i * n + k..(i + 1) * n];
            for (d, &x) in dots[k..n].iter_mut().zip(row.iter()) {
                *d += vi * x;
            }
        }
        for i in (k + 1)..n {
            let vi = v[i - k - 1];
            let row = &mut hd[i * n + k..(i + 1) * n];
            for (x, &d) in row.iter_mut().zip(dots[k..n].iter()) {
                *x -= (beta * d) * vi;
            }
        }
        // H ← H P (columns k+1..n, all rows).
        for i in 0..n {
            let row = &mut hd[i * n + k + 1..(i + 1) * n];
            let mut dot = 0.0;
            for (&x, &vj) in row.iter().zip(v.iter()) {
                dot += x * vj;
            }
            let s = beta * dot;
            for (x, &vj) in row.iter_mut().zip(v.iter()) {
                *x -= s * vj;
            }
        }
        // Q ← Q P (columns k+1..n, all rows).
        if let Some(q) = q.as_deref_mut() {
            let qd = q.as_mut_slice();
            for i in 0..n {
                let row = &mut qd[i * n + k + 1..(i + 1) * n];
                let mut dot = 0.0;
                for (&x, &vj) in row.iter().zip(v.iter()) {
                    dot += x * vj;
                }
                let s = beta * dot;
                for (x, &vj) in row.iter_mut().zip(v.iter()) {
                    *x -= s * vj;
                }
            }
        }
    }
    // Clean the entries that are structurally zero.
    for i in 2..n {
        for j in 0..(i - 1) {
            hd[i * n + j] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            ((i * 13 + j * 7) % 11) as f64 * 0.37 - 1.5 + if i == j { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn similarity_is_preserved() {
        let a = sample(7);
        let hess = reduce(&a).unwrap();
        // Qᵀ A Q = H  ⇔  A = Q H Qᵀ
        let recon = &(&hess.q * &hess.h) * &hess.q.transpose();
        assert!(recon.approx_eq(&a, 1e-11));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = sample(6);
        let hess = reduce(&a).unwrap();
        let qtq = hess.q.transpose_matmul(&hess.q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(6), 1e-12));
    }

    #[test]
    fn result_is_hessenberg() {
        let a = sample(8);
        let hess = reduce(&a).unwrap();
        for i in 2..8 {
            for j in 0..(i - 1) {
                assert_eq!(hess.h[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn small_matrices_pass_through() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let hess = reduce(&a).unwrap();
        assert!(hess.h.approx_eq(&a, 1e-15));
        assert!(hess.q.approx_eq(&Matrix::identity(2), 1e-15));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            reduce(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            reduce_in(
                &mut Matrix::zeros(2, 3),
                None,
                &mut Vec::new(),
                &mut Vec::new()
            ),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn q_free_path_produces_identical_h() {
        let a = sample(9);
        let full = reduce(&a).unwrap();
        let mut h = a.clone();
        let mut hv = Vec::new();
        let mut dots = Vec::new();
        reduce_in(&mut h, None, &mut hv, &mut dots).unwrap();
        // Skipping the Q accumulation must not change H in any bit.
        assert_eq!(h.as_slice(), full.h.as_slice());
    }

    #[test]
    fn reduce_in_reuses_buffers_across_sizes() {
        let mut hv = Vec::new();
        let mut dots = Vec::new();
        for &n in &[8usize, 5, 8] {
            let a = sample(n);
            let mut h = a.clone();
            let mut q = Matrix::zeros(0, 0);
            reduce_in(&mut h, Some(&mut q), &mut hv, &mut dots).unwrap();
            let reference = reduce(&a).unwrap();
            assert_eq!(h.as_slice(), reference.h.as_slice());
            assert_eq!(q.as_slice(), reference.q.as_slice());
        }
    }
}
