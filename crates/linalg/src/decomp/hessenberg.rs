//! Orthogonal reduction to upper Hessenberg form.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Result of the Hessenberg reduction `Qᵀ A Q = H`.
#[derive(Debug, Clone)]
pub struct Hessenberg {
    /// Orthogonal transformation matrix.
    pub q: Matrix,
    /// Upper Hessenberg matrix (zero below the first subdiagonal).
    pub h: Matrix,
}

/// Reduces a square matrix to upper Hessenberg form by Householder similarity
/// transformations.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input.
pub fn reduce(a: &Matrix) -> Result<Hessenberg, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "hessenberg::reduce",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    let mut h = a.clone();
    let mut q = Matrix::identity(n);
    if n <= 2 {
        return Ok(Hessenberg { q, h });
    }
    for k in 0..(n - 2) {
        // Householder vector annihilating H[k+2.., k].
        let mut norm_x = 0.0;
        for i in (k + 1)..n {
            norm_x += h[(i, k)] * h[(i, k)];
        }
        norm_x = norm_x.sqrt();
        if norm_x == 0.0 {
            continue;
        }
        let alpha = if h[(k + 1, k)] >= 0.0 {
            -norm_x
        } else {
            norm_x
        };
        let mut v = vec![0.0; n - k - 1];
        v[0] = h[(k + 1, k)] - alpha;
        for i in (k + 2)..n {
            v[i - k - 1] = h[(i, k)];
        }
        let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
        if vnorm_sq <= f64::MIN_POSITIVE {
            continue;
        }
        let beta = 2.0 / vnorm_sq;
        // H ← P H (rows k+1..n, all columns)
        for j in 0..n {
            let mut dot = 0.0;
            for i in (k + 1)..n {
                dot += v[i - k - 1] * h[(i, j)];
            }
            let s = beta * dot;
            for i in (k + 1)..n {
                h[(i, j)] -= s * v[i - k - 1];
            }
        }
        // H ← H P (columns k+1..n, all rows)
        for i in 0..n {
            let mut dot = 0.0;
            for j in (k + 1)..n {
                dot += h[(i, j)] * v[j - k - 1];
            }
            let s = beta * dot;
            for j in (k + 1)..n {
                h[(i, j)] -= s * v[j - k - 1];
            }
        }
        // Q ← Q P (columns k+1..n, all rows)
        for i in 0..n {
            let mut dot = 0.0;
            for j in (k + 1)..n {
                dot += q[(i, j)] * v[j - k - 1];
            }
            let s = beta * dot;
            for j in (k + 1)..n {
                q[(i, j)] -= s * v[j - k - 1];
            }
        }
    }
    // Clean the entries that are structurally zero.
    for i in 2..n {
        for j in 0..(i - 1) {
            h[(i, j)] = 0.0;
        }
    }
    Ok(Hessenberg { q, h })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            ((i * 13 + j * 7) % 11) as f64 * 0.37 - 1.5 + if i == j { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn similarity_is_preserved() {
        let a = sample(7);
        let hess = reduce(&a).unwrap();
        // Qᵀ A Q = H  ⇔  A = Q H Qᵀ
        let recon = &(&hess.q * &hess.h) * &hess.q.transpose();
        assert!(recon.approx_eq(&a, 1e-11));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = sample(6);
        let hess = reduce(&a).unwrap();
        let qtq = hess.q.transpose_matmul(&hess.q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(6), 1e-12));
    }

    #[test]
    fn result_is_hessenberg() {
        let a = sample(8);
        let hess = reduce(&a).unwrap();
        for i in 2..8 {
            for j in 0..(i - 1) {
                assert_eq!(hess.h[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn small_matrices_pass_through() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let hess = reduce(&a).unwrap();
        assert!(hess.h.approx_eq(&a, 1e-15));
        assert!(hess.q.approx_eq(&Matrix::identity(2), 1e-15));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            reduce(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
