//! Matrix factorizations.
//!
//! Each submodule provides one decomposition together with the solver-style
//! helpers built on top of it:
//!
//! * [`lu`] — LU with partial pivoting, linear solves, determinant, inverse.
//! * [`qr`] — Householder QR (thin and full), least squares.
//! * [`cholesky`] — Cholesky factorization of symmetric positive definite matrices.
//! * [`hessenberg`] — orthogonal reduction to upper Hessenberg form.
//! * [`schur`] — real Schur form via Francis double-shift QR iteration.
//! * [`svd`] — singular value decomposition via one-sided Jacobi.
//! * [`symmetric`] — symmetric eigendecomposition via cyclic Jacobi.

pub mod cholesky;
pub mod hessenberg;
pub mod lu;
pub mod qr;
pub mod schur;
pub mod svd;
pub mod symmetric;
