//! Singular value decomposition via the one-sided Jacobi method.
//!
//! The one-sided Jacobi algorithm is simple, numerically robust and accurate for
//! the moderate dimensions this workspace handles (a few hundred); it avoids the
//! deflation bookkeeping of bidiagonal QR at the cost of a small constant factor.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Singular value decomposition `A = U Σ Vᵀ`.
///
/// * `u` is `m x k` with `k = min(m, n)`; columns associated with nonzero
///   singular values are orthonormal, columns associated with (numerically)
///   zero singular values are zero vectors.
/// * `s` holds the singular values in non-increasing order.
/// * `v` is `n x n` orthogonal when `m >= n`, and `n x k` (orthonormal columns)
///   when `m < n`; in both cases `A ≈ U diag(s) Vᵀ` on the leading `k` columns.
///
/// For subspace computations use the helpers in [`crate::subspace`], which
/// handle the rank decisions and orientation consistently.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`m x min(m, n)`).
    pub u: Matrix,
    /// Singular values, non-increasing.
    pub s: Vec<f64>,
    /// Right singular vectors.
    pub v: Matrix,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// Computes the singular value decomposition of `a`.
///
/// # Errors
///
/// Returns [`LinalgError::ConvergenceFailure`] if the Jacobi sweeps fail to
/// converge (does not happen for finite input in practice).
pub fn svd(a: &Matrix) -> Result<Svd, LinalgError> {
    jacobi_svd(a, true)
}

/// Computes only the left factor and the singular values of `a`, skipping the
/// accumulation of `V` when possible.
///
/// The one-sided Jacobi rotations applied to the working matrix never read
/// `V`, so `u` and `s` are bit-for-bit identical to [`svd`]'s — at roughly
/// half the rotation work for square input.  This is the path behind the
/// rank / range-basis decisions in [`crate::subspace`], which never look at
/// `V`.
///
/// # Errors
///
/// Same as [`svd`].
pub fn svd_u_s(a: &Matrix) -> Result<(Matrix, Vec<f64>), LinalgError> {
    let d = jacobi_svd(a, false)?;
    Ok((d.u, d.s))
}

fn jacobi_svd(a: &Matrix, want_v: bool) -> Result<Svd, LinalgError> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, m.min(n)),
            s: vec![],
            v: Matrix::zeros(n, if m >= n { n } else { m.min(n) }),
        });
    }
    if m < n {
        // Work on the transpose and swap the factors: Aᵀ = U Σ Vᵀ  ⇒  A = V Σ Uᵀ.
        // The wide case needs the transposed problem's V (it becomes this U),
        // so the full decomposition is always requested.
        let t = jacobi_svd(&a.transpose(), true)?;
        return Ok(Svd {
            u: t.v.block(0, m, 0, t.s.len().min(m)),
            s: t.s,
            v: t.u,
        });
    }

    // One-sided Jacobi on the columns of W (m x n, m >= n).  The working
    // matrices are stored TRANSPOSED (`wt` is n x m: row j of `wt` is column j
    // of W) so that every column dot product and rotation runs over two
    // contiguous rows instead of two stride-n walks; the arithmetic per
    // element — and therefore the result, bit for bit — is unchanged.
    let mut wt = a.transpose();
    let mut vt = if want_v {
        Matrix::identity(n)
    } else {
        Matrix::zeros(0, 0)
    };
    let eps = f64::EPSILON;
    // Columns whose norm has dropped below this are treated as exactly zero;
    // without the floor, pairs of negligible columns keep rotating forever.
    let negligible = (eps * a.norm_fro().max(f64::MIN_POSITIVE)).powi(2);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut rotated = false;
        for p in 0..n.saturating_sub(1) {
            for q in (p + 1)..n {
                let wd = wt.as_mut_slice();
                // Rows p and q of the transposed buffer are columns p, q of W.
                let (head, tail) = wd.split_at_mut(q * m);
                let row_p = &mut head[p * m..(p + 1) * m];
                let row_q = &mut tail[..m];
                // Column inner products.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for (&wp, &wq) in row_p.iter().zip(row_q.iter()) {
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if app <= negligible || aqq <= negligible {
                    continue;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                rotated = true;
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Rotate columns p and q of W and V.
                for (xp, xq) in row_p.iter_mut().zip(row_q.iter_mut()) {
                    let wp = *xp;
                    let wq = *xq;
                    *xp = c * wp - s * wq;
                    *xq = s * wp + c * wq;
                }
                if want_v {
                    let vd = vt.as_mut_slice();
                    let (vhead, vtail) = vd.split_at_mut(q * n);
                    let vrow_p = &mut vhead[p * n..(p + 1) * n];
                    let vrow_q = &mut vtail[..n];
                    for (xp, xq) in vrow_p.iter_mut().zip(vrow_q.iter_mut()) {
                        let vp = *xp;
                        let vq = *xq;
                        *xp = c * vp - s * vq;
                        *xq = s * vp + c * vq;
                    }
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::ConvergenceFailure {
            operation: "svd::svd",
            iterations: MAX_SWEEPS,
        });
    }

    // Extract singular values.
    let mut sigma: Vec<f64> = Vec::with_capacity(n);
    for j in 0..n {
        let row = &wt.as_slice()[j * m..(j + 1) * m];
        let mut norm = 0.0;
        for &x in row {
            norm += x * x;
        }
        sigma.push(norm.sqrt());
    }

    // Sort in non-increasing order of singular values and assemble the sorted
    // factors directly from the transposed buffers.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| sigma[j].total_cmp(&sigma[i]));
    let s_sorted: Vec<f64> = order.iter().map(|&i| sigma[i]).collect();
    let mut u_sorted = Matrix::zeros(m, n);
    for (jj, &src) in order.iter().enumerate() {
        let norm = sigma[src];
        if norm > 0.0 {
            let row = &wt.as_slice()[src * m..(src + 1) * m];
            for (i, &x) in row.iter().enumerate() {
                u_sorted[(i, jj)] = x / norm;
            }
        }
    }
    let v_sorted = if want_v {
        let mut v_sorted = Matrix::zeros(n, n);
        for (jj, &src) in order.iter().enumerate() {
            let row = &vt.as_slice()[src * n..(src + 1) * n];
            for (i, &x) in row.iter().enumerate() {
                v_sorted[(i, jj)] = x;
            }
        }
        v_sorted
    } else {
        Matrix::zeros(n, 0)
    };

    Ok(Svd {
        u: u_sorted,
        s: s_sorted,
        v: v_sorted,
    })
}

/// Numerical rank of a non-increasing singular-value sequence with the same
/// decision rule as [`Svd::rank`].
pub fn rank_from_singular_values(s: &[f64], rel_tol: f64) -> usize {
    if s.is_empty() {
        return 0;
    }
    let smax = s[0];
    if smax == 0.0 {
        return 0;
    }
    let threshold = smax * rel_tol.max(f64::EPSILON);
    s.iter().filter(|&&x| x > threshold).count()
}

impl Svd {
    /// Numerical rank using the tolerance `tol * max(s)` (or an absolute floor
    /// scaled by machine epsilon if all singular values are tiny).
    pub fn rank(&self, rel_tol: f64) -> usize {
        rank_from_singular_values(&self.s, rel_tol)
    }

    /// Reconstructs `U diag(s) Vᵀ` (for testing / diagnostics).
    pub fn reconstruct(&self) -> Matrix {
        let k = self.s.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.rows() {
                us[(i, j)] *= self.s[j];
            }
        }
        let vk = self.v.block(0, self.v.rows(), 0, k);
        &us * &vk.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_svd(a: &Matrix, tol: f64) -> Svd {
        let d = svd(a).unwrap();
        let recon = d.reconstruct();
        assert!(
            recon.approx_eq(a, tol),
            "reconstruction error {}",
            (&recon - a).norm_max()
        );
        // Non-increasing singular values.
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-14);
        }
        d
    }

    #[test]
    fn svd_of_tall_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[3.0, 0.0], &[0.0, -1.0]]);
        let d = check_svd(&a, 1e-12);
        assert_eq!(d.s.len(), 2);
        assert!((d.s[0] - 10.0_f64.sqrt()).abs() < 1e-12);
        assert!((d.s[1] - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn svd_of_wide_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let d = check_svd(&a, 1e-11);
        assert_eq!(d.s.len(), 2);
        assert_eq!(d.u.shape(), (2, 2));
    }

    #[test]
    fn rank_detection() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[0.0, 0.0, 1.0]]);
        let d = svd(&a).unwrap();
        assert_eq!(d.rank(1e-10), 2);
        let z = svd(&Matrix::zeros(3, 3)).unwrap();
        assert_eq!(z.rank(1e-10), 0);
    }

    #[test]
    fn orthogonality_of_factors() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 7 + j * 5) % 9) as f64 - 4.0);
        let d = check_svd(&a, 1e-11);
        let r = d.rank(1e-12);
        // The leading r columns of U and V are orthonormal.
        let ur = d.u.block(0, 6, 0, r);
        let vr = d.v.block(0, 4, 0, r);
        assert!(ur
            .transpose_matmul(&ur)
            .unwrap()
            .approx_eq(&Matrix::identity(r), 1e-11));
        assert!(vr
            .transpose_matmul(&vr)
            .unwrap()
            .approx_eq(&Matrix::identity(r), 1e-11));
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram_matrix() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 0.0], &[0.0, 1.0]]);
        let d = check_svd(&a, 1e-13);
        assert!((d.s[0] - 2.0).abs() < 1e-13);
        assert!((d.s[1] - 1.0).abs() < 1e-13);
    }

    #[test]
    fn identity_has_unit_singular_values() {
        let d = check_svd(&Matrix::identity(5), 1e-13);
        assert!(d.s.iter().all(|&x| (x - 1.0).abs() < 1e-13));
    }

    #[test]
    fn empty_matrix_is_handled() {
        let d = svd(&Matrix::zeros(0, 3)).unwrap();
        assert!(d.s.is_empty());
        let d2 = svd(&Matrix::zeros(3, 0)).unwrap();
        assert!(d2.s.is_empty());
    }

    #[test]
    fn moderate_size_accuracy() {
        let n = 25;
        let a = Matrix::from_fn(n, n, |i, j| ((i + 2 * j) % 13) as f64 * 0.3 - 1.7);
        check_svd(&a, 1e-9);
    }

    #[test]
    fn u_only_path_is_bitwise_identical() {
        for &(m, n) in &[(6usize, 4usize), (12, 12), (3, 7), (9, 1)] {
            let a = Matrix::from_fn(m, n, |i, j| {
                ((i * 11 + j * 5 + m + n) % 17) as f64 * 0.4 - 3.0
            });
            let full = svd(&a).unwrap();
            let (u, s) = svd_u_s(&a).unwrap();
            assert_eq!(u.as_slice(), full.u.as_slice(), "U differs at {m}x{n}");
            assert_eq!(s, full.s, "singular values differ at {m}x{n}");
        }
    }
}
