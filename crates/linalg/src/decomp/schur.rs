//! Real Schur decomposition via the Francis implicit double-shift QR iteration.

use crate::decomp::hessenberg;
use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Real Schur decomposition `Qᵀ A Q = T` with `Q` orthogonal and `T`
/// quasi-upper-triangular (1x1 and 2x2 blocks on the diagonal; 2x2 blocks carry
/// complex-conjugate eigenvalue pairs or, occasionally, unsplit real pairs).
#[derive(Debug, Clone)]
pub struct RealSchur {
    /// Orthogonal transformation matrix.
    pub q: Matrix,
    /// Quasi-upper-triangular Schur form.
    pub t: Matrix,
}

/// Computes the real Schur decomposition of a square matrix.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input and
/// [`LinalgError::ConvergenceFailure`] if the QR iteration does not converge
/// within `60 * n` iterations (extremely unusual for real data thanks to the
/// exceptional-shift strategy).
pub fn real_schur(a: &Matrix) -> Result<RealSchur, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "schur::real_schur",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(RealSchur {
            q: Matrix::zeros(0, 0),
            t: Matrix::zeros(0, 0),
        });
    }
    if n == 1 {
        return Ok(RealSchur {
            q: Matrix::identity(1),
            t: a.clone(),
        });
    }
    let hess = hessenberg::reduce(a)?;
    let mut h = hess.h;
    let mut q = hess.q;
    let norm = h.norm_fro().max(f64::MIN_POSITIVE);
    let eps = f64::EPSILON;

    let mut hi = n - 1; // active block ends at row/column `hi` (inclusive)
    let mut total_iter = 0usize;
    let max_iter = 60 * n;
    let mut block_iter = 0usize;

    'outer: loop {
        // Deflate negligible subdiagonal entries.
        for i in 1..=hi {
            let s = h[(i - 1, i - 1)].abs() + h[(i, i)].abs();
            let s = if s == 0.0 { norm } else { s };
            if h[(i, i - 1)].abs() <= eps * s {
                h[(i, i - 1)] = 0.0;
            }
        }
        // Find the active block [lo, hi].
        let mut lo = hi;
        while lo > 0 && h[(lo, lo - 1)] != 0.0 {
            lo -= 1;
        }
        if lo == hi {
            // 1x1 block converged.
            if hi == 0 {
                break 'outer;
            }
            hi -= 1;
            block_iter = 0;
            continue;
        }
        if lo + 1 == hi {
            // 2x2 block converged (complex pair or unsplit real pair).
            if hi <= 1 {
                break 'outer;
            }
            hi -= 2;
            block_iter = 0;
            continue;
        }

        total_iter += 1;
        block_iter += 1;
        if total_iter > max_iter {
            return Err(LinalgError::ConvergenceFailure {
                operation: "schur::real_schur",
                iterations: total_iter,
            });
        }

        // Double-shift from the trailing 2x2 block; exceptional shift
        // occasionally to break potential cycles.
        let (s, t) = if block_iter.is_multiple_of(11) {
            let ex = h[(hi, hi - 1)].abs() + h[(hi - 1, hi - 2)].abs();
            (1.5 * ex, 0.5625 * ex * ex)
        } else {
            let a11 = h[(hi - 1, hi - 1)];
            let a12 = h[(hi - 1, hi)];
            let a21 = h[(hi, hi - 1)];
            let a22 = h[(hi, hi)];
            (a11 + a22, a11 * a22 - a12 * a21)
        };

        // First column of (H - aI)(H - bI) restricted to the active block.
        let h11 = h[(lo, lo)];
        let h12 = h[(lo, lo + 1)];
        let h21 = h[(lo + 1, lo)];
        let h22 = h[(lo + 1, lo + 1)];
        let h32 = h[(lo + 2, lo + 1)];
        let mut x = h11 * h11 + h12 * h21 - s * h11 + t;
        let mut y = h21 * (h11 + h22 - s);
        let mut z = h21 * h32;

        // Bulge chasing.
        for k in lo..=(hi - 2) {
            let (v, beta) = householder3(x, y, z);
            if beta != 0.0 {
                let col_start = if k > lo { k - 1 } else { lo };
                // Apply P from the left to rows k..k+2.
                for j in col_start..n {
                    let dot = v[0] * h[(k, j)] + v[1] * h[(k + 1, j)] + v[2] * h[(k + 2, j)];
                    let sfac = beta * dot;
                    h[(k, j)] -= sfac * v[0];
                    h[(k + 1, j)] -= sfac * v[1];
                    h[(k + 2, j)] -= sfac * v[2];
                }
                // Apply P from the right to columns k..k+2.
                let row_end = (k + 3).min(hi);
                for i in 0..=row_end {
                    let dot = v[0] * h[(i, k)] + v[1] * h[(i, k + 1)] + v[2] * h[(i, k + 2)];
                    let sfac = beta * dot;
                    h[(i, k)] -= sfac * v[0];
                    h[(i, k + 1)] -= sfac * v[1];
                    h[(i, k + 2)] -= sfac * v[2];
                }
                // Accumulate into Q.
                for i in 0..n {
                    let dot = v[0] * q[(i, k)] + v[1] * q[(i, k + 1)] + v[2] * q[(i, k + 2)];
                    let sfac = beta * dot;
                    q[(i, k)] -= sfac * v[0];
                    q[(i, k + 1)] -= sfac * v[1];
                    q[(i, k + 2)] -= sfac * v[2];
                }
            }
            x = h[(k + 1, k)];
            y = h[(k + 2, k)];
            if k + 3 <= hi {
                z = h[(k + 3, k)];
            } else {
                z = 0.0;
            }
        }

        // Final 2x1 reflector.
        let (v, beta) = householder2(x, y);
        if beta != 0.0 {
            let k = hi - 1;
            for j in (hi - 2)..n {
                let dot = v[0] * h[(k, j)] + v[1] * h[(k + 1, j)];
                let sfac = beta * dot;
                h[(k, j)] -= sfac * v[0];
                h[(k + 1, j)] -= sfac * v[1];
            }
            for i in 0..=hi {
                let dot = v[0] * h[(i, k)] + v[1] * h[(i, k + 1)];
                let sfac = beta * dot;
                h[(i, k)] -= sfac * v[0];
                h[(i, k + 1)] -= sfac * v[1];
            }
            for i in 0..n {
                let dot = v[0] * q[(i, k)] + v[1] * q[(i, k + 1)];
                let sfac = beta * dot;
                q[(i, k)] -= sfac * v[0];
                q[(i, k + 1)] -= sfac * v[1];
            }
        }
    }

    // Enforce the quasi-triangular sparsity pattern.
    for i in 1..n {
        let s = h[(i - 1, i - 1)].abs() + h[(i, i)].abs();
        let s = if s == 0.0 { norm } else { s };
        if h[(i, i - 1)].abs() <= eps * s {
            h[(i, i - 1)] = 0.0;
        }
    }
    for i in 2..n {
        for j in 0..(i - 1) {
            h[(i, j)] = 0.0;
        }
    }
    Ok(RealSchur { q, t: h })
}

/// Householder reflector for a 3-vector: returns `(v, beta)` such that
/// `(I - beta v vᵀ) [x, y, z]ᵀ = [±‖·‖, 0, 0]ᵀ`.
fn householder3(x: f64, y: f64, z: f64) -> ([f64; 3], f64) {
    let norm = (x * x + y * y + z * z).sqrt();
    if norm == 0.0 {
        return ([0.0; 3], 0.0);
    }
    let alpha = if x >= 0.0 { -norm } else { norm };
    let v0 = x - alpha;
    let v = [v0, y, z];
    let vnorm_sq = v0 * v0 + y * y + z * z;
    if vnorm_sq <= f64::MIN_POSITIVE {
        return ([0.0; 3], 0.0);
    }
    (v, 2.0 / vnorm_sq)
}

/// Householder reflector for a 2-vector.
fn householder2(x: f64, y: f64) -> ([f64; 2], f64) {
    let norm = (x * x + y * y).sqrt();
    if norm == 0.0 {
        return ([0.0; 2], 0.0);
    }
    let alpha = if x >= 0.0 { -norm } else { norm };
    let v0 = x - alpha;
    let v = [v0, y];
    let vnorm_sq = v0 * v0 + y * y;
    if vnorm_sq <= f64::MIN_POSITIVE {
        return ([0.0; 2], 0.0);
    }
    (v, 2.0 / vnorm_sq)
}

impl RealSchur {
    /// Returns the list of diagonal block boundaries of the quasi-triangular
    /// factor: each entry is `(start, size)` with `size ∈ {1, 2}`.
    pub fn diagonal_blocks(&self) -> Vec<(usize, usize)> {
        let n = self.t.rows();
        let mut blocks = Vec::new();
        let mut i = 0;
        while i < n {
            if i + 1 < n && self.t[(i + 1, i)] != 0.0 {
                blocks.push((i, 2));
                i += 2;
            } else {
                blocks.push((i, 1));
                i += 1;
            }
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen;

    fn check_schur(a: &Matrix, tol: f64) -> RealSchur {
        let s = real_schur(a).unwrap();
        let n = a.rows();
        // Orthogonality
        let qtq = s.q.transpose_matmul(&s.q).unwrap();
        assert!(
            qtq.approx_eq(&Matrix::identity(n), tol),
            "Q not orthogonal: {}",
            (&qtq - &Matrix::identity(n)).norm_max()
        );
        // Similarity
        let recon = &(&s.q * &s.t) * &s.q.transpose();
        assert!(
            recon.approx_eq(a, tol * a.norm_fro().max(1.0)),
            "similarity violated by {}",
            (&recon - a).norm_max()
        );
        // Quasi-triangular: zero below first subdiagonal
        for i in 2..n {
            for j in 0..(i - 1) {
                assert_eq!(s.t[(i, j)], 0.0);
            }
        }
        s
    }

    #[test]
    fn schur_of_symmetric_matrix_is_diagonalish() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let s = check_schur(&a, 1e-10);
        let evals = eigen::eigenvalues_from_schur(&s.t);
        let mut re: Vec<f64> = evals.iter().map(|z| z.re).collect();
        re.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Known eigenvalues of this tridiagonal matrix
        let sum: f64 = re.iter().sum();
        assert!((sum - 9.0).abs() < 1e-9);
        assert!(evals.iter().all(|z| z.im.abs() < 1e-9));
    }

    #[test]
    fn schur_of_rotationlike_matrix_has_complex_pair() {
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let s = check_schur(&a, 1e-12);
        let evals = eigen::eigenvalues_from_schur(&s.t);
        assert_eq!(evals.len(), 2);
        assert!(evals.iter().all(|z| z.re.abs() < 1e-12));
        assert!(evals.iter().any(|z| (z.im - 1.0).abs() < 1e-12));
        assert!(evals.iter().any(|z| (z.im + 1.0).abs() < 1e-12));
    }

    #[test]
    fn schur_of_defective_jordan_block() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[0.0, 2.0, 1.0], &[0.0, 0.0, 2.0]]);
        let s = check_schur(&a, 1e-9);
        let evals = eigen::eigenvalues_from_schur(&s.t);
        for z in evals {
            assert!((z.re - 2.0).abs() < 1e-5, "eigenvalue {z:?}");
            assert!(z.im.abs() < 1e-5);
        }
    }

    #[test]
    fn schur_of_moderate_random_matrix() {
        let n = 20;
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17 + 3) % 23) as f64 / 23.0 - 0.5;
            v + if i == j { 0.3 } else { 0.0 }
        });
        let s = check_schur(&a, 1e-8);
        // Eigenvalue sum equals trace.
        let evals = eigen::eigenvalues_from_schur(&s.t);
        let sum_re: f64 = evals.iter().map(|z| z.re).sum();
        let sum_im: f64 = evals.iter().map(|z| z.im).sum();
        assert!((sum_re - a.trace()).abs() < 1e-7);
        assert!(sum_im.abs() < 1e-7);
    }

    #[test]
    fn diagonal_blocks_partition_dimension() {
        let a = Matrix::from_rows(&[
            &[0.0, -2.0, 0.1, 0.0],
            &[2.0, 0.0, 0.0, 0.3],
            &[0.0, 0.0, -1.0, 0.5],
            &[0.0, 0.0, 0.0, -3.0],
        ]);
        let s = real_schur(&a).unwrap();
        let blocks = s.diagonal_blocks();
        let total: usize = blocks.iter().map(|&(_, sz)| sz).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn trivial_sizes() {
        let s0 = real_schur(&Matrix::zeros(0, 0)).unwrap();
        assert_eq!(s0.t.shape(), (0, 0));
        let s1 = real_schur(&Matrix::filled(1, 1, 5.0)).unwrap();
        assert_eq!(s1.t[(0, 0)], 5.0);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            real_schur(&Matrix::zeros(3, 2)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
