//! Real Schur decomposition via the Francis implicit double-shift QR iteration.

use crate::decomp::hessenberg;
use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Real Schur decomposition `Qᵀ A Q = T` with `Q` orthogonal and `T`
/// quasi-upper-triangular (1x1 and 2x2 blocks on the diagonal; 2x2 blocks carry
/// complex-conjugate eigenvalue pairs or, occasionally, unsplit real pairs).
#[derive(Debug, Clone)]
pub struct RealSchur {
    /// Orthogonal transformation matrix.
    pub q: Matrix,
    /// Quasi-upper-triangular Schur form.
    pub t: Matrix,
}

/// Computes the real Schur decomposition of a square matrix.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input and
/// [`LinalgError::ConvergenceFailure`] if the QR iteration does not converge
/// within `60 * n` iterations (extremely unusual for real data thanks to the
/// exceptional-shift strategy).
pub fn real_schur(a: &Matrix) -> Result<RealSchur, LinalgError> {
    let mut t = a.clone();
    let mut q = Matrix::zeros(0, 0);
    crate::workspace::with_thread_pool(|pool| {
        let ws = pool.get(a.rows());
        real_schur_in(&mut t, Some(&mut q), &mut ws.refl)
    })?;
    Ok(RealSchur { q, t })
}

/// Computes only the quasi-triangular factor `T` of the real Schur
/// decomposition, skipping every update of the orthogonal factor `Q` (the
/// Hessenberg-Q accumulation and all Q rotations in the Francis sweeps).
///
/// The `T` iterates never read `Q`, so this returns exactly the `T` of
/// [`real_schur`] — bit for bit — at roughly two thirds of the flops.  This is
/// the path behind [`crate::eigen::eigenvalues`], which only needs the
/// diagonal blocks.
///
/// # Errors
///
/// Same as [`real_schur`].
pub fn real_schur_t_only(a: &Matrix) -> Result<Matrix, LinalgError> {
    let mut t = a.clone();
    crate::workspace::with_thread_pool(|pool| {
        let ws = pool.get(a.rows());
        real_schur_in(&mut t, None, &mut ws.refl)
    })?;
    Ok(t)
}

/// In-place real Schur iteration: overwrites `h` with the quasi-triangular
/// factor and, when `q` is provided, overwrites `q` with the accumulated
/// orthogonal factor (any buffer can be passed; it is reset to the identity).
/// `scratch` holds the reusable reflector buffers (see
/// [`hessenberg::reduce_in`]).
///
/// # Errors
///
/// Same as [`real_schur`].
pub fn real_schur_in(
    h: &mut Matrix,
    mut q: Option<&mut Matrix>,
    scratch: &mut crate::workspace::ReflectorScratch,
) -> Result<(), LinalgError> {
    if !h.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "schur::real_schur",
            shape: h.shape(),
        });
    }
    let n = h.rows();
    if n == 0 {
        if let Some(q) = q {
            q.resize_uninit(0, 0);
        }
        return Ok(());
    }
    if n == 1 {
        if let Some(q) = q {
            q.set_identity(1);
        }
        return Ok(());
    }
    hessenberg::reduce_in(h, q.as_deref_mut(), scratch)?;
    let norm = h.norm_fro().max(f64::MIN_POSITIVE);
    let eps = f64::EPSILON;

    let mut hi = n - 1; // active block ends at row/column `hi` (inclusive)
    let mut total_iter = 0usize;
    let max_iter = 60 * n;
    let mut block_iter = 0usize;

    'outer: loop {
        // Deflate negligible subdiagonal entries.
        for i in 1..=hi {
            let s = h[(i - 1, i - 1)].abs() + h[(i, i)].abs();
            let s = if s == 0.0 { norm } else { s };
            if h[(i, i - 1)].abs() <= eps * s {
                h[(i, i - 1)] = 0.0;
            }
        }
        // Find the active block [lo, hi].
        let mut lo = hi;
        while lo > 0 && h[(lo, lo - 1)] != 0.0 {
            lo -= 1;
        }
        if lo == hi {
            // 1x1 block converged.
            if hi == 0 {
                break 'outer;
            }
            hi -= 1;
            block_iter = 0;
            continue;
        }
        if lo + 1 == hi {
            // 2x2 block converged (complex pair or unsplit real pair).
            if hi <= 1 {
                break 'outer;
            }
            hi -= 2;
            block_iter = 0;
            continue;
        }

        total_iter += 1;
        block_iter += 1;
        if total_iter > max_iter {
            return Err(LinalgError::ConvergenceFailure {
                operation: "schur::real_schur",
                iterations: total_iter,
            });
        }

        // Double-shift from the trailing 2x2 block; exceptional shift
        // occasionally to break potential cycles.
        let (s, t) = if block_iter.is_multiple_of(11) {
            let ex = h[(hi, hi - 1)].abs() + h[(hi - 1, hi - 2)].abs();
            (1.5 * ex, 0.5625 * ex * ex)
        } else {
            let a11 = h[(hi - 1, hi - 1)];
            let a12 = h[(hi - 1, hi)];
            let a21 = h[(hi, hi - 1)];
            let a22 = h[(hi, hi)];
            (a11 + a22, a11 * a22 - a12 * a21)
        };

        // First column of (H - aI)(H - bI) restricted to the active block.
        let h11 = h[(lo, lo)];
        let h12 = h[(lo, lo + 1)];
        let h21 = h[(lo + 1, lo)];
        let h22 = h[(lo + 1, lo + 1)];
        let h32 = h[(lo + 2, lo + 1)];
        let mut x = h11 * h11 + h12 * h21 - s * h11 + t;
        let mut y = h21 * (h11 + h22 - s);
        let mut z = h21 * h32;

        // Bulge chasing.
        for k in lo..=(hi - 2) {
            let (v, beta) = householder3(x, y, z);
            if beta != 0.0 {
                let col_start = if k > lo { k - 1 } else { lo };
                let hd = h.as_mut_slice();
                // Apply P from the left to rows k..k+2.
                {
                    let (head, tail) = hd.split_at_mut((k + 1) * n);
                    let r0 = &mut head[k * n..];
                    let (r1, r2) = tail.split_at_mut(n);
                    for j in col_start..n {
                        let dot = v[0] * r0[j] + v[1] * r1[j] + v[2] * r2[j];
                        let sfac = beta * dot;
                        r0[j] -= sfac * v[0];
                        r1[j] -= sfac * v[1];
                        r2[j] -= sfac * v[2];
                    }
                }
                // Apply P from the right to columns k..k+2.
                let row_end = (k + 3).min(hi);
                for row in hd.chunks_exact_mut(n).take(row_end + 1) {
                    let dot = v[0] * row[k] + v[1] * row[k + 1] + v[2] * row[k + 2];
                    let sfac = beta * dot;
                    row[k] -= sfac * v[0];
                    row[k + 1] -= sfac * v[1];
                    row[k + 2] -= sfac * v[2];
                }
                // Accumulate into Q.
                if let Some(q) = q.as_deref_mut() {
                    for row in q.as_mut_slice().chunks_exact_mut(n) {
                        let dot = v[0] * row[k] + v[1] * row[k + 1] + v[2] * row[k + 2];
                        let sfac = beta * dot;
                        row[k] -= sfac * v[0];
                        row[k + 1] -= sfac * v[1];
                        row[k + 2] -= sfac * v[2];
                    }
                }
            }
            x = h[(k + 1, k)];
            y = h[(k + 2, k)];
            if k + 3 <= hi {
                z = h[(k + 3, k)];
            } else {
                z = 0.0;
            }
        }

        // Final 2x1 reflector.
        let (v, beta) = householder2(x, y);
        if beta != 0.0 {
            let k = hi - 1;
            let hd = h.as_mut_slice();
            {
                let (head, tail) = hd.split_at_mut((k + 1) * n);
                let r0 = &mut head[k * n..];
                let r1 = &mut tail[..n];
                for j in (hi - 2)..n {
                    let dot = v[0] * r0[j] + v[1] * r1[j];
                    let sfac = beta * dot;
                    r0[j] -= sfac * v[0];
                    r1[j] -= sfac * v[1];
                }
            }
            for row in hd.chunks_exact_mut(n).take(hi + 1) {
                let dot = v[0] * row[k] + v[1] * row[k + 1];
                let sfac = beta * dot;
                row[k] -= sfac * v[0];
                row[k + 1] -= sfac * v[1];
            }
            if let Some(q) = q.as_deref_mut() {
                for row in q.as_mut_slice().chunks_exact_mut(n) {
                    let dot = v[0] * row[k] + v[1] * row[k + 1];
                    let sfac = beta * dot;
                    row[k] -= sfac * v[0];
                    row[k + 1] -= sfac * v[1];
                }
            }
        }
    }

    // Enforce the quasi-triangular sparsity pattern.
    for i in 1..n {
        let s = h[(i - 1, i - 1)].abs() + h[(i, i)].abs();
        let s = if s == 0.0 { norm } else { s };
        if h[(i, i - 1)].abs() <= eps * s {
            h[(i, i - 1)] = 0.0;
        }
    }
    {
        let hd = h.as_mut_slice();
        for i in 2..n {
            for j in 0..(i - 1) {
                hd[i * n + j] = 0.0;
            }
        }
    }
    Ok(())
}

/// Householder reflector for a 3-vector: returns `(v, beta)` such that
/// `(I - beta v vᵀ) [x, y, z]ᵀ = [±‖·‖, 0, 0]ᵀ`.
fn householder3(x: f64, y: f64, z: f64) -> ([f64; 3], f64) {
    let norm = (x * x + y * y + z * z).sqrt();
    if norm == 0.0 {
        return ([0.0; 3], 0.0);
    }
    let alpha = if x >= 0.0 { -norm } else { norm };
    let v0 = x - alpha;
    let v = [v0, y, z];
    let vnorm_sq = v0 * v0 + y * y + z * z;
    if vnorm_sq <= f64::MIN_POSITIVE {
        return ([0.0; 3], 0.0);
    }
    (v, 2.0 / vnorm_sq)
}

/// Householder reflector for a 2-vector.
fn householder2(x: f64, y: f64) -> ([f64; 2], f64) {
    let norm = (x * x + y * y).sqrt();
    if norm == 0.0 {
        return ([0.0; 2], 0.0);
    }
    let alpha = if x >= 0.0 { -norm } else { norm };
    let v0 = x - alpha;
    let v = [v0, y];
    let vnorm_sq = v0 * v0 + y * y;
    if vnorm_sq <= f64::MIN_POSITIVE {
        return ([0.0; 2], 0.0);
    }
    (v, 2.0 / vnorm_sq)
}

impl RealSchur {
    /// Returns the list of diagonal block boundaries of the quasi-triangular
    /// factor: each entry is `(start, size)` with `size ∈ {1, 2}`.
    pub fn diagonal_blocks(&self) -> Vec<(usize, usize)> {
        let n = self.t.rows();
        let mut blocks = Vec::new();
        let mut i = 0;
        while i < n {
            if i + 1 < n && self.t[(i + 1, i)] != 0.0 {
                blocks.push((i, 2));
                i += 2;
            } else {
                blocks.push((i, 1));
                i += 1;
            }
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen;

    fn check_schur(a: &Matrix, tol: f64) -> RealSchur {
        let s = real_schur(a).unwrap();
        let n = a.rows();
        // Orthogonality
        let qtq = s.q.transpose_matmul(&s.q).unwrap();
        assert!(
            qtq.approx_eq(&Matrix::identity(n), tol),
            "Q not orthogonal: {}",
            (&qtq - &Matrix::identity(n)).norm_max()
        );
        // Similarity
        let recon = &(&s.q * &s.t) * &s.q.transpose();
        assert!(
            recon.approx_eq(a, tol * a.norm_fro().max(1.0)),
            "similarity violated by {}",
            (&recon - a).norm_max()
        );
        // Quasi-triangular: zero below first subdiagonal
        for i in 2..n {
            for j in 0..(i - 1) {
                assert_eq!(s.t[(i, j)], 0.0);
            }
        }
        s
    }

    #[test]
    fn schur_of_symmetric_matrix_is_diagonalish() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]);
        let s = check_schur(&a, 1e-10);
        let evals = eigen::eigenvalues_from_schur(&s.t);
        let mut re: Vec<f64> = evals.iter().map(|z| z.re).collect();
        re.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Known eigenvalues of this tridiagonal matrix
        let sum: f64 = re.iter().sum();
        assert!((sum - 9.0).abs() < 1e-9);
        assert!(evals.iter().all(|z| z.im.abs() < 1e-9));
    }

    #[test]
    fn schur_of_rotationlike_matrix_has_complex_pair() {
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let s = check_schur(&a, 1e-12);
        let evals = eigen::eigenvalues_from_schur(&s.t);
        assert_eq!(evals.len(), 2);
        assert!(evals.iter().all(|z| z.re.abs() < 1e-12));
        assert!(evals.iter().any(|z| (z.im - 1.0).abs() < 1e-12));
        assert!(evals.iter().any(|z| (z.im + 1.0).abs() < 1e-12));
    }

    #[test]
    fn schur_of_defective_jordan_block() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[0.0, 2.0, 1.0], &[0.0, 0.0, 2.0]]);
        let s = check_schur(&a, 1e-9);
        let evals = eigen::eigenvalues_from_schur(&s.t);
        for z in evals {
            assert!((z.re - 2.0).abs() < 1e-5, "eigenvalue {z:?}");
            assert!(z.im.abs() < 1e-5);
        }
    }

    #[test]
    fn schur_of_moderate_random_matrix() {
        let n = 20;
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = ((i * 31 + j * 17 + 3) % 23) as f64 / 23.0 - 0.5;
            v + if i == j { 0.3 } else { 0.0 }
        });
        let s = check_schur(&a, 1e-8);
        // Eigenvalue sum equals trace.
        let evals = eigen::eigenvalues_from_schur(&s.t);
        let sum_re: f64 = evals.iter().map(|z| z.re).sum();
        let sum_im: f64 = evals.iter().map(|z| z.im).sum();
        assert!((sum_re - a.trace()).abs() < 1e-7);
        assert!(sum_im.abs() < 1e-7);
    }

    #[test]
    fn diagonal_blocks_partition_dimension() {
        let a = Matrix::from_rows(&[
            &[0.0, -2.0, 0.1, 0.0],
            &[2.0, 0.0, 0.0, 0.3],
            &[0.0, 0.0, -1.0, 0.5],
            &[0.0, 0.0, 0.0, -3.0],
        ]);
        let s = real_schur(&a).unwrap();
        let blocks = s.diagonal_blocks();
        let total: usize = blocks.iter().map(|&(_, sz)| sz).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn trivial_sizes() {
        let s0 = real_schur(&Matrix::zeros(0, 0)).unwrap();
        assert_eq!(s0.t.shape(), (0, 0));
        let s1 = real_schur(&Matrix::filled(1, 1, 5.0)).unwrap();
        assert_eq!(s1.t[(0, 0)], 5.0);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            real_schur(&Matrix::zeros(3, 2)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
