//! Cholesky factorization of symmetric positive definite matrices.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for rectangular input and
/// [`LinalgError::NotPositiveDefinite`] when a non-positive pivot is
/// encountered.
pub fn factor(a: &Matrix) -> Result<Matrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            operation: "cholesky::factor",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite);
        }
        l[(j, j)] = d.sqrt();
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / l[(j, j)];
        }
    }
    Ok(l)
}

/// Returns `true` when the symmetric matrix `a` is positive definite.
pub fn is_positive_definite(a: &Matrix) -> bool {
    factor(a).is_ok()
}

/// Returns `true` when the symmetric matrix `a` is positive semidefinite to
/// within the absolute tolerance `tol` (checked by shifting the diagonal).
pub fn is_positive_semidefinite(a: &Matrix, tol: f64) -> bool {
    if !a.is_square() {
        return false;
    }
    let n = a.rows();
    let shift = tol.max(f64::EPSILON * a.norm_max().max(1.0) * n as f64);
    let shifted = a.try_add(&Matrix::identity(n).scale(shift));
    match shifted {
        Ok(s) => factor(&s).is_ok(),
        Err(_) => false,
    }
}

/// Solves `A X = B` for symmetric positive definite `A` using Cholesky.
///
/// # Errors
///
/// Propagates the errors of [`factor`]; additionally returns
/// [`LinalgError::ShapeMismatch`] when `b` has the wrong row count.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let l = factor(a)?;
    let n = l.rows();
    if b.rows() != n {
        return Err(LinalgError::ShapeMismatch {
            operation: "cholesky::solve",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let nrhs = b.cols();
    // Forward solve L y = b.
    let mut y = Matrix::zeros(n, nrhs);
    for j in 0..nrhs {
        for i in 0..n {
            let mut s = b[(i, j)];
            for k in 0..i {
                s -= l[(i, k)] * y[(k, j)];
            }
            y[(i, j)] = s / l[(i, i)];
        }
    }
    // Backward solve Lᵀ x = y.
    let mut x = Matrix::zeros(n, nrhs);
    for j in 0..nrhs {
        for i in (0..n).rev() {
            let mut s = y[(i, j)];
            for k in (i + 1)..n {
                s -= l[(k, i)] * x[(k, j)];
            }
            x[(i, j)] = s / l[(i, i)];
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Matrix {
        // B Bᵀ + n I is symmetric positive definite.
        let b = Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 3) % 7) as f64 * 0.25 - 0.5);
        let bbt = &b * &b.transpose();
        &bbt + &Matrix::identity(n).scale(n as f64)
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd(6);
        let l = factor(&a).unwrap();
        assert!((&l * &l.transpose()).approx_eq(&a, 1e-10));
        // L is lower triangular.
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn indefinite_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(factor(&a), Err(LinalgError::NotPositiveDefinite)));
        assert!(!is_positive_definite(&a));
        assert!(!is_positive_semidefinite(&a, 1e-10));
    }

    #[test]
    fn semidefinite_accepted_with_tolerance() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]); // eigenvalues 2, 0
        assert!(is_positive_semidefinite(&a, 1e-9));
        assert!(!is_positive_definite(&a));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd(5);
        let b = Matrix::from_fn(5, 2, |i, j| (i + j) as f64);
        let x = solve(&a, &b).unwrap();
        assert!((&(&a * &x) - &b).norm_fro() < 1e-9);
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            factor(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn identity_is_its_own_factor() {
        let l = factor(&Matrix::identity(4)).unwrap();
        assert!(l.approx_eq(&Matrix::identity(4), 1e-15));
    }
}
