//! Moore–Penrose pseudo-inverse.

use crate::decomp::svd::svd;
use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Computes the Moore–Penrose pseudo-inverse `A⁺` of `a` via the SVD, treating
/// singular values below `rel_tol * σ_max` as zero.
///
/// # Errors
///
/// Propagates SVD convergence failures.
///
/// ```
/// # use ds_linalg::{Matrix, pinv};
/// # fn main() -> Result<(), ds_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
/// let p = pinv::pseudo_inverse(&a, 1e-12)?;
/// assert!((&(&a * &p) * &a).approx_eq(&a, 1e-12));
/// # Ok(())
/// # }
/// ```
pub fn pseudo_inverse(a: &Matrix, rel_tol: f64) -> Result<Matrix, LinalgError> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Matrix::zeros(n, m));
    }
    let d = svd(a)?;
    let r = d.rank(rel_tol);
    // A⁺ = V Σ⁺ Uᵀ using only the leading r singular triplets.
    let mut out = Matrix::zeros(n, m);
    for k in 0..r {
        let sigma_inv = 1.0 / d.s[k];
        let uk = d.u.col(k);
        let vk = d.v.col(k);
        // out += sigma_inv * vk ukᵀ
        for i in 0..n {
            let vi = vk[(i, 0)] * sigma_inv;
            if vi == 0.0 {
                continue;
            }
            for j in 0..m {
                out[(i, j)] += vi * uk[(j, 0)];
            }
        }
    }
    Ok(out)
}

/// Solves the least-squares / minimum-norm problem `A x ≈ b` through the
/// pseudo-inverse (works for any shape and rank).
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] for inconsistent row counts and
/// propagates SVD convergence failures.
pub fn solve_min_norm(a: &Matrix, b: &Matrix, rel_tol: f64) -> Result<Matrix, LinalgError> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            operation: "pinv::solve_min_norm",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let p = pseudo_inverse(a, rel_tol)?;
    p.matmul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-11;

    fn check_penrose(a: &Matrix, p: &Matrix, tol: f64) {
        // The four Penrose conditions.
        assert!((&(&(a * p) * a) - a).norm_fro() < tol, "A P A = A violated");
        assert!((&(&(p * a) * p) - p).norm_fro() < tol, "P A P = P violated");
        let ap = a * p;
        assert!(ap.is_symmetric(tol), "A P not symmetric");
        let pa = p * a;
        assert!(pa.is_symmetric(tol), "P A not symmetric");
    }

    #[test]
    fn pinv_of_invertible_matrix_is_inverse() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let p = pseudo_inverse(&a, TOL).unwrap();
        assert!((&a * &p).approx_eq(&Matrix::identity(2), 1e-11));
    }

    #[test]
    fn pinv_of_rank_deficient_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let p = pseudo_inverse(&a, TOL).unwrap();
        check_penrose(&a, &p, 1e-9);
    }

    #[test]
    fn pinv_of_rectangular_matrices() {
        let tall = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let p = pseudo_inverse(&tall, TOL).unwrap();
        assert_eq!(p.shape(), (2, 3));
        check_penrose(&tall, &p, 1e-10);
        let wide = tall.transpose();
        let pw = pseudo_inverse(&wide, TOL).unwrap();
        assert_eq!(pw.shape(), (3, 2));
        check_penrose(&wide, &pw, 1e-10);
    }

    #[test]
    fn pinv_of_zero_matrix_is_zero() {
        let z = Matrix::zeros(2, 3);
        let p = pseudo_inverse(&z, TOL).unwrap();
        assert_eq!(p.shape(), (3, 2));
        assert_eq!(p.norm_fro(), 0.0);
    }

    #[test]
    fn min_norm_solution_of_underdetermined_system() {
        let a = Matrix::from_rows(&[&[1.0, 1.0, 0.0]]);
        let b = Matrix::column(&[2.0]);
        let x = solve_min_norm(&a, &b, TOL).unwrap();
        // Minimum-norm solution is [1, 1, 0]ᵀ.
        assert!((x[(0, 0)] - 1.0).abs() < 1e-10);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-10);
        assert!(x[(2, 0)].abs() < 1e-10);
    }

    #[test]
    fn least_squares_solution_of_overdetermined_system() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let b = Matrix::column(&[1.0, 3.0, 5.0]);
        let x = solve_min_norm(&a, &b, TOL).unwrap();
        assert!((x[(0, 0)] - 2.0).abs() < 1e-10);
        assert!((x[(1, 0)] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 1);
        assert!(solve_min_norm(&a, &b, TOL).is_err());
    }
}
