//! Sparse matrices for the order-10⁴ reduce-then-verify path.
//!
//! Two storage forms, both hand-rolled like the rest of the crate:
//!
//! * [`Coo`] — an append-only triplet builder that MNA stamping writes into.
//!   Converting to CSR ([`Coo::to_csr`]) accumulates duplicate `(row, col)`
//!   entries **in insertion order**, so a sparse stamp replays exactly the
//!   `+=` sequence the dense stamper performs and densifies bit-identically.
//! * [`Csr`] — compressed sparse rows with `spmv_into` / `spmv_transpose_into`
//!   kernels (zero-allocation, like the `_in` dense kernels), transpose,
//!   dense round-trips, and scaled addition for building shifted systems.
//!
//! [`SparseLu`] is the factor-solve used by the Krylov reduction: a
//! Gilbert–Peierls left-looking sparse LU with partial pivoting, applied
//! after a reverse-Cuthill–McKee symmetric permutation of the pattern of
//! `A + Aᵀ`.  That is sufficient — and fast — for the shifted MNA systems
//! `(G + s₀·C)·x = b` the projection solves repeatedly: the RCM preorder
//! keeps ladder/mesh fill near-banded while partial pivoting keeps the
//! nonsymmetric incidence blocks stable.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A triplet (COO) sparse-matrix builder.
#[derive(Debug, Clone)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    /// An empty builder of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// An empty builder with room for `capacity` entries.
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Self {
        Coo {
            rows,
            cols,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of (possibly duplicate) entries pushed so far.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Appends `value` at `(row, col)`.  Duplicates are allowed; conversion
    /// to CSR sums them in insertion order.
    ///
    /// # Panics
    ///
    /// Panics when the position is out of range (a stamping bug, not data).
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "COO entry ({row}, {col}) out of range for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Converts to CSR, summing duplicate positions in insertion order (the
    /// accumulation order is what makes sparse stamping bit-compatible with
    /// the dense `+=` stamp).
    pub fn to_csr(&self) -> Csr {
        // Counting sort by row keeps the conversion O(nnz + rows) and, with
        // a stable per-row ordering by column below, preserves insertion
        // order among duplicates.
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&idx| {
            let (r, c, _) = self.entries[idx];
            (r, c)
        });
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        let mut prev: Option<(usize, usize)> = None;
        for &idx in &order {
            let (r, c, v) = self.entries[idx];
            if prev == Some((r, c)) {
                let last = values.len() - 1;
                values[last] += v;
            } else {
                row_ptr[r + 1] += 1;
                col_idx.push(c);
                values.push(0.0 + v);
                prev = Some((r, c));
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        Csr {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// An all-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (explicit zeros included).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of row `r` as parallel `(columns, values)` slices.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Builds a CSR matrix from a dense one, storing every nonzero entry.
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, cols) = (dense.rows(), dense.cols());
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[(r, c)];
                if v != 0.0 {
                    coo.push(r, c, v);
                }
            }
        }
        coo.to_csr()
    }

    /// Densifies: each stored value lands at its position (one write per
    /// stored entry, so a stamp-accumulated CSR densifies to exactly the
    /// matrix the dense stamper would have produced).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out[(r, c)] = v;
            }
        }
        out
    }

    /// `y = A·x`, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths do not match the matrix shape.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv_into: x length != cols");
        assert_eq!(y.len(), self.rows, "spmv_into: y length != rows");
        for (r, slot) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for t in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[t] * x[self.col_idx[t]];
            }
            *slot = acc;
        }
    }

    /// `y = Aᵀ·x`, allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths do not match the matrix shape.
    pub fn spmv_transpose_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "spmv_transpose_into: x length != rows");
        assert_eq!(y.len(), self.cols, "spmv_transpose_into: y length != cols");
        for slot in y.iter_mut() {
            *slot = 0.0;
        }
        for (r, &xr) in x.iter().enumerate() {
            for t in self.row_ptr[r]..self.row_ptr[r + 1] {
                y[self.col_idx[t]] += self.values[t] * xr;
            }
        }
    }

    /// The transposed matrix (also usable as a CSR→CSC view change).
    pub fn transpose(&self) -> Csr {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c + 1] += 1;
        }
        for c in 0..self.cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut cursor = row_ptr.clone();
        for r in 0..self.rows {
            for t in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[t];
                let slot = cursor[c];
                col_idx[slot] = r;
                values[slot] = self.values[t];
                cursor[c] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// `self + alpha·other`, entry-wise (used to build the shifted pencil
    /// `K = G + s₀·C` without densifying).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the shapes differ.
    pub fn add_scaled(&self, other: &Csr, alpha: f64) -> Result<Csr, LinalgError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                operation: "sparse add_scaled",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut coo = Coo::with_capacity(self.rows, self.cols, self.nnz() + other.nnz());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(r, c, v);
            }
            let (cols, vals) = other.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(r, c, alpha * v);
            }
        }
        Ok(coo.to_csr())
    }

    /// The symmetric permutation `P·A·Pᵀ`: entry `(i, j)` of the result is
    /// `self[perm[i], perm[j]]`.  Used to apply a fill-reducing ordering such
    /// as [`rcm_order`] before factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] when the matrix is not square or
    /// `perm` is not a permutation of its dimension.
    pub fn permute_symmetric(&self, perm: &[usize]) -> Result<Csr, LinalgError> {
        if self.rows != self.cols || perm.len() != self.rows {
            return Err(LinalgError::invalid_input(
                "permute_symmetric needs a square matrix and a matching permutation",
            ));
        }
        let n = self.rows;
        let mut pinv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n || pinv[old] != usize::MAX {
                return Err(LinalgError::invalid_input(
                    "permute_symmetric: perm is not a permutation",
                ));
            }
            pinv[old] = new;
        }
        let mut coo = Coo::with_capacity(n, n, self.nnz());
        for r in 0..n {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                coo.push(pinv[r], pinv[c], v);
            }
        }
        Ok(coo.to_csr())
    }
}

/// Reverse-Cuthill–McKee ordering of the symmetrized pattern of `a`: a
/// permutation `perm` such that `perm[k]` is the original index placed at
/// position `k`.  Bandwidth-reducing for the ladder/mesh MNA systems the
/// reduction targets, which keeps the LU fill near the band.
pub fn rcm_order(a: &Csr) -> Vec<usize> {
    let n = a.rows();
    // Symmetrized adjacency (pattern of A + Aᵀ, diagonal dropped).
    let at = a.transpose();
    let mut degree = vec![0usize; n];
    let mut adj_ptr = vec![0usize; n + 1];
    for r in 0..n {
        let mut count = 0usize;
        for &c in a.row(r).0.iter().chain(at.row(r).0) {
            if c != r {
                count += 1;
            }
        }
        adj_ptr[r + 1] = count;
    }
    for r in 0..n {
        adj_ptr[r + 1] += adj_ptr[r];
    }
    let mut adj = vec![0usize; adj_ptr[n]];
    let mut cursor = adj_ptr.clone();
    for r in 0..n {
        for &c in a.row(r).0.iter().chain(at.row(r).0) {
            if c != r {
                adj[cursor[r]] = c;
                cursor[r] += 1;
            }
        }
    }
    for r in 0..n {
        let span = &mut adj[adj_ptr[r]..adj_ptr[r + 1]];
        span.sort_unstable();
        degree[r] = span.len();
    }

    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut neighbors: Vec<usize> = Vec::new();
    loop {
        // Start each component from its minimum-degree unvisited node.
        let start = (0..n)
            .filter(|&v| !visited[v])
            .min_by_key(|&v| (degree[v], v));
        let Some(start) = start else { break };
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbors.clear();
            for &w in &adj[adj_ptr[v]..adj_ptr[v + 1]] {
                if !visited[w] {
                    visited[w] = true;
                    neighbors.push(w);
                }
            }
            neighbors.sort_by_key(|&w| (degree[w], w));
            for &w in &neighbors {
                queue.push_back(w);
            }
        }
    }
    order.reverse();
    order
}

/// Column index marker: "not yet pivoted".
const UNPIVOTED: usize = usize::MAX;

/// A sparse LU factorization `P·(Q·A·Qᵀ) = L·U` with partial (row) pivoting
/// `P` on top of the symmetric RCM permutation `Q` — Gilbert–Peierls
/// left-looking columns with a depth-first reach on the growing `L`.
///
/// The factor owns its solve scratch, so [`SparseLu::solve`] performs no
/// allocation after the first call.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// RCM permutation: `perm[k]` = original index at permuted position `k`.
    perm: Vec<usize>,
    /// Columns of L (strictly below the pivot, unit diagonal implicit),
    /// entries as (permuted row, value), scaled by the pivot.
    l_ptr: Vec<usize>,
    l_row: Vec<usize>,
    l_val: Vec<f64>,
    /// Columns of U, entries as (pivot position i ≤ j, value); the diagonal
    /// entry `U[j,j]` is stored last in each column.
    u_ptr: Vec<usize>,
    u_pos: Vec<usize>,
    u_val: Vec<f64>,
    /// Permuted row → elimination position (the row chosen as pivot `j`).
    pinv: Vec<usize>,
    /// Solve scratch (position-indexed intermediate vector).
    scratch: Vec<f64>,
}

impl SparseLu {
    /// Factors a square sparse matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::Singular`] when no usable pivot remains in a column.
    pub fn factor(a: &Csr) -> Result<SparseLu, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                operation: "sparse LU",
                shape: (a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let perm = rcm_order(a);
        let mut inv_perm = vec![0usize; n];
        for (k, &orig) in perm.iter().enumerate() {
            inv_perm[orig] = k;
        }
        // Columns of the permuted matrix Q·A·Qᵀ: permuted column j holds the
        // entries of original column perm[j], with permuted row indices.
        // Build by transposing A (CSR of Aᵀ = CSC of A) and remapping.
        let at = a.transpose();

        let mut lu = SparseLu {
            n,
            perm,
            l_ptr: Vec::with_capacity(n + 1),
            l_row: Vec::new(),
            l_val: Vec::new(),
            u_ptr: Vec::with_capacity(n + 1),
            u_pos: Vec::new(),
            u_val: Vec::new(),
            pinv: vec![UNPIVOTED; n],
            scratch: vec![0.0; n],
        };
        lu.l_ptr.push(0);
        lu.u_ptr.push(0);

        // Which permuted position each elimination step chose as pivot.
        let mut x = vec![0.0f64; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(n);
        let mut visited = vec![usize::MAX; n];
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for j in 0..n {
            // Scatter permuted column j and compute its reach through L.
            pattern.clear();
            let (orig_rows, vals) = at.row(lu.perm[j]);
            for (&orig_row, &v) in orig_rows.iter().zip(vals) {
                let row = inv_perm[orig_row];
                if visited[row] != j {
                    Self::reach(
                        row,
                        j,
                        &lu.pinv,
                        &lu.l_ptr,
                        &lu.l_row,
                        &mut visited,
                        &mut dfs_stack,
                        &mut pattern,
                    );
                }
                x[row] += v;
            }
            // `pattern` is in topological order (DFS postorder, reversed by
            // construction below): eliminate every already-pivoted row.
            for idx in (0..pattern.len()).rev() {
                let row = pattern[idx];
                let step = lu.pinv[row];
                if step == UNPIVOTED {
                    continue;
                }
                let xv = x[row];
                if xv != 0.0 {
                    for t in lu.l_ptr[step]..lu.l_ptr[step + 1] {
                        x[lu.l_row[t]] -= lu.l_val[t] * xv;
                    }
                }
            }
            // Partition into U entries (pivoted rows) and pivot candidates.
            let mut pivot_row = UNPIVOTED;
            let mut pivot_abs = 0.0f64;
            for &row in &pattern {
                if lu.pinv[row] == UNPIVOTED {
                    let a = x[row].abs();
                    if a > pivot_abs {
                        pivot_abs = a;
                        pivot_row = row;
                    }
                }
            }
            if pivot_row == UNPIVOTED || pivot_abs == 0.0 || !pivot_abs.is_finite() {
                return Err(LinalgError::Singular {
                    operation: "sparse LU",
                });
            }
            let pivot = x[pivot_row];
            for &row in &pattern {
                let step = lu.pinv[row];
                if step != UNPIVOTED {
                    lu.u_pos.push(step);
                    lu.u_val.push(x[row]);
                } else if row != pivot_row {
                    let v = x[row];
                    if v != 0.0 {
                        lu.l_row.push(row);
                        lu.l_val.push(v / pivot);
                    }
                }
                x[row] = 0.0;
            }
            // Diagonal of U last, so back substitution can pop it first.
            lu.u_pos.push(j);
            lu.u_val.push(pivot);
            lu.pinv[pivot_row] = j;
            lu.l_ptr.push(lu.l_row.len());
            lu.u_ptr.push(lu.u_pos.len());
        }

        // Remap L rows (permuted row index) to elimination positions so the
        // solves run purely in position space.
        for slot in lu.l_row.iter_mut() {
            *slot = lu.pinv[*slot];
        }
        // pinv currently maps permuted row → position; solves need both
        // directions.  Reuse `visited` storage semantics: build prow.
        Ok(lu)
    }

    /// Depth-first reach of `row` through the pivoted columns of L, appending
    /// newly-reached rows to `pattern` in postorder.
    #[allow(clippy::too_many_arguments)]
    fn reach(
        row: usize,
        mark: usize,
        pinv: &[usize],
        l_ptr: &[usize],
        l_row: &[usize],
        visited: &mut [usize],
        stack: &mut Vec<(usize, usize)>,
        pattern: &mut Vec<usize>,
    ) {
        stack.push((row, 0));
        visited[row] = mark;
        while let Some(&mut (r, ref mut next)) = stack.last_mut() {
            let step = pinv[r];
            let mut descended = false;
            if step != UNPIVOTED {
                let span = l_ptr[step]..l_ptr[step + 1];
                let len = span.end - span.start;
                while *next < len {
                    let child = l_row[span.start + *next];
                    *next += 1;
                    if visited[child] != mark {
                        visited[child] = mark;
                        stack.push((child, 0));
                        descended = true;
                        break;
                    }
                }
            }
            if !descended {
                stack.pop();
                pattern.push(r);
            }
        }
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b` using the factorization (allocation-free after the
    /// factor is built: the intermediate vector is owned scratch).
    ///
    /// # Panics
    ///
    /// Panics when `b`/`x` lengths differ from the matrix order.
    pub fn solve(&mut self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "solve: b length != order");
        assert_eq!(x.len(), n, "solve: x length != order");
        // y[position] = entries of P·Q·b in elimination order.
        let y = &mut self.scratch;
        for k in 0..n {
            // permuted row k holds original row perm[k]; its elimination
            // position is pinv[k].
            y[self.pinv[k]] = b[self.perm[k]];
        }
        // Forward: L has unit diagonal in position space.
        for j in 0..n {
            let v = y[j];
            if v != 0.0 {
                for t in self.l_ptr[j]..self.l_ptr[j + 1] {
                    y[self.l_row[t]] -= self.l_val[t] * v;
                }
            }
        }
        // Backward, column-oriented: the diagonal is the last entry of each
        // U column.
        for j in (0..n).rev() {
            let hi = self.u_ptr[j + 1];
            let lo = self.u_ptr[j];
            let xj = y[j] / self.u_val[hi - 1];
            y[j] = xj;
            if xj != 0.0 {
                for t in lo..hi - 1 {
                    y[self.u_pos[t]] -= self.u_val[t] * xj;
                }
            }
        }
        // Undo the symmetric permutation: position j is permuted index…
        // x_permuted[k] lives at position… the column order IS the permuted
        // order (no column pivoting), so permuted unknown j sits at y[j].
        for k in 0..n {
            x[self.perm[k]] = y[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::lu as dense_lu;

    fn ladder_like(n: usize) -> Csr {
        // A nonsymmetric, diagonally-dominant banded matrix shaped like a
        // shifted MNA system.
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0 + (i % 3) as f64);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0 - 0.1 * (i % 5) as f64);
                coo.push(i + 1, i, 1.0 + 0.2 * (i % 7) as f64);
            }
            if i + 7 < n {
                coo.push(i, i + 7, -0.5);
                coo.push(i + 7, i, 0.25);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn coo_accumulates_duplicates_in_insertion_order() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 2.0);
        coo.push(0, 0, 1e-17);
        coo.push(0, 0, -1.0);
        let csr = coo.to_csr();
        // Same sequence as dense: ((1.0 + 1e-17) - 1.0), not (1e-17 + 0.0).
        let mut dense = Matrix::zeros(2, 2);
        dense[(0, 0)] += 1.0;
        dense[(1, 1)] += 2.0;
        dense[(0, 0)] += 1e-17;
        dense[(0, 0)] -= 1.0;
        assert_eq!(csr.to_dense()[(0, 0)].to_bits(), dense[(0, 0)].to_bits());
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn dense_round_trip_preserves_entries() {
        let dense = Matrix::from_rows(&[&[1.0, 0.0, -2.5], &[0.0, 0.0, 3.25], &[4.0, -0.125, 0.0]]);
        let csr = Csr::from_dense(&dense);
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.to_dense(), dense);
        let back = csr.transpose().transpose().to_dense();
        assert_eq!(back, dense);
    }

    #[test]
    fn spmv_and_transpose_match_dense() {
        let a = ladder_like(23);
        let dense = a.to_dense();
        let x: Vec<f64> = (0..23).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; 23];
        a.spmv_into(&x, &mut y);
        let mut yt = vec![0.0; 23];
        a.spmv_transpose_into(&x, &mut yt);
        for r in 0..23 {
            let want: f64 = (0..23).map(|c| dense[(r, c)] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-12, "row {r}");
            let want_t: f64 = (0..23).map(|c| dense[(c, r)] * x[c]).sum();
            assert!((yt[r] - want_t).abs() < 1e-12, "t-row {r}");
        }
    }

    #[test]
    fn add_scaled_builds_the_shifted_system() {
        let g = ladder_like(11);
        let mut coo = Coo::new(11, 11);
        for i in 0..11 {
            coo.push(i, i, 1.5 + i as f64 * 0.1);
        }
        let c = coo.to_csr();
        let k = g.add_scaled(&c, 2.0).unwrap();
        let want = &g.to_dense() + &c.to_dense().scale(2.0);
        assert!((&k.to_dense() - &want).norm_fro() < 1e-14);
        assert!(g.add_scaled(&Csr::zeros(3, 3), 1.0).is_err());
    }

    #[test]
    fn rcm_is_a_permutation_and_shrinks_bandwidth() {
        let mut coo = Coo::new(8, 8);
        // A star + ring pattern with terrible natural bandwidth.
        for i in 0..8 {
            coo.push(i, i, 1.0);
            coo.push(i, (i + 4) % 8, 1.0);
        }
        let a = coo.to_csr();
        let perm = rcm_order(&a);
        let mut seen = [false; 8];
        for &p in &perm {
            assert!(!seen[p], "duplicate index in RCM order");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sparse_lu_matches_dense_solve() {
        for n in [1usize, 2, 5, 24, 61] {
            let a = ladder_like(n);
            let mut lu = SparseLu::factor(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.61).cos()).collect();
            let mut x = vec![0.0; n];
            lu.solve(&b, &mut x);
            let dense = a.to_dense();
            let b_mat = Matrix::from_fn(n, 1, |r, _| b[r]);
            let want = dense_lu::solve(&dense, &b_mat).unwrap();
            for i in 0..n {
                assert!(
                    (x[i] - want[(i, 0)]).abs() < 1e-10 * (1.0 + want[(i, 0)].abs()),
                    "n={n} x[{i}] = {} want {}",
                    x[i],
                    want[(i, 0)]
                );
            }
            // Reuse the factor: solving again must give the same answer.
            let mut x2 = vec![0.0; n];
            lu.solve(&b, &mut x2);
            assert_eq!(x, x2);
        }
    }

    #[test]
    fn sparse_lu_handles_permutation_forcing_pivoting() {
        // Zero diagonal forces row pivoting.
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 3.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 1, 1.0);
        coo.push(2, 2, 4.0);
        let a = coo.to_csr();
        let mut lu = SparseLu::factor(&a).unwrap();
        let b = [5.0, -1.0, 2.0];
        let mut x = vec![0.0; 3];
        lu.solve(&b, &mut x);
        let dense = a.to_dense();
        let mut r = [0.0; 3];
        a.spmv_into(&x, &mut r);
        for i in 0..3 {
            assert!((r[i] - b[i]).abs() < 1e-12, "residual {i}: {dense:?}");
        }
    }

    #[test]
    fn sparse_lu_reports_singularity() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 2.0);
        let a = coo.to_csr();
        assert!(matches!(
            SparseLu::factor(&a),
            Err(LinalgError::Singular { .. })
        ));
        assert!(matches!(
            SparseLu::factor(&Csr::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn sparse_lu_on_a_random_sprinkled_matrix() {
        // Deterministic pseudo-random pattern, nonsymmetric, with enough
        // diagonal mass to be comfortably nonsingular.
        let n = 40;
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 6.0 + (next() % 100) as f64 / 25.0);
        }
        for _ in 0..4 * n {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            if r != c {
                coo.push(r, c, ((next() % 200) as f64 - 100.0) / 80.0);
            }
        }
        let a = coo.to_csr();
        let mut lu = SparseLu::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let mut x = vec![0.0; n];
        lu.solve(&b, &mut x);
        let mut back = vec![0.0; n];
        a.spmv_into(&x, &mut back);
        for i in 0..n {
            assert!((back[i] - b[i]).abs() < 1e-9, "residual {i}");
        }
    }
}
