//! SVD-based subspace arithmetic.
//!
//! The passivity-test reduction of the DAC 2006 paper is phrased entirely in
//! terms of subspace operations: kernels, ranges, orthogonal complements,
//! intersections and "set subtraction" `X \ Y = X ∩ Y⊥` (in the sense of
//! Basile–Marro).  All decisions about numerical rank go through the SVD with a
//! relative tolerance.

use crate::decomp::qr;
use crate::decomp::svd::{rank_from_singular_values, svd, svd_u_s};
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::DEFAULT_RELATIVE_TOLERANCE;

/// Numerical rank of `a` with relative tolerance `rel_tol` (singular values
/// below `rel_tol * σ_max` count as zero).
///
/// # Errors
///
/// Propagates SVD convergence failures.
pub fn rank(a: &Matrix, rel_tol: f64) -> Result<usize, LinalgError> {
    if a.is_empty() {
        return Ok(0);
    }
    // The rank decision only needs the singular values; skip the V factor.
    // Singular values are transpose-invariant, so wide input is transposed
    // first — the tall orientation is the one where the V-free Jacobi path
    // actually skips work (the wide branch must accumulate V to build U).
    let (_, s) = if a.rows() < a.cols() {
        svd_u_s(&a.transpose())?
    } else {
        svd_u_s(a)?
    };
    Ok(rank_from_singular_values(&s, rel_tol))
}

/// Orthonormal basis of the column space (range) of `a`.
///
/// # Errors
///
/// Propagates SVD convergence failures.
pub fn range_basis(a: &Matrix, rel_tol: f64) -> Result<Matrix, LinalgError> {
    if a.is_empty() {
        return Ok(Matrix::zeros(a.rows(), 0));
    }
    // The range basis lives in U; the V-free Jacobi path produces the exact
    // same U and singular values at roughly half the rotation work.
    let (u, s) = svd_u_s(a)?;
    let r = rank_from_singular_values(&s, rel_tol);
    Ok(u.block(0, a.rows(), 0, r))
}

/// Orthonormal basis of the null space (kernel) of `a`: all `x` with `a x = 0`.
///
/// # Errors
///
/// Propagates SVD convergence failures.
pub fn null_space(a: &Matrix, rel_tol: f64) -> Result<Matrix, LinalgError> {
    let (m, n) = a.shape();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }
    if m == 0 {
        return Ok(Matrix::identity(n));
    }
    // Work on Aᵀ A's right singular vectors: the SVD of A directly provides V.
    let d = svd(a)?;
    let r = d.rank(rel_tol);
    if d.v.cols() >= n {
        // m >= n: V is n x n orthogonal; kernel = trailing n - r columns.
        Ok(d.v.block(0, n, r, n))
    } else {
        // m < n: V returned by `svd` is n x m; the kernel needs the orthogonal
        // complement of the leading r columns of V.
        let vr = d.v.block(0, n, 0, r);
        complement(&vr, n)
    }
}

/// Orthonormal basis of the left null space of `a`: all `y` with `yᵀ a = 0`.
///
/// # Errors
///
/// Propagates SVD convergence failures.
pub fn left_null_space(a: &Matrix, rel_tol: f64) -> Result<Matrix, LinalgError> {
    null_space(&a.transpose(), rel_tol)
}

/// Orthonormal basis of the orthogonal complement of `span(u)` inside `R^dim`.
///
/// `u` must have `dim` rows (its columns need not be orthonormal).
///
/// # Errors
///
/// Returns [`LinalgError::InvalidInput`] if `u` has the wrong number of rows;
/// propagates SVD convergence failures.
pub fn complement(u: &Matrix, dim: usize) -> Result<Matrix, LinalgError> {
    if u.cols() == 0 {
        return Ok(Matrix::identity(dim));
    }
    if u.rows() != dim {
        return Err(LinalgError::invalid_input(format!(
            "complement: basis has {} rows but the ambient dimension is {}",
            u.rows(),
            dim
        )));
    }
    // Orthonormalize the spanning set first (rank-revealing via the SVD when
    // the input is not already orthonormal), then extend it to a full
    // orthogonal basis with a Householder QR of the thin matrix — much cheaper
    // than an SVD of the `dim x dim` projector.
    let q = range_basis(u, DEFAULT_RELATIVE_TOLERANCE)?;
    if q.cols() == 0 {
        return Ok(Matrix::identity(dim));
    }
    if q.cols() >= dim {
        return Ok(Matrix::zeros(dim, 0));
    }
    let full = qr::factor_full(&q).q;
    Ok(full.block(0, dim, q.cols(), dim))
}

/// Orthonormal basis of the intersection `span(u) ∩ span(v)`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidInput`] when the row counts differ; propagates
/// SVD convergence failures.
pub fn intersection(u: &Matrix, v: &Matrix, rel_tol: f64) -> Result<Matrix, LinalgError> {
    if u.cols() == 0 || v.cols() == 0 {
        return Ok(Matrix::zeros(u.rows(), 0));
    }
    if u.rows() != v.rows() {
        return Err(LinalgError::invalid_input(
            "intersection: bases live in different ambient dimensions",
        ));
    }
    // w ∈ span(u) ∩ span(v)  ⇔  w = u a = v b  ⇔  [u, -v] [a; b] = 0.
    let stacked = Matrix::hstack(&[u, &v.scale(-1.0)]);
    let ns = null_space(&stacked, rel_tol)?;
    if ns.cols() == 0 {
        return Ok(Matrix::zeros(u.rows(), 0));
    }
    let a_part = ns.block(0, u.cols(), 0, ns.cols());
    let w = u.matmul(&a_part)?;
    range_basis(&w, rel_tol)
}

/// Subspace "subtraction" in the sense of Basile–Marro: an orthonormal basis of
/// `span(x) ∩ span(y)⊥`, i.e. the part of `span(x)` orthogonal to `span(y)`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidInput`] when the row counts differ; propagates
/// SVD convergence failures.
pub fn subtract(x: &Matrix, y: &Matrix, rel_tol: f64) -> Result<Matrix, LinalgError> {
    if x.cols() == 0 {
        return Ok(Matrix::zeros(x.rows(), 0));
    }
    if y.cols() == 0 {
        return range_basis(x, rel_tol);
    }
    if x.rows() != y.rows() {
        return Err(LinalgError::invalid_input(
            "subtract: bases live in different ambient dimensions",
        ));
    }
    let qy = range_basis(y, rel_tol)?;
    // Project the columns of x onto the complement of span(y).
    let proj = &x.clone() - &(&qy * &qy.transpose_matmul(x)?);
    range_basis(&proj, rel_tol)
}

/// Orthonormal basis of the sum `span(u) + span(v)`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidInput`] when the row counts differ; propagates
/// SVD convergence failures.
pub fn sum(u: &Matrix, v: &Matrix, rel_tol: f64) -> Result<Matrix, LinalgError> {
    if u.cols() == 0 {
        return range_basis(v, rel_tol);
    }
    if v.cols() == 0 {
        return range_basis(u, rel_tol);
    }
    if u.rows() != v.rows() {
        return Err(LinalgError::invalid_input(
            "sum: bases live in different ambient dimensions",
        ));
    }
    range_basis(&Matrix::hstack(&[u, v]), rel_tol)
}

/// Returns `true` when `span(u) ⊆ span(v)` to within `rel_tol`.
///
/// # Errors
///
/// Propagates SVD convergence failures.
pub fn is_contained(u: &Matrix, v: &Matrix, rel_tol: f64) -> Result<bool, LinalgError> {
    if u.cols() == 0 {
        return Ok(true);
    }
    let qv = range_basis(v, rel_tol)?;
    let residual = &u.clone() - &(&qv * &qv.transpose_matmul(u)?);
    let scale = u.norm_fro().max(1.0);
    Ok(residual.norm_fro() <= rel_tol.max(1e-9) * scale * 10.0)
}

/// Extends the orthonormal columns of `u` to a full orthonormal basis of
/// `R^dim`, returning an orthogonal `dim x dim` matrix whose leading columns
/// are (a re-orthonormalized copy of) `u`.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidInput`] when the row count differs from `dim`;
/// propagates SVD convergence failures.
pub fn complete_basis(u: &Matrix, dim: usize) -> Result<Matrix, LinalgError> {
    if u.cols() == 0 {
        return Ok(Matrix::identity(dim));
    }
    if u.rows() != dim {
        return Err(LinalgError::invalid_input(
            "complete_basis: wrong ambient dimension",
        ));
    }
    let q = qr::orthonormalize_columns(u, DEFAULT_RELATIVE_TOLERANCE);
    if q.cols() >= dim {
        return Ok(q);
    }
    let full = qr::factor_full(&q).q;
    let comp = full.block(0, dim, q.cols(), dim);
    Ok(Matrix::hstack(&[&q, &comp]))
}

/// Orthogonal projector onto `span(u)` (given any spanning set `u`).
///
/// # Errors
///
/// Propagates SVD convergence failures.
pub fn projector(u: &Matrix, rel_tol: f64) -> Result<Matrix, LinalgError> {
    let q = range_basis(u, rel_tol)?;
    Ok(&q * &q.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    fn assert_orthonormal(q: &Matrix) {
        if q.cols() == 0 {
            return;
        }
        let qtq = q.transpose_matmul(q).unwrap();
        assert!(
            qtq.approx_eq(&Matrix::identity(q.cols()), 1e-9),
            "columns not orthonormal"
        );
    }

    #[test]
    fn rank_of_outer_product() {
        let u = Matrix::column(&[1.0, 2.0, 3.0]);
        let a = &u * &u.transpose();
        assert_eq!(rank(&a, TOL).unwrap(), 1);
        assert_eq!(rank(&Matrix::identity(4), TOL).unwrap(), 4);
        assert_eq!(rank(&Matrix::zeros(3, 2), TOL).unwrap(), 0);
    }

    #[test]
    fn null_space_of_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[1.0, 0.0, 1.0]]);
        let ns = null_space(&a, TOL).unwrap();
        assert_eq!(ns.cols(), 1);
        assert_orthonormal(&ns);
        assert!((&a * &ns).norm_fro() < 1e-9);
    }

    #[test]
    fn null_space_of_wide_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0, 0.0], &[0.0, 1.0, 0.0, 1.0]]);
        let ns = null_space(&a, TOL).unwrap();
        assert_eq!(ns.cols(), 2);
        assert!((&a * &ns).norm_fro() < 1e-9);
        assert_orthonormal(&ns);
    }

    #[test]
    fn left_null_space_annihilates_from_left() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[0.0, 1.0]]);
        let lns = left_null_space(&a, TOL).unwrap();
        assert_eq!(lns.cols(), 1);
        assert!((&lns.transpose() * &a).norm_fro() < 1e-9);
    }

    #[test]
    fn range_basis_spans_columns() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 4.0], &[0.0, 0.0, 0.0], &[1.0, 2.0, 4.0]]);
        let r = range_basis(&a, TOL).unwrap();
        assert_eq!(r.cols(), 1);
        assert_orthonormal(&r);
        // Each column of a lies in the span of r.
        assert!(is_contained(&a, &r, TOL).unwrap());
    }

    #[test]
    fn complement_dimensions_add_up() {
        let u = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0], &[0.0, 0.0]]);
        let c = complement(&u, 4).unwrap();
        assert_eq!(c.cols(), 2);
        assert_orthonormal(&c);
        assert!((&u.transpose() * &c).norm_fro() < 1e-10);
        // Complement of nothing is everything.
        assert_eq!(complement(&Matrix::zeros(3, 0), 3).unwrap().cols(), 3);
    }

    #[test]
    fn intersection_of_planes() {
        // span{e1, e2} ∩ span{e2, e3} = span{e2}
        let u = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let v = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let w = intersection(&u, &v, TOL).unwrap();
        assert_eq!(w.cols(), 1);
        assert!((w[(1, 0)].abs() - 1.0).abs() < 1e-9);
        assert!(w[(0, 0)].abs() < 1e-9 && w[(2, 0)].abs() < 1e-9);
    }

    #[test]
    fn intersection_of_disjoint_lines_is_empty() {
        let u = Matrix::column(&[1.0, 0.0, 0.0]);
        let v = Matrix::column(&[0.0, 1.0, 0.0]);
        assert_eq!(intersection(&u, &v, TOL).unwrap().cols(), 0);
    }

    #[test]
    fn subtract_removes_shared_directions() {
        // span{e1, e2} \ span{e2} = span{e1}
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let y = Matrix::column(&[0.0, 1.0, 0.0]);
        let d = subtract(&x, &y, TOL).unwrap();
        assert_eq!(d.cols(), 1);
        assert!((d[(0, 0)].abs() - 1.0).abs() < 1e-9);
        // Subtracting nothing returns the original span.
        let full = subtract(&x, &Matrix::zeros(3, 0), TOL).unwrap();
        assert_eq!(full.cols(), 2);
    }

    #[test]
    fn sum_of_subspaces() {
        let u = Matrix::column(&[1.0, 0.0, 0.0]);
        let v = Matrix::column(&[0.0, 1.0, 0.0]);
        let s = sum(&u, &v, TOL).unwrap();
        assert_eq!(s.cols(), 2);
        assert_orthonormal(&s);
    }

    #[test]
    fn containment_checks() {
        let u = Matrix::column(&[1.0, 1.0, 0.0]);
        let v = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        assert!(is_contained(&u, &v, TOL).unwrap());
        assert!(!is_contained(&v, &u, TOL).unwrap());
    }

    #[test]
    fn complete_basis_is_orthogonal() {
        let u = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0], &[0.0]]);
        let full = complete_basis(&u, 4).unwrap();
        assert_eq!(full.shape(), (4, 4));
        assert_orthonormal(&full);
        // Leading column still spans u.
        assert!(is_contained(&u, &full.block(0, 4, 0, 1), TOL).unwrap());
    }

    #[test]
    fn projector_is_idempotent_and_symmetric() {
        let u = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0], &[0.0, 2.0]]);
        let p = projector(&u, TOL).unwrap();
        assert!(p.is_symmetric(1e-10));
        assert!((&(&p * &p) - &p).norm_fro() < 1e-9);
        // Projecting a vector already in the span leaves it unchanged.
        let x = u.col(0);
        assert!((&(&p * &x) - &x).norm_fro() < 1e-9);
    }
}
