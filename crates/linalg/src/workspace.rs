//! Reusable scratch buffers for the eigenvalue / sign-function hot path.
//!
//! The passivity sweep solves long streams of same-order problems; allocating
//! fresh matrices for every Hessenberg reduction, Francis sweep, LU solve and
//! Newton sign iterate dominated the allocator profile.  An [`EigenWorkspace`]
//! owns every scratch buffer those kernels need; a [`WorkspacePool`] keys
//! workspaces by matrix dimension so a worker thread solving mixed orders
//! reaches steady state with **zero heap allocation inside the kernels**
//! (pinned by `tests/alloc_regression.rs`).
//!
//! Two usage styles:
//!
//! * explicit — construct a pool, pass `pool.get(n)` to the `_in` kernels
//!   ([`crate::eigen::eigenvalues_into`], [`crate::sign::matrix_sign_into`],
//!   …);
//! * implicit — the classic public entry points ([`crate::eigen::eigenvalues`],
//!   [`crate::sign::matrix_sign`], [`crate::decomp::schur::real_schur`]) route
//!   their scratch through a per-thread pool automatically, so every sweep
//!   worker thread owns one pool and reuses it across tasks without any caller
//!   changes.

use crate::decomp::lu::Lu;
use crate::matrix::Matrix;
use std::cell::RefCell;
use std::collections::HashMap;

/// Scratch buffers for the Householder reflector kernels
/// ([`crate::decomp::hessenberg::reduce_in`],
/// [`crate::decomp::schur::real_schur_in`]).
///
/// Holds the per-reflector vectors of the unblocked paths plus the compact-WY
/// panel storage (`V`, `T`, `U = A·V` and a general panel temporary) of the
/// blocked paths.  All buffers are lazily resized by the kernels, so a warm
/// scratch makes repeated same-order reductions allocation-free.
#[derive(Debug, Default)]
pub struct ReflectorScratch {
    /// Householder-vector scratch.
    pub(crate) hv: Vec<f64>,
    /// Per-column dot-product scratch for the two-pass reflector updates.
    pub(crate) dots: Vec<f64>,
    /// Compact-WY reflector panel `V` (row-major, leading dimension `nb`).
    pub(crate) panel_v: Vec<f64>,
    /// Compact-WY triangular factor `T` (`nb x nb`, row-major).
    pub(crate) panel_t: Vec<f64>,
    /// Panel product `U = A·V` (row-major, leading dimension `nb`).
    pub(crate) panel_u: Vec<f64>,
    /// General panel temporary (`W = U·T`, `Z = Vᵀ·A`, `Q·V`).
    pub(crate) panel_w: Vec<f64>,
    /// Full-column temporary for the on-demand panel column updates.
    pub(crate) col: Vec<f64>,
}

impl ReflectorScratch {
    /// A fresh scratch with empty buffers (they grow on first use).
    pub fn new() -> Self {
        ReflectorScratch::default()
    }

    /// Approximate resident size of the buffers, in bytes.
    pub fn resident_bytes(&self) -> usize {
        (self.hv.len()
            + self.dots.len()
            + self.panel_v.len()
            + self.panel_t.len()
            + self.panel_u.len()
            + self.panel_w.len()
            + self.col.len())
            * std::mem::size_of::<f64>()
    }
}

/// Per-dimension scratch buffers for the eigen kernels.
///
/// The buffers are lazily resized by the kernels; after the first problem of a
/// given dimension they are warm and subsequent calls allocate nothing.
#[derive(Debug)]
pub struct EigenWorkspace {
    /// Working matrix for the Schur / Hessenberg form (and the sign iterate).
    pub(crate) t: Matrix,
    /// General square temporary (sign iteration: the inverse iterate).
    pub(crate) w1: Matrix,
    /// Second general square temporary (sign iteration: the next iterate).
    pub(crate) w2: Matrix,
    /// Reusable LU factorization storage (matrix + pivot vector).
    pub(crate) lu: Lu,
    /// Householder reflector scratch (unblocked vectors + compact-WY panels).
    pub(crate) refl: ReflectorScratch,
}

impl EigenWorkspace {
    /// A fresh workspace with empty buffers (they grow on first use).
    pub fn new() -> Self {
        EigenWorkspace {
            t: Matrix::zeros(0, 0),
            w1: Matrix::zeros(0, 0),
            w2: Matrix::zeros(0, 0),
            lu: Lu::empty(),
            refl: ReflectorScratch::new(),
        }
    }

    /// Approximate resident size of the buffers, in bytes.
    pub fn resident_bytes(&self) -> usize {
        let mat = |m: &Matrix| std::mem::size_of_val(m.as_slice());
        mat(&self.t)
            + mat(&self.w1)
            + mat(&self.w2)
            + mat(&self.lu.lu)
            + self.lu.perm.len() * std::mem::size_of::<usize>()
            + self.refl.resident_bytes()
    }
}

impl Default for EigenWorkspace {
    fn default() -> Self {
        EigenWorkspace::new()
    }
}

/// Usage counters of a [`WorkspacePool`] (also aggregated across sweep
/// workers by `ds-harness`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls that found a warm workspace for the requested dimension.
    pub hits: u64,
    /// `get` calls that had to create a fresh workspace.
    pub misses: u64,
    /// Number of distinct dimensions currently resident.
    pub resident: u64,
    /// Approximate resident buffer bytes across all workspaces.
    pub resident_bytes: u64,
}

impl PoolStats {
    /// Element-wise sum, for aggregating per-thread stats.
    #[must_use]
    pub fn merged(self, other: PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            resident: self.resident + other.resident,
            resident_bytes: self.resident_bytes + other.resident_bytes,
        }
    }
}

/// Upper bound on distinct dimensions resident in one pool; a single
/// passivity task touches well under a dozen.
const MAX_RESIDENT_SLOTS: usize = 32;

/// Soft byte budget per pool.  A dimension-800 workspace is ~20 MiB, so the
/// budget keeps a handful of large dimensions warm while preventing a
/// long-lived worker sweeping mixed orders from accumulating scratch without
/// bound.
const RESIDENT_BYTE_BUDGET: usize = 128 * 1024 * 1024;

#[derive(Debug)]
struct Slot {
    ws: EigenWorkspace,
    last_used: u64,
}

/// A pool of [`EigenWorkspace`]s keyed by matrix dimension.
///
/// Residency is bounded: at most [`MAX_RESIDENT_SLOTS`] dimensions and (softly)
/// [`RESIDENT_BYTE_BUDGET`] bytes stay warm, with least-recently-used
/// workspaces evicted first — so a long-lived worker sweeping arbitrary order
/// mixes cannot grow its scratch without bound.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    slots: HashMap<usize, Slot>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> Self {
        WorkspacePool::default()
    }

    /// The workspace for dimension `n`, created on first request.
    pub fn get(&mut self, n: usize) -> &mut EigenWorkspace {
        self.clock += 1;
        let clock = self.clock;
        if !self.slots.contains_key(&n) {
            self.misses += 1;
            self.evict_for(n);
            self.slots.insert(
                n,
                Slot {
                    ws: EigenWorkspace::new(),
                    last_used: clock,
                },
            );
        } else {
            self.hits += 1;
        }
        let slot = self.slots.get_mut(&n).expect("slot just ensured");
        slot.last_used = clock;
        &mut slot.ws
    }

    /// Evicts least-recently-used slots until both residency budgets have room
    /// for one more entry (`keep` is never evicted).
    fn evict_for(&mut self, keep: usize) {
        loop {
            let bytes: usize = self.slots.values().map(|s| s.ws.resident_bytes()).sum();
            if self.slots.len() < MAX_RESIDENT_SLOTS && bytes <= RESIDENT_BYTE_BUDGET {
                return;
            }
            let victim = self
                .slots
                .iter()
                .filter(|(&dim, _)| dim != keep)
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(&dim, _)| dim);
            match victim {
                Some(dim) => {
                    self.slots.remove(&dim);
                    self.evictions += 1;
                }
                None => return,
            }
        }
    }

    /// Usage counters and resident-size estimate.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            resident: self.slots.len() as u64,
            resident_bytes: self
                .slots
                .values()
                .map(|slot| slot.ws.resident_bytes() as u64)
                .sum(),
        }
    }

    /// Number of workspaces evicted by the residency budgets so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops all resident workspaces (counters are kept).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

thread_local! {
    static THREAD_POOL: RefCell<WorkspacePool> = RefCell::new(WorkspacePool::new());
}

/// Runs `f` with this thread's workspace pool.
///
/// Every thread owns exactly one pool, so the sweep harness's worker threads
/// reuse warm buffers across tasks with no coordination.  If the pool is
/// already borrowed further up the stack (a kernel re-entering a pooled
/// wrapper), `f` runs against a fresh temporary pool instead — correct, just
/// without reuse.
pub fn with_thread_pool<R>(f: impl FnOnce(&mut WorkspacePool) -> R) -> R {
    THREAD_POOL.with(|cell| match cell.try_borrow_mut() {
        Ok(mut pool) => f(&mut pool),
        Err(_) => f(&mut WorkspacePool::new()),
    })
}

/// Usage counters of this thread's pool (zeros while the pool is borrowed).
pub fn thread_pool_stats() -> PoolStats {
    THREAD_POOL.with(|cell| {
        cell.try_borrow()
            .map(|pool| pool.stats())
            .unwrap_or_default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_counts_hits_and_misses() {
        let mut pool = WorkspacePool::new();
        pool.get(4);
        pool.get(4);
        pool.get(8);
        let stats = pool.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.resident, 2);
        pool.clear();
        assert_eq!(pool.stats().resident, 0);
    }

    #[test]
    fn thread_pool_is_reentrancy_safe() {
        let outer = with_thread_pool(|pool| {
            pool.get(3);
            // Re-entering while borrowed must not panic; it falls back to a
            // temporary pool.
            with_thread_pool(|inner| inner.get(3).resident_bytes())
        });
        let _ = outer;
        assert!(thread_pool_stats().misses >= 1);
    }

    #[test]
    fn residency_is_bounded_with_lru_eviction() {
        let mut pool = WorkspacePool::new();
        for n in 1..=(MAX_RESIDENT_SLOTS + 8) {
            pool.get(n);
        }
        let stats = pool.stats();
        assert!(stats.resident <= MAX_RESIDENT_SLOTS as u64);
        assert!(pool.evictions() >= 8);
        // The most recent dimensions survive; the oldest were evicted.
        let newest = MAX_RESIDENT_SLOTS + 8;
        let before = pool.stats().misses;
        pool.get(newest);
        assert_eq!(pool.stats().misses, before, "newest dimension stayed warm");
    }

    #[test]
    fn stats_merge_elementwise() {
        let a = PoolStats {
            hits: 1,
            misses: 2,
            resident: 3,
            resident_bytes: 4,
        };
        let b = PoolStats {
            hits: 10,
            misses: 20,
            resident: 30,
            resident_bytes: 40,
        };
        let m = a.merged(b);
        assert_eq!(m.hits, 11);
        assert_eq!(m.misses, 22);
        assert_eq!(m.resident, 33);
        assert_eq!(m.resident_bytes, 44);
    }
}
