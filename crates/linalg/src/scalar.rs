//! A minimal complex scalar type used to report eigenvalues.
//!
//! The crate performs all matrix arithmetic over `f64`; complex numbers only
//! appear as *results* (eigenvalues of real matrices come in conjugate pairs).

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// ```
/// use ds_linalg::Complex;
/// let z = Complex::new(3.0, 4.0);
/// assert!((z.abs() - 5.0).abs() < 1e-15);
/// assert_eq!(z.conj(), Complex::new(3.0, -4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// The imaginary unit `i`.
    pub fn i() -> Self {
        Complex { re: 0.0, im: 1.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus (absolute value), computed with `hypot` to avoid overflow.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns an infinite value if `self` is zero, mirroring `1.0 / 0.0`.
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).max(0.0).sqrt();
        Complex {
            re,
            im: if self.im >= 0.0 { im_mag } else { -im_mag },
        }
    }

    /// Returns `true` when the imaginary part is negligible relative to `tol`.
    pub fn is_real(self, tol: f64) -> bool {
        self.im.abs() <= tol
    }

    /// Returns `true` when the real part is negligible relative to `tol`,
    /// i.e. the value lies (numerically) on the imaginary axis.
    pub fn is_imaginary(self, tol: f64) -> bool {
        self.re.abs() <= tol
    }

    /// Scales by a real factor.
    pub fn scale(self, factor: f64) -> Self {
        Complex {
            re: self.re * factor,
            im: self.im * factor,
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    // Multiplying by the reciprocal is the standard robust complex division.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trip() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        let sum = a + b;
        assert_eq!(sum, Complex::new(-2.0, 2.5));
        let prod = a * b;
        assert_eq!(prod, Complex::new(-3.0 - 1.0, 0.5 - 6.0));
        let quotient = prod / b;
        assert!((quotient - a).abs() < 1e-14);
    }

    #[test]
    fn conj_and_abs() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        assert!((z.abs() - 5.0).abs() < 1e-15);
        assert!((z.abs_sq() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn sqrt_of_negative_real() {
        let z = Complex::from_real(-4.0);
        let r = z.sqrt();
        assert!(r.re.abs() < 1e-15);
        assert!((r.im - 2.0).abs() < 1e-15);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(2.5, -1.25);
        let r = z.sqrt();
        assert!((r * r - z).abs() < 1e-12);
    }

    #[test]
    fn recip_multiplies_to_one() {
        let z = Complex::new(0.3, -7.0);
        let one = z * z.recip();
        assert!((one - Complex::from_real(1.0)).abs() < 1e-14);
    }

    #[test]
    fn realness_checks() {
        assert!(Complex::new(1.0, 1e-14).is_real(1e-12));
        assert!(!Complex::new(1.0, 1e-3).is_real(1e-12));
        assert!(Complex::new(1e-14, 2.0).is_imaginary(1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn from_real_conversion() {
        let z: Complex = 4.25.into();
        assert_eq!(z, Complex::new(4.25, 0.0));
    }
}
