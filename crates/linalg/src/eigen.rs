//! Eigenvalue computations for general (unsymmetric) real matrices.

use crate::decomp::schur::{self, RealSchur};
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::scalar::Complex;
use crate::workspace::{self, EigenWorkspace};

/// Computes all eigenvalues of a square real matrix.
///
/// The eigenvalues of a real matrix come in complex-conjugate pairs; they are
/// returned in the order induced by the real Schur form.
///
/// # Errors
///
/// Propagates the errors of [`schur::real_schur`].
///
/// ```
/// # use ds_linalg::{Matrix, eigen};
/// # fn main() -> Result<(), ds_linalg::LinalgError> {
/// let rotation = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
/// let eig = eigen::eigenvalues(&rotation)?;
/// assert!(eig.iter().all(|z| z.re.abs() < 1e-12 && (z.im.abs() - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>, LinalgError> {
    workspace::with_thread_pool(|pool| eigenvalues_in(a, pool.get(a.rows())))
}

/// Computes all eigenvalues of `a` using caller-provided scratch buffers.
///
/// Runs the Q-free Schur iteration ([`schur::real_schur_t_only`]) entirely
/// inside the workspace: the only allocation is the returned vector (use
/// [`eigenvalues_into`] to avoid even that).
///
/// # Errors
///
/// Propagates the errors of [`schur::real_schur`].
pub fn eigenvalues_in(a: &Matrix, ws: &mut EigenWorkspace) -> Result<Vec<Complex>, LinalgError> {
    // ds-lint: allow(hot-path-alloc) -- allocates only the caller-owned result vector, per the documented contract; the zero-alloc path is eigenvalues_into
    let mut out = Vec::with_capacity(a.rows());
    eigenvalues_into(a, ws, &mut out)?;
    Ok(out)
}

/// Computes all eigenvalues of `a` into a caller-provided vector (cleared
/// first) using caller-provided scratch buffers — zero heap allocation in
/// steady state.
///
/// # Errors
///
/// Propagates the errors of [`schur::real_schur`].
pub fn eigenvalues_into(
    a: &Matrix,
    ws: &mut EigenWorkspace,
    out: &mut Vec<Complex>,
) -> Result<(), LinalgError> {
    out.clear();
    ws.t.copy_from(a);
    schur::real_schur_in(&mut ws.t, None, &mut ws.refl)?;
    push_eigenvalues_from_schur(&ws.t, out);
    Ok(())
}

/// Extracts eigenvalues from a quasi-upper-triangular (real Schur) matrix.
pub fn eigenvalues_from_schur(t: &Matrix) -> Vec<Complex> {
    let mut out = Vec::with_capacity(t.rows());
    push_eigenvalues_from_schur(t, &mut out);
    out
}

/// Appends the eigenvalues of a quasi-upper-triangular matrix to `out`.
fn push_eigenvalues_from_schur(t: &Matrix, out: &mut Vec<Complex>) {
    let n = t.rows();
    out.reserve(n);
    let mut i = 0;
    while i < n {
        if i + 1 < n && t[(i + 1, i)] != 0.0 {
            let (l1, l2) = eig_2x2(t[(i, i)], t[(i, i + 1)], t[(i + 1, i)], t[(i + 1, i + 1)]);
            out.push(l1);
            out.push(l2);
            i += 2;
        } else {
            out.push(Complex::from_real(t[(i, i)]));
            i += 1;
        }
    }
}

/// Eigenvalues of the 2x2 matrix `[[a, b], [c, d]]`.
pub fn eig_2x2(a: f64, b: f64, c: f64, d: f64) -> (Complex, Complex) {
    let trace = a + d;
    let det = a * d - b * c;
    let half = trace / 2.0;
    let disc = half * half - det;
    if disc >= 0.0 {
        let root = disc.sqrt();
        (
            Complex::from_real(half + root),
            Complex::from_real(half - root),
        )
    } else {
        let root = (-disc).sqrt();
        (Complex::new(half, root), Complex::new(half, -root))
    }
}

/// Spectral abscissa: the largest real part among the eigenvalues.
///
/// # Errors
///
/// Propagates the errors of [`eigenvalues`].
pub fn spectral_abscissa(a: &Matrix) -> Result<f64, LinalgError> {
    let eig = eigenvalues(a)?;
    Ok(eig.iter().map(|z| z.re).fold(f64::NEG_INFINITY, f64::max))
}

/// Spectral radius: the largest modulus among the eigenvalues.
///
/// # Errors
///
/// Propagates the errors of [`eigenvalues`].
pub fn spectral_radius(a: &Matrix) -> Result<f64, LinalgError> {
    let eig = eigenvalues(a)?;
    Ok(eig.iter().map(|z| z.abs()).fold(0.0, f64::max))
}

/// Returns `true` when every eigenvalue has a strictly negative real part
/// (Hurwitz stability), using `tol` as the allowed margin around zero.
///
/// # Errors
///
/// Propagates the errors of [`eigenvalues`].
pub fn is_hurwitz(a: &Matrix, tol: f64) -> Result<bool, LinalgError> {
    Ok(spectral_abscissa(a)? < -tol.abs() || a.rows() == 0)
}

/// Returns the eigenvalues whose real part is within `tol` of zero
/// (i.e. numerically on the imaginary axis).
///
/// # Errors
///
/// Propagates the errors of [`eigenvalues`].
pub fn imaginary_axis_eigenvalues(a: &Matrix, tol: f64) -> Result<Vec<Complex>, LinalgError> {
    let eig = eigenvalues(a)?;
    Ok(eig.into_iter().filter(|z| z.re.abs() <= tol).collect())
}

/// Re-exported Schur result type for callers that need the factors.
pub type Schur = RealSchur;

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real_parts(v: &[Complex]) -> Vec<f64> {
        let mut r: Vec<f64> = v.iter().map(|z| z.re).collect();
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        r
    }

    #[test]
    fn eigenvalues_of_triangular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 5.0, -3.0], &[0.0, -2.0, 4.0], &[0.0, 0.0, 7.0]]);
        let e = eigenvalues(&a).unwrap();
        let re = sorted_real_parts(&e);
        assert!((re[0] + 2.0).abs() < 1e-10);
        assert!((re[1] - 1.0).abs() < 1e-10);
        assert!((re[2] - 7.0).abs() < 1e-10);
    }

    #[test]
    fn complex_pair_from_rotation_scaling() {
        // Eigenvalues 2 ± 3i.
        let a = Matrix::from_rows(&[&[2.0, 3.0], &[-3.0, 2.0]]);
        let e = eigenvalues(&a).unwrap();
        assert!(e.iter().all(|z| (z.re - 2.0).abs() < 1e-10));
        assert!(e.iter().any(|z| (z.im - 3.0).abs() < 1e-10));
        assert!(e.iter().any(|z| (z.im + 3.0).abs() < 1e-10));
    }

    #[test]
    fn eig_2x2_real_and_complex() {
        let (l1, l2) = eig_2x2(3.0, 0.0, 0.0, -1.0);
        assert!((l1.re - 3.0).abs() < 1e-14 && l1.im == 0.0);
        assert!((l2.re + 1.0).abs() < 1e-14);
        let (c1, c2) = eig_2x2(0.0, 1.0, -1.0, 0.0);
        assert!((c1.im - 1.0).abs() < 1e-14);
        assert!((c2.im + 1.0).abs() < 1e-14);
    }

    #[test]
    fn stability_predicates() {
        let stable = Matrix::from_rows(&[&[-1.0, 10.0], &[0.0, -0.5]]);
        assert!(is_hurwitz(&stable, 1e-12).unwrap());
        let unstable = Matrix::from_rows(&[&[0.1, 0.0], &[0.0, -2.0]]);
        assert!(!is_hurwitz(&unstable, 1e-12).unwrap());
        assert!((spectral_abscissa(&unstable).unwrap() - 0.1).abs() < 1e-10);
    }

    #[test]
    fn spectral_radius_of_scaled_rotation() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[-2.0, 0.0]]);
        assert!((spectral_radius(&a).unwrap() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn imaginary_axis_detection() {
        let a = Matrix::block_diag(&[
            &Matrix::from_rows(&[&[0.0, 4.0], &[-4.0, 0.0]]), // ±4i
            &Matrix::from_rows(&[&[-1.0]]),
        ]);
        let on_axis = imaginary_axis_eigenvalues(&a, 1e-8).unwrap();
        assert_eq!(on_axis.len(), 2);
        assert!(on_axis.iter().all(|z| (z.im.abs() - 4.0).abs() < 1e-8));
    }

    #[test]
    fn trace_and_determinant_consistency() {
        let a = Matrix::from_fn(8, 8, |i, j| ((i * 5 + j * 9) % 7) as f64 * 0.4 - 1.0);
        let e = eigenvalues(&a).unwrap();
        let sum_re: f64 = e.iter().map(|z| z.re).sum();
        assert!((sum_re - a.trace()).abs() < 1e-8);
        // Product of eigenvalues equals determinant (compare moduli of products).
        let det = crate::decomp::lu::det(&a).unwrap();
        let prod = e.iter().fold(Complex::from_real(1.0), |acc, &z| acc * z);
        assert!((prod.re - det).abs() < 1e-6 * det.abs().max(1.0));
        assert!(prod.im.abs() < 1e-6 * det.abs().max(1.0));
    }
}
