//! SPICE engineering-notation value parsing.
//!
//! A value token is a decimal number optionally followed by a scale suffix
//! and an ignored alphabetic unit annotation, as in classic SPICE:
//!
//! | suffix | scale  | suffix | scale |
//! |--------|--------|--------|-------|
//! | `t`    | 1e12   | `m`    | 1e−3  |
//! | `g`    | 1e9    | `u`    | 1e−6  |
//! | `meg`  | 1e6    | `n`    | 1e−9  |
//! | `k`    | 1e3    | `p`    | 1e−12 |
//! |        |        | `f`    | 1e−15 |
//!
//! Suffixes are case-insensitive (`MEG` = `meg` = mega; `m` = milli — the
//! classic SPICE gotcha), and trailing letters after the suffix are ignored
//! as a unit (`10pF`, `5ohm`).  Note that a bare `f` suffix is femto, not
//! farad.

/// Parses one engineering-notation value token.
///
/// # Errors
///
/// Describes the malformation; the caller attaches line/column.
pub fn parse_value(text: &str) -> Result<f64, String> {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    if matches!(bytes.first(), Some(b'+') | Some(b'-')) {
        i += 1;
    }
    let digits_start = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let int_digits = i - digits_start;
    let mut frac_digits = 0usize;
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        frac_digits = i - start;
    }
    if int_digits + frac_digits == 0 {
        return Err(format!("invalid numeric value '{text}'"));
    }
    // An exponent only counts when at least one digit follows; otherwise the
    // `e` belongs to the unit annotation.
    if i < bytes.len() && matches!(bytes[i], b'e' | b'E') {
        let mut j = i + 1;
        if j < bytes.len() && matches!(bytes[j], b'+' | b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            i = j;
        }
    }
    let mantissa: f64 = text[..i]
        .parse()
        .map_err(|_| format!("invalid numeric value '{text}'"))?;
    let rest = text[i..].to_ascii_lowercase();
    let (scale, unit) = if let Some(unit) = rest.strip_prefix("meg") {
        (1e6, unit)
    } else {
        match rest.as_bytes().first() {
            Some(b't') => (1e12, &rest[1..]),
            Some(b'g') => (1e9, &rest[1..]),
            Some(b'k') => (1e3, &rest[1..]),
            Some(b'm') => (1e-3, &rest[1..]),
            Some(b'u') => (1e-6, &rest[1..]),
            Some(b'n') => (1e-9, &rest[1..]),
            Some(b'p') => (1e-12, &rest[1..]),
            Some(b'f') => (1e-15, &rest[1..]),
            _ => (1.0, rest.as_str()),
        }
    };
    if !unit.is_empty() && !unit.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(format!(
            "invalid unit annotation '{unit}' in value '{text}'"
        ));
    }
    let value = mantissa * scale;
    if !value.is_finite() {
        return Err(format!("value '{text}' overflows to a non-finite number"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> f64 {
        parse_value(text).unwrap()
    }

    #[test]
    fn plain_numbers() {
        assert_eq!(v("42"), 42.0);
        assert_eq!(v("4.7"), 4.7);
        assert_eq!(v("-3.5"), -3.5);
        assert_eq!(v("+0.25"), 0.25);
        assert_eq!(v(".5"), 0.5);
        assert_eq!(v("2."), 2.0);
        assert_eq!(v("1e-3"), 1e-3);
        assert_eq!(v("2.5E6"), 2.5e6);
        assert_eq!(v("1e+2"), 100.0);
    }

    #[test]
    fn engineering_suffixes() {
        assert_eq!(v("1k"), 1e3);
        assert_eq!(v("4.7u"), 4.7e-6);
        assert_eq!(v("2meg"), 2e6);
        assert_eq!(v("2MEG"), 2e6);
        assert_eq!(v("3m"), 3e-3);
        assert_eq!(v("10n"), 1e-8);
        assert_eq!(v("1p"), 1e-12);
        assert_eq!(v("1f"), 1e-15);
        assert_eq!(v("1t"), 1e12);
        assert_eq!(v("5g"), 5e9);
    }

    #[test]
    fn unit_annotations_are_ignored() {
        assert_eq!(v("10pF"), 1e-11);
        assert_eq!(v("5ohm"), 5.0);
        assert_eq!(v("2.2kohm"), 2200.0);
        assert_eq!(v("1uH"), 1e-6);
        // `e` not followed by a digit is a unit letter, not an exponent.
        assert_eq!(v("3e"), 3.0);
    }

    #[test]
    fn exponent_and_suffix_combine() {
        assert_eq!(v("1e3k"), 1e6);
        assert_eq!(v("1.5e-2m"), 1.5e-5);
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(parse_value("abc").is_err());
        assert!(parse_value("").is_err());
        assert!(parse_value("1k2").is_err());
        assert!(parse_value("1.2.3").is_err());
        assert!(parse_value("-").is_err());
        assert!(parse_value("1e400").is_err());
        assert!(parse_value("1u-").is_err());
    }
}
