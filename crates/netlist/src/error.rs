//! Deck parse errors with exact line/column diagnostics.

use std::fmt;

/// A deck parse failure, pointing at the offending token.
///
/// `line` is the 1-based *physical* line (continuation lines report their own
/// line number, not the logical line they extend) and `col` is the 1-based
/// character column of the token the parser rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based physical line of the offending token.
    pub line: usize,
    /// 1-based character column of the offending token.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at `line:col`.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position() {
        let e = ParseError::new(3, 7, "bad token");
        assert_eq!(e.to_string(), "line 3, column 7: bad token");
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ParseError>();
    }
}
