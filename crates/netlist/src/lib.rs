//! # ds-netlist
//!
//! The SPICE-deck front-end of the passivity suite: a hand-rolled parser for
//! a SPICE-style netlist format (`R/L/C/G` elements, `K` mutual-inductance
//! couplings, engineering-notation values, comments and continuations,
//! `.port`/`.expect`/`.end` directives) with exact line/column diagnostics,
//! plus a canonical renderer and a stable content hash so decks can be
//! fingerprinted by the sweep harness's persistent result store.
//!
//! Vendor policy: like the harness's JSON layer, the parser is hand-rolled —
//! the build environment has no registry access, and the accepted grammar is
//! small enough that a recursive tokenizer is clearer than a dependency.
//!
//! # Example
//!
//! ```
//! let deck = ds_netlist::parse_deck(
//!     "* RC divider\n\
//!      R1 in mid 1k\n\
//!      C1 mid 0 1u\n\
//!      .port in\n\
//!      .end\n",
//! )?;
//! assert_eq!(deck.netlist.num_nodes, 2);
//! assert_eq!(deck.netlist.elements.len(), 2);
//! assert!(deck.expected_passive());
//! # Ok::<(), ds_netlist::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod parse;
pub mod render;
pub mod value;

pub use error::ParseError;
pub use parse::parse_deck;
pub use render::{fnv1a64, render_netlist};
pub use value::parse_value;

use ds_circuits::Netlist;

/// A parsed deck: the netlist, the original node names (index `i` holds the
/// uppercased name of netlist node `i + 1`), and the optional `.expect`
/// ground-truth annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Deck {
    /// The parsed netlist, nodes numbered by first appearance.
    pub netlist: Netlist,
    /// Original node names, in numbering order.
    pub node_names: Vec<String>,
    /// The `.expect` annotation: `Some(true)` for `.expect passive`,
    /// `Some(false)` for `.expect nonpassive`, `None` when absent.
    pub expect: Option<bool>,
}

impl Deck {
    /// The canonical text of this deck (see [`render_netlist`]): node names
    /// erased, values in shortest round-trip form — the normalization behind
    /// [`Deck::content_hash`].
    pub fn canonical_text(&self) -> String {
        render_netlist(&self.netlist, self.expect)
    }

    /// Stable 64-bit content fingerprint of the canonicalized deck (FNV-1a).
    /// Decks differing only in comments, whitespace, node naming or value
    /// spelling hash identically.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(&self.canonical_text())
    }

    /// Ground truth for harnesses: the `.expect` annotation when present,
    /// otherwise passivity-by-construction of the netlist (every element
    /// individually passive and the coupled inductance matrix PSD).
    pub fn expected_passive(&self) -> bool {
        self.expect
            .unwrap_or_else(|| self.netlist.is_passive_by_construction())
    }
}

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::error::ParseError;
    pub use crate::parse::parse_deck;
    pub use crate::render::{fnv1a64, render_netlist};
    pub use crate::Deck;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_circuits::{Element, Port};

    const COUPLED: &str = "\
* two-winding transformer with resistive terminations
L1 in 0 1.0
L2 out 0 1.0
K1 L1 L2 0.5
R1 out 0 1k
.port in
.port out
.end
";

    #[test]
    fn parses_coupled_deck() {
        let deck = parse_deck(COUPLED).unwrap();
        assert_eq!(deck.netlist.num_nodes, 2);
        assert_eq!(deck.netlist.elements.len(), 3);
        assert_eq!(deck.netlist.couplings.len(), 1);
        assert_eq!(deck.netlist.ports.len(), 2);
        assert_eq!(deck.node_names, vec!["IN".to_string(), "OUT".to_string()]);
        assert!(deck.netlist.validate().is_ok());
        assert!(deck.expected_passive());
    }

    #[test]
    fn canonical_text_is_a_parse_render_fixed_point() {
        let deck = parse_deck(COUPLED).unwrap();
        let canon = deck.canonical_text();
        let reparsed = parse_deck(&canon).unwrap();
        assert_eq!(reparsed.netlist, deck.netlist);
        assert_eq!(reparsed.canonical_text(), canon);
    }

    #[test]
    fn hash_is_invariant_under_renaming_comments_and_value_spelling() {
        let renamed = "\
LA primary gnd 1000m ; primary winding
* a comment line
LB secondary gnd 1
KX LA LB 0.5
RT secondary gnd
+ 1000
.port primary
.port secondary
";
        let a = parse_deck(COUPLED).unwrap();
        let b = parse_deck(renamed).unwrap();
        // Labels differ, so the netlists differ — but the circuits are
        // α-equivalent up to labels and nodes; structural fields agree.
        assert_eq!(a.netlist.elements, b.netlist.elements);
        assert_eq!(a.netlist.ports, b.netlist.ports);
        // And a label-identical respelling hashes identically.
        let respelled = COUPLED
            .replace("1k", "0.001MEG")
            .replace("in", "node_a")
            .replace("out", "node_b");
        let c = parse_deck(&respelled).unwrap();
        assert_eq!(a.content_hash(), c.content_hash());
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn expect_annotation_overrides_construction() {
        let deck = parse_deck("R1 a 0 -5\n.port a\n.expect nonpassive\n.end\n").unwrap();
        assert_eq!(deck.expect, Some(false));
        assert!(!deck.expected_passive());
        let deck = parse_deck("R1 a 0 5\n.port a\n").unwrap();
        assert_eq!(deck.expect, None);
        assert!(deck.expected_passive());
    }

    #[test]
    fn ground_aliases_and_conductance() {
        let deck = parse_deck("G1 a GND 0.25\nC1 a 0 1u\n.port a\n").unwrap();
        assert_eq!(deck.netlist.num_nodes, 1);
        assert_eq!(
            deck.netlist.elements[0],
            Element::Conductance {
                a: 1,
                b: 0,
                value: 0.25
            }
        );
        assert_eq!(deck.netlist.ports[0], Port::to_ground(1));
    }
}
