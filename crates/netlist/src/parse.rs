//! The SPICE-deck parser: physical lines → logical lines → netlist.
//!
//! Grammar accepted (case-insensitive, whitespace-separated fields):
//!
//! ```text
//! * full-line comment                 ; trailing comment after a semicolon
//! Rname  node node value              resistor        (ohms, may be negative)
//! Lname  node node value              inductor        (henries, > 0)
//! Cname  node node value              capacitor       (farads, > 0)
//! Gname  node node value              conductance     (siemens, may be negative)
//! Kname  Lname Lname k                mutual coupling (|k| ≤ 1)
//! + continuation of the previous line
//! .port  node [node]                  current-driven port (default return: ground)
//! .expect passive|nonpassive          ground-truth annotation for harnesses
//! .end                                optional terminator; nothing may follow
//! ```
//!
//! Node tokens are arbitrary names; `0` and `gnd` are ground.  Non-ground
//! nodes are numbered by first appearance, so two decks differing only in
//! node naming parse to identical netlists.  Values use the engineering
//! notation of [`crate::value`].

use crate::error::ParseError;
use crate::value::parse_value;
use crate::Deck;
use ds_circuits::{CircuitError, Element, Netlist, Port};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Token {
    text: String,
    line: usize,
    col: usize,
}

/// Splits one physical line into tokens, tracking 1-based character columns.
/// `offset` shifts the starting column (used for continuation bodies).
fn tokenize_into(tokens: &mut Vec<Token>, text: &str, line: usize, col_offset: usize) {
    let mut col = col_offset;
    let mut current = String::new();
    let mut start = 0usize;
    for ch in text.chars() {
        col += 1;
        if ch.is_whitespace() {
            if !current.is_empty() {
                tokens.push(Token {
                    text: std::mem::take(&mut current),
                    line,
                    col: start,
                });
            }
        } else {
            if current.is_empty() {
                start = col;
            }
            current.push(ch);
        }
    }
    if !current.is_empty() {
        tokens.push(Token {
            text: current,
            line,
            col: start,
        });
    }
}

/// Strips a trailing `;` comment from a physical line.
fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Assembles the logical lines: comments and blanks dropped, `+`
/// continuations folded into their predecessor.
fn logical_lines(source: &str) -> Result<Vec<Vec<Token>>, ParseError> {
    let mut lines: Vec<Vec<Token>> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let lineno = i + 1;
        let body = strip_comment(raw);
        let trimmed = body.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        let leading = body.chars().count() - trimmed.chars().count();
        if let Some(rest) = trimmed.strip_prefix('+') {
            let Some(last) = lines.last_mut() else {
                return Err(ParseError::new(
                    lineno,
                    leading + 1,
                    "continuation line before any netlist line",
                ));
            };
            tokenize_into(last, rest, lineno, leading + 1);
        } else {
            let mut tokens = Vec::new();
            tokenize_into(&mut tokens, trimmed, lineno, leading);
            lines.push(tokens);
        }
    }
    Ok(lines)
}

/// Maps node-name tokens to netlist indices: ground aliases to 0, everything
/// else numbered by first appearance.
struct NodeMap {
    indices: HashMap<String, usize>,
    names: Vec<String>,
}

impl NodeMap {
    fn new() -> Self {
        NodeMap {
            indices: HashMap::new(),
            names: Vec::new(),
        }
    }

    fn resolve(&mut self, token: &Token) -> usize {
        let name = token.text.to_ascii_uppercase();
        if name == "0" || name == "GND" {
            return 0;
        }
        *self.indices.entry(name.clone()).or_insert_with(|| {
            self.names.push(name);
            self.names.len()
        })
    }
}

fn expect_fields<'a>(
    tokens: &'a [Token],
    count: usize,
    usage: &str,
) -> Result<&'a [Token], ParseError> {
    let head = &tokens[0];
    if tokens.len() < count + 1 {
        return Err(ParseError::new(
            head.line,
            head.col,
            format!("'{}' expects {count} fields: {usage}", head.text),
        ));
    }
    if tokens.len() > count + 1 {
        let extra = &tokens[count + 1];
        return Err(ParseError::new(
            extra.line,
            extra.col,
            format!("unexpected token '{}' after {usage}", extra.text),
        ));
    }
    Ok(&tokens[1..])
}

fn parse_value_at(token: &Token) -> Result<f64, ParseError> {
    parse_value(&token.text).map_err(|m| ParseError::new(token.line, token.col, m))
}

/// Parses a complete SPICE-style deck.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first offending token.
pub fn parse_deck(source: &str) -> Result<Deck, ParseError> {
    let lines = logical_lines(source)?;
    if lines.is_empty() {
        return Err(ParseError::new(1, 1, "deck contains no netlist lines"));
    }
    let mut nodes = NodeMap::new();
    let mut netlist = Netlist::new(0);
    let mut expect: Option<bool> = None;
    let mut seen_names: HashMap<String, (usize, usize)> = HashMap::new();
    let mut coupling_pos: HashMap<String, (usize, usize)> = HashMap::new();
    let mut ended = false;
    let mut last_line = 1usize;

    for tokens in &lines {
        let head = &tokens[0];
        last_line = tokens.iter().map(|t| t.line).max().unwrap_or(head.line);
        if ended {
            return Err(ParseError::new(head.line, head.col, "content after .end"));
        }
        if let Some(directive) = head.text.strip_prefix('.') {
            match directive.to_ascii_lowercase().as_str() {
                "port" => {
                    if tokens.len() < 2 || tokens.len() > 3 {
                        return Err(ParseError::new(
                            head.line,
                            head.col,
                            ".port expects 1 or 2 node arguments",
                        ));
                    }
                    let plus = nodes.resolve(&tokens[1]);
                    let minus = tokens.get(2).map_or(0, |t| nodes.resolve(t));
                    netlist.port(Port {
                        node_plus: plus,
                        node_minus: minus,
                    });
                }
                "expect" => {
                    let arg = tokens.get(1).ok_or_else(|| {
                        ParseError::new(
                            head.line,
                            head.col,
                            ".expect expects 'passive' or 'nonpassive'",
                        )
                    })?;
                    expect = match arg.text.to_ascii_lowercase().as_str() {
                        "passive" => Some(true),
                        "nonpassive" => Some(false),
                        _ => {
                            return Err(ParseError::new(
                                arg.line,
                                arg.col,
                                format!(
                                    "unknown .expect argument '{}' (expected 'passive' or 'nonpassive')",
                                    arg.text
                                ),
                            ))
                        }
                    };
                    if let Some(extra) = tokens.get(2) {
                        return Err(ParseError::new(
                            extra.line,
                            extra.col,
                            format!("unexpected token '{}' after .expect", extra.text),
                        ));
                    }
                }
                "end" => {
                    if let Some(extra) = tokens.get(1) {
                        return Err(ParseError::new(
                            extra.line,
                            extra.col,
                            format!("unexpected token '{}' after .end", extra.text),
                        ));
                    }
                    ended = true;
                }
                other => {
                    return Err(ParseError::new(
                        head.line,
                        head.col,
                        format!("unknown directive '.{other}'"),
                    ));
                }
            }
            continue;
        }

        // Element line: the first letter of the name selects the type.
        let name = head.text.to_ascii_uppercase();
        let kind = name.chars().next().expect("tokens are never empty");
        if let Some(&(line, col)) = seen_names.get(&name) {
            return Err(ParseError::new(
                head.line,
                head.col,
                format!(
                    "duplicate element name '{name}' (first defined at line {line}, column {col})"
                ),
            ));
        }
        seen_names.insert(name.clone(), (head.line, head.col));
        match kind {
            'R' | 'L' | 'C' | 'G' => {
                let fields = expect_fields(tokens, 3, "name node node value")?;
                let a = nodes.resolve(&fields[0]);
                let b = nodes.resolve(&fields[1]);
                let value = parse_value_at(&fields[2])?;
                let element = match kind {
                    'R' => {
                        if value == 0.0 {
                            return Err(ParseError::new(
                                fields[2].line,
                                fields[2].col,
                                "resistance must be nonzero (a 0 Ω resistor is a short)",
                            ));
                        }
                        Element::Resistor { a, b, value }
                    }
                    'L' => {
                        if value <= 0.0 {
                            return Err(ParseError::new(
                                fields[2].line,
                                fields[2].col,
                                format!("inductance must be positive, got {value}"),
                            ));
                        }
                        Element::Inductor { a, b, value }
                    }
                    'C' => {
                        if value <= 0.0 {
                            return Err(ParseError::new(
                                fields[2].line,
                                fields[2].col,
                                format!("capacitance must be positive, got {value}"),
                            ));
                        }
                        Element::Capacitor { a, b, value }
                    }
                    _ => Element::Conductance { a, b, value },
                };
                if a == b {
                    return Err(ParseError::new(
                        head.line,
                        head.col,
                        format!("element '{name}' is shorted (both terminals on the same node)"),
                    ));
                }
                netlist.add_named(name, element);
            }
            'K' => {
                let fields = expect_fields(tokens, 3, "name inductor inductor k")?;
                let l1 = fields[0].text.to_ascii_uppercase();
                let l2 = fields[1].text.to_ascii_uppercase();
                let k = parse_value_at(&fields[2])?;
                if !k.is_finite() || k.abs() > 1.0 {
                    return Err(ParseError::new(
                        fields[2].line,
                        fields[2].col,
                        format!("coupling coefficient must satisfy |k| ≤ 1, got {k}"),
                    ));
                }
                if l1 == l2 {
                    return Err(ParseError::new(
                        fields[1].line,
                        fields[1].col,
                        format!("coupling '{name}' couples '{l1}' to itself"),
                    ));
                }
                coupling_pos.insert(name.clone(), (head.line, head.col));
                netlist.couple(name, l1, l2, k);
            }
            _ => {
                return Err(ParseError::new(
                    head.line,
                    head.col,
                    format!("unsupported element type '{kind}' (expected R, L, C, G or K)"),
                ));
            }
        }
    }

    netlist.num_nodes = nodes.names.len();
    if netlist.ports.is_empty() {
        return Err(ParseError::new(
            last_line,
            1,
            "deck declares no .port directive",
        ));
    }
    // Coupling references resolve against the complete element list, so the
    // check runs after all lines; the netlist-level named-element error is
    // attached back to the offending K line.
    if let Err(e) = netlist.resolved_couplings() {
        let name = match &e {
            CircuitError::CouplingTargetNotFound { coupling, .. }
            | CircuitError::CouplingTargetAmbiguous { coupling, .. }
            | CircuitError::BadCoupling { coupling, .. } => Some(coupling.as_str()),
            _ => None,
        };
        let (line, col) = name
            .and_then(|n| coupling_pos.get(n).copied())
            .unwrap_or((last_line, 1));
        return Err(ParseError::new(line, col, e.to_string()));
    }
    Ok(Deck {
        netlist,
        node_names: nodes.names,
        expect,
    })
}
