//! Canonical deck rendering and content hashing.
//!
//! [`render_netlist`] prints a [`Netlist`] back as a deck in *canonical* form:
//! nodes renumbered by first appearance (element order, then port order),
//! values in shortest round-trip decimal, one element per line, labels
//! uppercased.  Parsing the canonical text reproduces the renumbered netlist
//! exactly, which makes the form a fixed point of `parse ∘ render` — the
//! property the deck fingerprint relies on: two decks that differ only in
//! node naming, comments, whitespace, value spelling (`1k` vs `1000`) or
//! continuation layout hash identically.

use ds_circuits::{Element, Netlist};
use std::fmt::Write as _;

/// FNV-1a 64-bit hash, the store-stable content hash of a canonical deck.
pub fn fnv1a64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The first-appearance node renumbering: old index → new index (ground is
/// always 0 and unreferenced nodes keep their relative order at the end).
fn node_permutation(netlist: &Netlist) -> Vec<usize> {
    let mut new_index = vec![0usize; netlist.num_nodes + 1];
    let mut next = 0usize;
    let visit = |node: usize, new_index: &mut Vec<usize>, next: &mut usize| {
        if node > 0 && node < new_index.len() && new_index[node] == 0 {
            *next += 1;
            new_index[node] = *next;
        }
    };
    for element in &netlist.elements {
        let (a, b) = element.terminals();
        visit(a, &mut new_index, &mut next);
        visit(b, &mut new_index, &mut next);
    }
    for port in &netlist.ports {
        visit(port.node_plus, &mut new_index, &mut next);
        visit(port.node_minus, &mut new_index, &mut next);
    }
    for node in 1..new_index.len() {
        visit(node, &mut new_index, &mut next);
    }
    new_index
}

/// The element name to print: the stored label when it already starts with
/// the right type letter, otherwise a synthesized `<letter>AUTO<index>` name
/// — in both cases uniquified against `used` (deterministically, by
/// appending `X`) so the rendered deck never carries duplicate names.
fn element_name(
    label: &str,
    letter: char,
    index: usize,
    used: &mut std::collections::HashSet<String>,
) -> String {
    let upper = label.to_ascii_uppercase();
    let mut name = if upper.starts_with(letter) {
        upper
    } else {
        format!("{letter}AUTO{index}")
    };
    while !used.insert(name.clone()) {
        name.push('X');
    }
    name
}

/// Renders a netlist (plus the optional `.expect` annotation) as a canonical
/// deck.  See the module docs for the canonical-form guarantees; labels that
/// do not start with their element's type letter (or collide after
/// uppercasing) are replaced by synthesized/uniquified names, with `K` lines
/// rewritten to the inductors' *rendered* names — such netlists render to a
/// deck that stamps identically but does not round-trip label-for-label.
pub fn render_netlist(netlist: &Netlist, expect: Option<bool>) -> String {
    let perm = node_permutation(netlist);
    let node = |n: usize| if n == 0 { 0 } else { perm[n] };
    let mut out = String::new();
    let _ = writeln!(out, "* canonical deck: {} nodes", netlist.num_nodes);
    let empty = String::new();
    let mut used = std::collections::HashSet::new();
    // Rendered name of each inductor label (first occurrence wins), so K
    // lines reference the names that actually appear in the output even when
    // labels were synthesized or uniquified.
    let mut inductor_names: std::collections::HashMap<String, String> =
        std::collections::HashMap::new();
    for (i, element) in netlist.elements.iter().enumerate() {
        let label = netlist.labels.get(i).unwrap_or(&empty);
        let (letter, a, b, value) = match *element {
            Element::Resistor { a, b, value } => ('R', a, b, value),
            Element::Inductor { a, b, value } => ('L', a, b, value),
            Element::Capacitor { a, b, value } => ('C', a, b, value),
            Element::Conductance { a, b, value } => ('G', a, b, value),
        };
        let name = element_name(label, letter, i, &mut used);
        if letter == 'L' && !label.is_empty() {
            inductor_names
                .entry(label.clone())
                .or_insert_with(|| name.clone());
        }
        let _ = writeln!(out, "{} {} {} {}", name, node(a), node(b), value);
    }
    let rendered_target = |label: &String| {
        inductor_names
            .get(label)
            .cloned()
            .unwrap_or_else(|| label.to_ascii_uppercase())
    };
    for (i, coupling) in netlist.couplings.iter().enumerate() {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            element_name(&coupling.name, 'K', i, &mut used),
            rendered_target(&coupling.l1),
            rendered_target(&coupling.l2),
            coupling.k
        );
    }
    for port in &netlist.ports {
        let _ = writeln!(
            out,
            ".PORT {} {}",
            node(port.node_plus),
            node(port.node_minus)
        );
    }
    match expect {
        Some(true) => out.push_str(".EXPECT PASSIVE\n"),
        Some(false) => out.push_str(".EXPECT NONPASSIVE\n"),
        None => {}
    }
    out.push_str(".END\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_circuits::Port;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn renders_canonical_order_and_values() {
        let mut net = Netlist::new(2);
        net.add_named(
            "r1",
            Element::Resistor {
                a: 2,
                b: 1,
                value: 1000.0,
            },
        );
        net.named_inductor("L1", 1, 0, 1e-3);
        net.port(Port::to_ground(2));
        let text = render_netlist(&net, Some(true));
        // Node 2 appears first, so it becomes node 1 in canonical form.
        assert!(text.contains("R1 1 2 1000\n"), "got:\n{text}");
        assert!(text.contains("L1 2 0 0.001\n"), "got:\n{text}");
        assert!(text.contains(".PORT 1 0\n"), "got:\n{text}");
        assert!(text.contains(".EXPECT PASSIVE\n"));
        assert!(text.ends_with(".END\n"));
    }

    #[test]
    fn mislabelled_elements_get_synthesized_names() {
        let mut net = Netlist::new(1);
        net.add_named(
            "primary",
            Element::Inductor {
                a: 1,
                b: 0,
                value: 2.0,
            },
        );
        net.port(Port::to_ground(1));
        let text = render_netlist(&net, None);
        assert!(text.contains("LAUTO0 1 0 2\n"), "got:\n{text}");
    }

    #[test]
    fn couplings_between_mislabelled_inductors_still_render_parseable() {
        // Builder netlists may use labels that violate deck naming; the K
        // line must reference the *rendered* (synthesized) names so the
        // canonical text still parses and stamps identically.
        let mut net = Netlist::new(2);
        net.named_inductor("primary", 1, 0, 2.0)
            .named_inductor("secondary", 2, 0, 1.0)
            .resistor(1, 0, 3.0)
            .resistor(2, 0, 4.0)
            .couple("K1", "primary", "secondary", 0.5)
            .port(Port::to_ground(1));
        assert!(net.validate().is_ok());
        let text = render_netlist(&net, None);
        assert!(text.contains("K1 LAUTO0 LAUTO1 0.5\n"), "got:\n{text}");
        let deck = crate::parse_deck(&text).expect("rendered deck must parse");
        assert_eq!(
            deck.netlist.resolved_couplings().unwrap(),
            net.resolved_couplings().unwrap()
        );
        assert_eq!(deck.netlist.elements, net.elements);
    }

    #[test]
    fn colliding_labels_are_uniquified_deterministically() {
        let mut net = Netlist::new(2);
        net.named_inductor("l1", 1, 0, 2.0)
            .named_inductor("L1", 2, 0, 1.0)
            .port(Port::to_ground(1));
        let text = render_netlist(&net, None);
        assert!(text.contains("L1 1 0 2\n"), "got:\n{text}");
        assert!(text.contains("L1X 2 0 1\n"), "got:\n{text}");
        assert!(crate::parse_deck(&text).is_ok());
    }
}
