//! Hamiltonian / skew-Hamiltonian / symplectic structure predicates.

use crate::error::ShhError;
use ds_linalg::Matrix;

/// Builds the canonical symplectic form matrix `J = [[0, I_n], [−I_n, 0]]`
/// of size `2n x 2n`.
pub fn j_matrix(n: usize) -> Matrix {
    let mut j = Matrix::zeros(2 * n, 2 * n);
    for i in 0..n {
        j[(i, n + i)] = 1.0;
        j[(n + i, i)] = -1.0;
    }
    j
}

/// Multiplies `J * m` without forming `J` (row blocks are swapped with a sign).
///
/// # Errors
///
/// Returns [`ShhError::BadDimension`] when `m` does not have an even number of
/// rows.
pub fn j_mul(m: &Matrix) -> Result<Matrix, ShhError> {
    let rows = m.rows();
    if !rows.is_multiple_of(2) {
        return Err(ShhError::BadDimension { shape: m.shape() });
    }
    let n = rows / 2;
    let top = m.block(0, n, 0, m.cols());
    let bottom = m.block(n, rows, 0, m.cols());
    Ok(Matrix::vstack(&[&bottom, &top.scale(-1.0)]))
}

/// Multiplies `Jᵀ * m = −J * m`.
///
/// # Errors
///
/// Returns [`ShhError::BadDimension`] when `m` does not have an even number of
/// rows.
pub fn jt_mul(m: &Matrix) -> Result<Matrix, ShhError> {
    Ok(j_mul(m)?.scale(-1.0))
}

fn check_even_square(m: &Matrix) -> Result<usize, ShhError> {
    if !m.is_square() || !m.rows().is_multiple_of(2) {
        return Err(ShhError::BadDimension { shape: m.shape() });
    }
    Ok(m.rows() / 2)
}

/// Returns `true` when `h` is Hamiltonian: `(J h)ᵀ = J h`.
///
/// # Errors
///
/// Returns [`ShhError::BadDimension`] for matrices that are not even-dimensional
/// and square.
pub fn is_hamiltonian(h: &Matrix, tol: f64) -> Result<bool, ShhError> {
    check_even_square(h)?;
    let jh = j_mul(h)?;
    Ok(jh.is_symmetric(tol))
}

/// Returns `true` when `w` is skew-Hamiltonian: `(J w)ᵀ = −J w`.
///
/// # Errors
///
/// Returns [`ShhError::BadDimension`] for matrices that are not even-dimensional
/// and square.
pub fn is_skew_hamiltonian(w: &Matrix, tol: f64) -> Result<bool, ShhError> {
    check_even_square(w)?;
    let jw = j_mul(w)?;
    Ok(jw.is_skew_symmetric(tol))
}

/// Returns `true` when `s` is symplectic: `sᵀ J s = J`.
///
/// # Errors
///
/// Returns [`ShhError::BadDimension`] for matrices that are not even-dimensional
/// and square.
pub fn is_symplectic(s: &Matrix, tol: f64) -> Result<bool, ShhError> {
    let n = check_even_square(s)?;
    let j = j_matrix(n);
    let stjs = &(&s.transpose() * &j) * s;
    Ok(stjs.approx_eq(&j, tol))
}

/// Returns `true` when `s` is orthogonal symplectic: `sᵀ s = I` and
/// `sᵀ J s = J`.
///
/// # Errors
///
/// Returns [`ShhError::BadDimension`] for matrices that are not even-dimensional
/// and square.
pub fn is_orthogonal_symplectic(s: &Matrix, tol: f64) -> Result<bool, ShhError> {
    let n = check_even_square(s)?;
    let sts = s.transpose_matmul(s)?;
    if !sts.approx_eq(&Matrix::identity(2 * n), tol) {
        return Ok(false);
    }
    is_symplectic(s, tol)
}

/// Builds a Hamiltonian matrix `[[A, G], [Q, −Aᵀ]]` from its blocks,
/// symmetrizing `G` and `Q`.
///
/// # Errors
///
/// Returns [`ShhError::BadDimension`] for inconsistent block dimensions.
pub fn hamiltonian_from_blocks(a: &Matrix, g: &Matrix, q: &Matrix) -> Result<Matrix, ShhError> {
    let n = a.rows();
    if !a.is_square() || g.shape() != (n, n) || q.shape() != (n, n) {
        return Err(ShhError::BadDimension { shape: a.shape() });
    }
    let g_sym = g.symmetric_part();
    let q_sym = q.symmetric_part();
    Ok(Matrix::from_blocks_2x2(
        a,
        &g_sym,
        &q_sym,
        &a.transpose().scale(-1.0),
    ))
}

/// Builds a skew-Hamiltonian matrix `[[A, G], [Q, Aᵀ]]` from its blocks,
/// skew-symmetrizing `G` and `Q`.
///
/// # Errors
///
/// Returns [`ShhError::BadDimension`] for inconsistent block dimensions.
pub fn skew_hamiltonian_from_blocks(
    a: &Matrix,
    g: &Matrix,
    q: &Matrix,
) -> Result<Matrix, ShhError> {
    let n = a.rows();
    if !a.is_square() || g.shape() != (n, n) || q.shape() != (n, n) {
        return Err(ShhError::BadDimension { shape: a.shape() });
    }
    let g_skew = g.skew_part();
    let q_skew = q.skew_part();
    Ok(Matrix::from_blocks_2x2(a, &g_skew, &q_skew, &a.transpose()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn j_matrix_properties() {
        let j = j_matrix(3);
        assert!(j.is_skew_symmetric(0.0));
        // J² = −I
        let j2 = &j * &j;
        assert!(j2.approx_eq(&Matrix::identity(6).scale(-1.0), 1e-15));
        assert!(is_orthogonal_symplectic(&j, 1e-14).unwrap());
    }

    #[test]
    fn j_mul_matches_explicit_product() {
        let j = j_matrix(2);
        let m = Matrix::from_fn(4, 3, |i, jj| (i * 3 + jj) as f64);
        assert!(j_mul(&m).unwrap().approx_eq(&(&j * &m), 1e-15));
        assert!(jt_mul(&m).unwrap().approx_eq(&(&j.transpose() * &m), 1e-15));
        assert!(j_mul(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn hamiltonian_predicate() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let g = Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 2.0]]);
        let q = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, -1.0]]);
        let h = hamiltonian_from_blocks(&a, &g, &q).unwrap();
        assert!(is_hamiltonian(&h, 1e-14).unwrap());
        assert!(!is_skew_hamiltonian(&h, 1e-10).unwrap());
    }

    #[test]
    fn skew_hamiltonian_predicate() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let g = Matrix::from_rows(&[&[0.0, 1.5], &[-1.5, 0.0]]);
        let q = Matrix::from_rows(&[&[0.0, -0.3], &[0.3, 0.0]]);
        let w = skew_hamiltonian_from_blocks(&a, &g, &q).unwrap();
        assert!(is_skew_hamiltonian(&w, 1e-14).unwrap());
        assert!(!is_hamiltonian(&w, 1e-10).unwrap());
    }

    #[test]
    fn identity_is_skew_hamiltonian_not_hamiltonian() {
        let id = Matrix::identity(4);
        assert!(is_skew_hamiltonian(&id, 1e-14).unwrap());
        assert!(!is_hamiltonian(&id, 1e-10).unwrap());
        // J itself is Hamiltonian.
        assert!(is_hamiltonian(&j_matrix(2), 1e-14).unwrap());
    }

    #[test]
    fn symplectic_checks() {
        assert!(is_symplectic(&Matrix::identity(4), 1e-14).unwrap());
        // diag(2, 2, 0.5, 0.5) is symplectic but not orthogonal.
        let s = Matrix::diag(&[2.0, 2.0, 0.5, 0.5]);
        assert!(is_symplectic(&s, 1e-14).unwrap());
        assert!(!is_orthogonal_symplectic(&s, 1e-10).unwrap());
        // A generic diagonal is not symplectic.
        assert!(!is_symplectic(&Matrix::diag(&[2.0, 1.0, 1.0, 1.0]), 1e-10).unwrap());
    }

    #[test]
    fn odd_dimension_rejected() {
        assert!(is_hamiltonian(&Matrix::identity(3), 1e-12).is_err());
        assert!(is_skew_hamiltonian(&Matrix::identity(3), 1e-12).is_err());
        assert!(is_symplectic(&Matrix::identity(3), 1e-12).is_err());
    }

    #[test]
    fn hamiltonian_eigenvalue_symmetry() {
        // Eigenvalues of a Hamiltonian matrix come in ±λ pairs.
        let a = Matrix::from_rows(&[&[-1.0, 0.4], &[0.2, -2.0]]);
        let g = Matrix::identity(2);
        let q = Matrix::identity(2).scale(0.5);
        let h = hamiltonian_from_blocks(&a, &g, &q).unwrap();
        let eig = ds_linalg::eigen::eigenvalues(&h).unwrap();
        for z in &eig {
            let has_mirror = eig
                .iter()
                .any(|w| (w.re + z.re).abs() < 1e-8 && (w.im.abs() - z.im.abs()).abs() < 1e-8);
            assert!(has_mirror, "eigenvalue {z:?} has no mirror image");
        }
    }
}
