//! Paige/Van Loan (PVL) block-triangularization of skew-Hamiltonian matrices.
//!
//! Every skew-Hamiltonian matrix `W` can be reduced by an orthogonal-symplectic
//! similarity `Z` to
//!
//! ```text
//! Zᵀ W Z = [[ W₁₁, Ψ ],
//!           [  0 , W₁₁ᵀ]]        with Ψ skew-symmetric, W₁₁ upper Hessenberg.
//! ```
//!
//! This is the dense O(n³) equivalent of the isotropic Arnoldi process the
//! paper cites from Mehrmann & Watkins [17]; the passivity flow only needs the
//! block-triangular shape (eq. (21)), the Hessenberg structure of `W₁₁` comes
//! for free.

use crate::error::ShhError;
use crate::structure;
use ds_linalg::Matrix;

/// Result of the PVL reduction.
#[derive(Debug, Clone)]
pub struct PvlForm {
    /// Orthogonal symplectic transformation matrix `Z` (`2n x 2n`).
    pub z: Matrix,
    /// The reduced matrix `Zᵀ W Z` in PVL form.
    pub reduced: Matrix,
    /// Half dimension `n`.
    pub half: usize,
}

impl PvlForm {
    /// The upper-left block `W₁₁` (upper Hessenberg).
    pub fn w11(&self) -> Matrix {
        self.reduced.block(0, self.half, 0, self.half)
    }

    /// The upper-right block `Ψ` (skew-symmetric).
    pub fn psi(&self) -> Matrix {
        self.reduced.block(0, self.half, self.half, 2 * self.half)
    }

    /// Frobenius norm of the (2,1) block, which should be numerically zero.
    pub fn lower_left_residual(&self) -> f64 {
        self.reduced
            .block(self.half, 2 * self.half, 0, self.half)
            .norm_fro()
    }
}

/// Applies a symplectic Householder similarity `diag(P, P)` where
/// `P = I − β v vᵀ` acts on the index range `lo..n` of each half.
#[allow(clippy::too_many_arguments)]
fn apply_symplectic_householder(
    w: &mut Matrix,
    z: &mut Matrix,
    n: usize,
    lo: usize,
    v: &[f64],
    beta: f64,
    dots_top: &mut Vec<f64>,
    dots_bot: &mut Vec<f64>,
) {
    if beta == 0.0 {
        return;
    }
    let dim = 2 * n;
    // Left multiplication: rows (lo..lo+len) and (n+lo..n+lo+len).  Row-major
    // two-pass form: accumulate every column's dot product while streaming the
    // affected rows, then apply the rank-1 update the same way.  Per column
    // the additions happen in the same ascending-`k` order as the former
    // column-at-a-time loop, so the result is bit-identical.
    dots_top.clear();
    dots_top.resize(dim, 0.0);
    dots_bot.clear();
    dots_bot.resize(dim, 0.0);
    {
        let wd = w.as_mut_slice();
        for (k, &vk) in v.iter().enumerate() {
            let row_top = &wd[(lo + k) * dim..(lo + k + 1) * dim];
            for (d, &x) in dots_top.iter_mut().zip(row_top.iter()) {
                *d += vk * x;
            }
        }
        for (k, &vk) in v.iter().enumerate() {
            let row_bot = &wd[(n + lo + k) * dim..(n + lo + k + 1) * dim];
            for (d, &x) in dots_bot.iter_mut().zip(row_bot.iter()) {
                *d += vk * x;
            }
        }
        for (k, &vk) in v.iter().enumerate() {
            let row_top = &mut wd[(lo + k) * dim..(lo + k + 1) * dim];
            for (x, &d) in row_top.iter_mut().zip(dots_top.iter()) {
                *x -= (beta * d) * vk;
            }
        }
        for (k, &vk) in v.iter().enumerate() {
            let row_bot = &mut wd[(n + lo + k) * dim..(n + lo + k + 1) * dim];
            for (x, &d) in row_bot.iter_mut().zip(dots_bot.iter()) {
                *x -= (beta * d) * vk;
            }
        }
    }
    // Right multiplication: columns (lo..lo+len) and (n+lo..n+lo+len) of W
    // and Z; both column ranges are contiguous within each row.
    let apply_right = |mat: &mut Matrix| {
        let md = mat.as_mut_slice();
        for row in md.chunks_exact_mut(dim) {
            let mut dot_top = 0.0;
            let mut dot_bot = 0.0;
            for (k, &vk) in v.iter().enumerate() {
                dot_top += row[lo + k] * vk;
                dot_bot += row[n + lo + k] * vk;
            }
            let st = beta * dot_top;
            let sb = beta * dot_bot;
            for (k, &vk) in v.iter().enumerate() {
                row[lo + k] -= st * vk;
                row[n + lo + k] -= sb * vk;
            }
        }
    };
    apply_right(w);
    apply_right(z);
}

/// Applies a symplectic Givens similarity in the `(i, n+i)` plane with cosine
/// `c` and sine `s`.
fn apply_symplectic_givens(w: &mut Matrix, z: &mut Matrix, n: usize, i: usize, c: f64, s: f64) {
    let dim = 2 * n;
    let (it, ib) = (i, n + i);
    // Left: W ← Gᵀ W with G[it,it]=c, G[it,ib]=s, G[ib,it]=−s, G[ib,ib]=c.
    for col in 0..dim {
        let top = w[(it, col)];
        let bot = w[(ib, col)];
        w[(it, col)] = c * top - s * bot;
        w[(ib, col)] = s * top + c * bot;
    }
    // Right: W ← W G, Z ← Z G.
    for row in 0..dim {
        let top = w[(row, it)];
        let bot = w[(row, ib)];
        w[(row, it)] = c * top - s * bot;
        w[(row, ib)] = s * top + c * bot;
    }
    for row in 0..dim {
        let top = z[(row, it)];
        let bot = z[(row, ib)];
        z[(row, it)] = c * top - s * bot;
        z[(row, ib)] = s * top + c * bot;
    }
}

/// Householder vector and scaling for a column slice, mapping it onto `±‖·‖ e₁`.
fn householder(column: &[f64]) -> (Vec<f64>, f64) {
    let norm: f64 = column.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm == 0.0 {
        return (vec![0.0; column.len()], 0.0);
    }
    let alpha = if column[0] >= 0.0 { -norm } else { norm };
    let mut v = column.to_vec();
    v[0] -= alpha;
    let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
    if vnorm_sq <= f64::MIN_POSITIVE {
        return (vec![0.0; column.len()], 0.0);
    }
    (v, 2.0 / vnorm_sq)
}

/// Reduces a skew-Hamiltonian matrix to PVL form by an orthogonal-symplectic
/// similarity transformation.
///
/// # Errors
///
/// * [`ShhError::BadDimension`] for odd-dimensional or rectangular input.
/// * [`ShhError::StructureViolation`] when `w` is not (numerically)
///   skew-Hamiltonian.
pub fn reduce(w: &Matrix, tol: f64) -> Result<PvlForm, ShhError> {
    if !w.is_square() || !w.rows().is_multiple_of(2) {
        return Err(ShhError::BadDimension { shape: w.shape() });
    }
    let n = w.rows() / 2;
    let scale = w.norm_fro().max(1.0);
    if !structure::is_skew_hamiltonian(w, tol.max(1e-8) * scale)? {
        return Err(ShhError::structure(
            "pvl::reduce requires a skew-Hamiltonian matrix",
        ));
    }
    let mut work = w.clone();
    let mut z = Matrix::identity(2 * n);
    // Reusable dot-product scratch for the reflector applications (hoisted so
    // the O(n) reflectors of one reduction allocate nothing per step).
    let mut dots_top: Vec<f64> = Vec::new();
    let mut dots_bot: Vec<f64> = Vec::new();

    for j in 0..n.saturating_sub(1) {
        // Entries of the lower-left block in column j live in rows n+j+1 .. 2n.
        // (1) Householder on rows j+1..n of both halves to collapse
        //     Q(j+2.., j) onto Q(j+1, j).
        if n - (j + 1) > 1 {
            let col: Vec<f64> = ((j + 1)..n).map(|i| work[(n + i, j)]).collect();
            let (v, beta) = householder(&col);
            apply_symplectic_householder(
                &mut work,
                &mut z,
                n,
                j + 1,
                &v,
                beta,
                &mut dots_top,
                &mut dots_bot,
            );
        }
        // (2) Symplectic Givens in the (j+1, n+j+1) plane to rotate Q(j+1, j)
        //     into A(j+1, j).
        {
            let a_entry = work[(j + 1, j)];
            let q_entry = work[(n + j + 1, j)];
            let r = a_entry.hypot(q_entry);
            if r > 0.0 && q_entry.abs() > f64::EPSILON * scale {
                let c = a_entry / r;
                let s = -q_entry / r;
                apply_symplectic_givens(&mut work, &mut z, n, j + 1, c, s);
            }
        }
        // (3) Householder on rows j+1..n of both halves to collapse
        //     A(j+2.., j) onto A(j+1, j), producing the Hessenberg shape.
        if n - (j + 1) > 1 {
            let col: Vec<f64> = ((j + 1)..n).map(|i| work[(i, j)]).collect();
            let (v, beta) = householder(&col);
            apply_symplectic_householder(
                &mut work,
                &mut z,
                n,
                j + 1,
                &v,
                beta,
                &mut dots_top,
                &mut dots_bot,
            );
        }
    }

    // Clean the structurally-zero lower-left block.
    let cleanup = f64::EPSILON * scale * (4 * n) as f64;
    for i in n..2 * n {
        for j in 0..n {
            if work[(i, j)].abs() <= cleanup * 100.0 {
                work[(i, j)] = 0.0;
            }
        }
    }
    Ok(PvlForm {
        z,
        reduced: work,
        half: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{is_orthogonal_symplectic, skew_hamiltonian_from_blocks};

    fn sample_skew_hamiltonian(n: usize, seed: usize) -> Matrix {
        let a = Matrix::from_fn(n, n, |i, j| {
            (((i * 7 + j * 13 + seed * 3) % 17) as f64) * 0.21 - 1.6
        });
        let g = Matrix::from_fn(n, n, |i, j| {
            (((i * 5 + j * 11 + seed) % 13) as f64) * 0.3 - 1.9
        });
        let q = Matrix::from_fn(n, n, |i, j| {
            (((i * 3 + j * 7 + seed * 5) % 11) as f64) * 0.17 - 0.8
        });
        skew_hamiltonian_from_blocks(&a, &g, &q).unwrap()
    }

    fn check_reduction(w: &Matrix) -> PvlForm {
        let n = w.rows() / 2;
        let form = reduce(w, 1e-10).unwrap();
        // Z orthogonal symplectic.
        assert!(
            is_orthogonal_symplectic(&form.z, 1e-9).unwrap(),
            "Z lost orthogonal-symplectic structure"
        );
        // Similarity preserved.
        let recon = &(&form.z * &form.reduced) * &form.z.transpose();
        assert!(
            recon.approx_eq(w, 1e-8 * w.norm_fro().max(1.0)),
            "similarity violated by {}",
            (&recon - w).norm_max()
        );
        // Lower-left block vanishes.
        assert!(
            form.lower_left_residual() < 1e-8 * w.norm_fro().max(1.0),
            "lower-left residual {}",
            form.lower_left_residual()
        );
        // Result still skew-Hamiltonian: bottom-right equals W11ᵀ.
        let w11 = form.w11();
        let w22 = form.reduced.block(n, 2 * n, n, 2 * n);
        assert!(w22.approx_eq(&w11.transpose(), 1e-8 * w.norm_fro().max(1.0)));
        // Ψ skew-symmetric.
        assert!(form.psi().is_skew_symmetric(1e-8 * w.norm_fro().max(1.0)));
        form
    }

    #[test]
    fn reduces_small_skew_hamiltonian() {
        let w = sample_skew_hamiltonian(3, 1);
        check_reduction(&w);
    }

    #[test]
    fn reduces_moderate_skew_hamiltonian() {
        let w = sample_skew_hamiltonian(8, 2);
        let form = check_reduction(&w);
        // W11 is upper Hessenberg.
        let w11 = form.w11();
        for i in 2..8 {
            for j in 0..(i - 1) {
                assert!(
                    w11[(i, j)].abs() < 1e-8 * w.norm_fro(),
                    "W11 not Hessenberg at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn block_diagonal_input_is_already_reduced() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let w = Matrix::block_diag(&[&a, &a.transpose()]);
        let form = check_reduction(&w);
        assert!(form.lower_left_residual() < 1e-12);
    }

    #[test]
    fn identity_passes_through() {
        let form = check_reduction(&Matrix::identity(6));
        assert!(form.w11().approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn one_by_one_half_dimension() {
        let w = skew_hamiltonian_from_blocks(
            &Matrix::filled(1, 1, 3.0),
            &Matrix::zeros(1, 1),
            &Matrix::zeros(1, 1),
        )
        .unwrap();
        let form = check_reduction(&w);
        assert_eq!(form.half, 1);
    }

    #[test]
    fn rejects_non_skew_hamiltonian() {
        let h = crate::structure::hamiltonian_from_blocks(
            &Matrix::identity(2),
            &Matrix::identity(2),
            &Matrix::identity(2),
        )
        .unwrap();
        assert!(matches!(
            reduce(&h, 1e-10),
            Err(ShhError::StructureViolation { .. })
        ));
        assert!(matches!(
            reduce(&Matrix::identity(3), 1e-10),
            Err(ShhError::BadDimension { .. })
        ));
    }

    #[test]
    fn eigenvalues_preserved_by_reduction() {
        let w = sample_skew_hamiltonian(5, 7);
        let form = reduce(&w, 1e-10).unwrap();
        let mut before: Vec<f64> = ds_linalg::eigen::eigenvalues(&w)
            .unwrap()
            .iter()
            .map(|z| z.re)
            .collect();
        let mut after: Vec<f64> = ds_linalg::eigen::eigenvalues(&form.reduced)
            .unwrap()
            .iter()
            .map(|z| z.re)
            .collect();
        before.sort_by(|a, b| a.partial_cmp(b).unwrap());
        after.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((b - a).abs() < 1e-6, "eigenvalue drift {b} vs {a}");
        }
    }
}
