//! Construction of the Φ-system `Φ(s) = G(s) + G~(s)` and its SHH pencil
//! (paper eq. (10)).

use crate::error::ShhError;
use crate::structure;
use ds_descriptor::DescriptorSystem;
use ds_linalg::Matrix;

/// The descriptor realization of `Φ(s) = G(s) + G~(s)` together with the
/// structured pencil blocks.
///
/// With the paper's construction,
///
/// ```text
/// E_Φ = diag(E, Eᵀ)          (skew-Hamiltonian)
/// A_Φ = diag(A, −Aᵀ)         (Hamiltonian)
/// B_Φ = J C_Φᵀ = [B; −Cᵀ]
/// C_Φ = [C  Bᵀ]
/// D_Φ = D + Dᵀ
/// ```
///
/// so `(E_Φ, A_Φ)` is a skew-Hamiltonian/Hamiltonian pencil and the input map is
/// tied to the output map through `J`.
#[derive(Debug, Clone)]
pub struct PhiSystem {
    /// The realization of `Φ(s)` as a descriptor system of order `2n`.
    pub system: DescriptorSystem,
    /// Half dimension `n` (the order of the original system).
    pub half: usize,
}

impl PhiSystem {
    /// The skew-Hamiltonian descriptor matrix `E_Φ`.
    pub fn e_phi(&self) -> &Matrix {
        self.system.e()
    }

    /// The Hamiltonian state matrix `A_Φ`.
    pub fn a_phi(&self) -> &Matrix {
        self.system.a()
    }

    /// The output matrix `C_Φ = [C  Bᵀ]`.
    pub fn c_phi(&self) -> &Matrix {
        self.system.c()
    }

    /// The symmetric feedthrough `D_Φ = D + Dᵀ`.
    pub fn d_phi(&self) -> &Matrix {
        self.system.d()
    }

    /// Verifies the SHH structure of the pencil to within `tol`.
    ///
    /// # Errors
    ///
    /// Propagates structure-predicate failures.
    pub fn verify_structure(&self, tol: f64) -> Result<bool, ShhError> {
        let scale = self.system.scale();
        Ok(structure::is_skew_hamiltonian(self.e_phi(), tol * scale)?
            && structure::is_hamiltonian(self.a_phi(), tol * scale)?
            && self.d_phi().is_symmetric(tol * scale))
    }
}

/// Builds the Φ-system `Φ(s) = G(s) + G~(s)` for a square descriptor system.
///
/// # Errors
///
/// Returns [`ShhError::NotSquareSystem`] when the system has a different number
/// of inputs and outputs (passivity is only defined for square systems).
pub fn build_phi(sys: &DescriptorSystem) -> Result<PhiSystem, ShhError> {
    if !sys.is_square_system() {
        return Err(ShhError::NotSquareSystem {
            inputs: sys.num_inputs(),
            outputs: sys.num_outputs(),
        });
    }
    let e = sys.e();
    let a = sys.a();
    let b = sys.b();
    let c = sys.c();
    let d = sys.d();

    let e_phi = Matrix::block_diag(&[e, &e.transpose()]);
    let a_phi = Matrix::block_diag(&[a, &a.transpose().scale(-1.0)]);
    let b_phi = Matrix::vstack(&[b, &c.transpose().scale(-1.0)]);
    let c_phi = Matrix::hstack(&[c, &b.transpose()]);
    let d_phi = d + &d.transpose();

    let system = DescriptorSystem::new(e_phi, a_phi, b_phi, c_phi, d_phi)?;
    Ok(PhiSystem {
        system,
        half: sys.order(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_descriptor::transfer;
    use ds_linalg::Complex;

    fn rc_system() -> DescriptorSystem {
        // G(s) = 1/(s+1) + 0.5
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.5]]);
        let c = Matrix::from_rows(&[&[1.0, 1.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::zeros(1, 1)).unwrap()
    }

    fn series_rl() -> DescriptorSystem {
        let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[-3.0, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, 2.0)).unwrap()
    }

    #[test]
    fn phi_has_shh_structure() {
        let phi = build_phi(&rc_system()).unwrap();
        assert!(phi.verify_structure(1e-12).unwrap());
        assert_eq!(phi.system.order(), 4);
        assert_eq!(phi.half, 2);
    }

    #[test]
    fn phi_transfer_equals_g_plus_adjoint() {
        let sys = rc_system();
        let phi = build_phi(&sys).unwrap();
        let explicit_sum = sys.parallel_sum(&sys.adjoint()).unwrap();
        let dev = transfer::max_deviation(
            &phi.system,
            &explicit_sum,
            &transfer::default_probe_points(),
        )
        .unwrap();
        assert!(dev < 1e-10, "Φ deviates from G + G~ by {dev}");
    }

    #[test]
    fn phi_on_imaginary_axis_is_hermitian_with_value_2_re_g() {
        let sys = rc_system();
        let phi = build_phi(&sys).unwrap();
        for &w in &[0.0, 0.5, 2.0, 30.0] {
            let g = transfer::evaluate_jomega(&sys, w).unwrap();
            let p = transfer::evaluate_jomega(&phi.system, w).unwrap();
            // Scalar case: Φ(jω) = 2 Re G(jω).
            assert!((p.re[(0, 0)] - 2.0 * g.re[(0, 0)]).abs() < 1e-10);
            assert!(p.im[(0, 0)].abs() < 1e-10);
        }
    }

    #[test]
    fn phi_of_impulsive_system_is_impulse_free_in_transfer() {
        // G(s) = 2 + 3s is impulsive; Φ(s) = G(s) + G(−s) = 4 (the s-terms cancel).
        let sys = series_rl();
        let phi = build_phi(&sys).unwrap();
        for &w in &[0.1, 1.0, 10.0, 1000.0] {
            let p = transfer::evaluate_jomega(&phi.system, w).unwrap();
            assert!(
                (p.re[(0, 0)] - 4.0).abs() < 1e-7,
                "Φ(j{w}) = {} expected 4",
                p.re[(0, 0)]
            );
            assert!(p.im[(0, 0)].abs() < 1e-7);
        }
    }

    #[test]
    fn phi_b_is_j_times_c_transpose() {
        let sys = rc_system();
        let phi = build_phi(&sys).unwrap();
        let jct = structure::j_mul(&phi.c_phi().transpose()).unwrap();
        assert!(phi.system.b().approx_eq(&jct, 1e-14));
    }

    #[test]
    fn non_square_system_rejected() {
        let sys = DescriptorSystem::new(
            Matrix::identity(2),
            Matrix::diag(&[-1.0, -2.0]),
            Matrix::zeros(2, 2),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 2),
        )
        .unwrap();
        assert!(matches!(
            build_phi(&sys),
            Err(ShhError::NotSquareSystem { .. })
        ));
    }

    #[test]
    fn phi_of_mimo_system() {
        // 2-port resistive + capacitive network.
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::diag(&[-2.0, -1.0]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let d = Matrix::diag(&[0.1, 0.2]);
        let sys = DescriptorSystem::new(e, a, b, c, d).unwrap();
        let phi = build_phi(&sys).unwrap();
        assert!(phi.verify_structure(1e-12).unwrap());
        assert_eq!(phi.system.num_inputs(), 2);
        assert_eq!(phi.system.num_outputs(), 2);
        let probe = Complex::new(0.0, 1.3);
        let g = transfer::evaluate(&sys, probe).unwrap();
        let p = transfer::evaluate(&phi.system, probe).unwrap();
        // Φ(jω) = G(jω) + G(jω)ᴴ.
        let expected_re = &g.re + &g.re.transpose();
        let expected_im = &g.im - &g.im.transpose();
        assert!(p.re.approx_eq(&expected_re, 1e-10));
        assert!(p.im.approx_eq(&expected_im, 1e-10));
    }
}
