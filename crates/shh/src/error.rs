//! Error type for SHH-pencil operations.

use ds_descriptor::DescriptorError;
use ds_linalg::LinalgError;
use std::fmt;

/// Error returned by the SHH-pencil routines.
#[derive(Debug, Clone, PartialEq)]
pub enum ShhError {
    /// The input does not have the required (skew-)Hamiltonian structure.
    StructureViolation {
        /// Which structure was expected and how badly it is violated.
        details: String,
    },
    /// The input has an odd dimension or otherwise cannot be interpreted as a
    /// `2n x 2n` structured matrix.
    BadDimension {
        /// Actual shape received.
        shape: (usize, usize),
    },
    /// The requested operation needs a square (equal inputs/outputs) system.
    NotSquareSystem {
        /// Number of inputs.
        inputs: usize,
        /// Number of outputs.
        outputs: usize,
    },
    /// A spectral splitting failed because eigenvalues sit (numerically) on the
    /// imaginary axis.
    ImaginaryAxisEigenvalues,
    /// A numerical kernel failed underneath.
    Numerical(LinalgError),
    /// A descriptor-system operation failed underneath.
    Descriptor(DescriptorError),
    /// Generic invalid input.
    InvalidInput {
        /// Explanation of the violated precondition.
        message: String,
    },
}

impl fmt::Display for ShhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShhError::StructureViolation { details } => {
                write!(f, "structure violation: {details}")
            }
            ShhError::BadDimension { shape } => write!(
                f,
                "expected an even-dimensional square matrix, got {}x{}",
                shape.0, shape.1
            ),
            ShhError::NotSquareSystem { inputs, outputs } => write!(
                f,
                "operation requires a square system, got {inputs} inputs and {outputs} outputs"
            ),
            ShhError::ImaginaryAxisEigenvalues => write!(
                f,
                "spectral splitting failed: eigenvalues on the imaginary axis"
            ),
            ShhError::Numerical(e) => write!(f, "numerical kernel failed: {e}"),
            ShhError::Descriptor(e) => write!(f, "descriptor operation failed: {e}"),
            ShhError::InvalidInput { message } => write!(f, "invalid input: {message}"),
        }
    }
}

impl std::error::Error for ShhError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShhError::Numerical(e) => Some(e),
            ShhError::Descriptor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ShhError {
    fn from(e: LinalgError) -> Self {
        ShhError::Numerical(e)
    }
}

impl From<DescriptorError> for ShhError {
    fn from(e: DescriptorError) -> Self {
        ShhError::Descriptor(e)
    }
}

impl ShhError {
    /// Convenience constructor for [`ShhError::InvalidInput`].
    pub fn invalid_input(message: impl Into<String>) -> Self {
        ShhError::InvalidInput {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`ShhError::StructureViolation`].
    pub fn structure(details: impl Into<String>) -> Self {
        ShhError::StructureViolation {
            details: details.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ShhError::BadDimension { shape: (3, 3) }
            .to_string()
            .contains("3x3"));
        assert!(ShhError::structure("not Hamiltonian")
            .to_string()
            .contains("not Hamiltonian"));
        assert!(ShhError::ImaginaryAxisEigenvalues
            .to_string()
            .contains("imaginary axis"));
    }

    #[test]
    fn conversions_keep_source() {
        let e: ShhError = LinalgError::NotPositiveDefinite.into();
        assert!(std::error::Error::source(&e).is_some());
        let d: ShhError = DescriptorError::SingularPencil.into();
        assert!(std::error::Error::source(&d).is_some());
    }

    #[test]
    fn error_bounds() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ShhError>();
    }
}
