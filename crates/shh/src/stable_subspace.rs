//! Stable invariant subspaces of Hamiltonian matrices and the
//! orthogonal-symplectic bases built from them (paper eq. (22)).

use crate::error::ShhError;
use crate::structure;
use ds_linalg::sign::{self, SignOptions};
use ds_linalg::{subspace, Matrix};

/// Result of the Hamiltonian spectral split used by the paper's proper-part
/// extraction.
#[derive(Debug, Clone)]
pub struct HamiltonianSplit {
    /// Orthonormal, isotropic basis `[X₁; X₂]` (`2n x n`) of the stable
    /// invariant subspace.
    pub stable_basis: Matrix,
    /// The orthogonal-symplectic matrix `Z₁ = [U, −JU]` whose leading `n`
    /// columns are the stable basis.
    pub z1: Matrix,
    /// The stable block `Ã = X* A₄₄ X` (restriction of the Hamiltonian matrix
    /// to its stable invariant subspace).
    pub stable_block: Matrix,
    /// The coupling block `Γ` in `Z₁ᵀ A₄₄ Z₁ = [[Ã, Γ], [0, −Ãᵀ]]`.
    pub coupling_block: Matrix,
    /// The decoupling matrix `Y` solving `Ã Y + Y Ãᵀ + Γ = 0`, read off the
    /// converged sign function via Roberts' identity
    /// `Z₁ᵀ sign(A₄₄) Z₁ = [[−I, 2Y], [0, I]]` — no Lyapunov solve required.
    pub decoupling: Matrix,
}

/// Computes the stable invariant subspace of a Hamiltonian matrix and the
/// orthogonal-symplectic transformation that block-triangularizes it.
///
/// For a Hamiltonian matrix with no purely imaginary eigenvalues the spectrum
/// splits evenly (`n` stable, `n` antistable) and the stable invariant subspace
/// is isotropic, so `Z₁ = [U, −J U]` is orthogonal symplectic and
/// `Z₁ᵀ A Z₁ = [[Ã, Γ], [0, −Ãᵀ]]` with `Ã` Hurwitz.
///
/// # Errors
///
/// * [`ShhError::BadDimension`] for odd-dimensional input.
/// * [`ShhError::StructureViolation`] when `a` is not Hamiltonian.
/// * [`ShhError::ImaginaryAxisEigenvalues`] when the sign iteration detects
///   eigenvalues on the imaginary axis or the split is uneven.
pub fn hamiltonian_split(a: &Matrix, tol: f64) -> Result<HamiltonianSplit, ShhError> {
    if !a.is_square() || !a.rows().is_multiple_of(2) {
        return Err(ShhError::BadDimension { shape: a.shape() });
    }
    let n = a.rows() / 2;
    let scale = a.norm_fro().max(1.0);
    if !structure::is_hamiltonian(a, tol.max(1e-8) * scale)? {
        return Err(ShhError::structure(
            "hamiltonian_split requires a Hamiltonian matrix",
        ));
    }
    // Only the stable basis is consumed here; `stable_split` verifies the
    // dimension count through trace(sign(A)) instead of factoring the
    // antistable projector as well.
    let split = sign::stable_split(a, &SignOptions::default()).map_err(|err| match err {
        ds_linalg::LinalgError::Singular { .. } => ShhError::ImaginaryAxisEigenvalues,
        other => ShhError::Numerical(other),
    })?;
    if split.stable_basis.cols() != n || split.unstable_dim != n {
        return Err(ShhError::ImaginaryAxisEigenvalues);
    }
    // `stable_split` hands back SVD-U columns, which are orthonormal by
    // construction — no re-orthonormalization pass is needed before the
    // isotropy check (UᵀJU = 0), which holds exactly in theory for the stable
    // Lagrangian subspace of a Hamiltonian matrix.
    let u = split.stable_basis;
    let ju = structure::j_mul(&u)?;
    let isotropy = u.transpose_matmul(&ju)?.norm_max();
    if isotropy > 1e-6 * scale.max(1.0) {
        return Err(ShhError::structure(format!(
            "stable subspace is not isotropic (residual {isotropy:.2e}); \
             the matrix may be too far from Hamiltonian structure"
        )));
    }
    // Z1 = [U, −J U] is orthogonal symplectic. Of Z₁ᵀ A Z₁ only the top block
    // row [Ã, Γ] = Uᵀ·A·Z₁ and the lower-left invariance residual
    // (−JU)ᵀ·A·U are consumed — the lower-right block is −Ãᵀ by Hamiltonian
    // structure — so the full (2n)×(2n) congruence is never formed.
    let z1 = Matrix::hstack(&[&u, &ju.scale(-1.0)]);
    let az1 = a.matmul(&z1)?;
    let top = u.transpose_matmul(&az1)?;
    let stable_block = top.block(0, n, 0, n);
    let coupling_block = top.block(0, n, n, 2 * n);
    let au = az1.block(0, 2 * n, 0, n);
    let lower_left = ju.transpose_matmul(&au)?.norm_max();
    if lower_left > 1e-6 * scale {
        return Err(ShhError::structure(format!(
            "stable subspace is not invariant (residual {lower_left:.2e})"
        )));
    }
    // Roberts' identity: the top-right block of Z₁ᵀ sign(A₄₄) Z₁ equals 2Y for
    // the decoupling Lyapunov solution Ã Y + Y Ãᵀ + Γ = 0. With Z₁ = [U, −JU]
    // that block is −Uᵀ·sign(A₄₄)·JU, so Y falls out of two thin products
    // against the already-converged sign iterate.
    let sign_ju = split.sign.matmul(&ju)?;
    let decoupling = u.transpose_matmul(&sign_ju)?.scale(-0.5);
    Ok(HamiltonianSplit {
        stable_basis: u,
        z1,
        stable_block,
        coupling_block,
        decoupling,
    })
}

/// Checks that `basis` spans an `A`-invariant subspace to within `tol`
/// (relative to the norms involved).  Exposed for diagnostics and tests.
///
/// # Errors
///
/// Propagates subspace computation failures.
pub fn invariance_residual(a: &Matrix, basis: &Matrix) -> Result<f64, ShhError> {
    if basis.cols() == 0 {
        return Ok(0.0);
    }
    let image = a.matmul(basis)?;
    let q = subspace::range_basis(basis, 1e-12)?;
    let residual = &image - &(&q * &q.transpose_matmul(&image)?);
    Ok(residual.norm_fro() / image.norm_fro().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{hamiltonian_from_blocks, is_orthogonal_symplectic};
    use ds_linalg::eigen;

    fn stable_hamiltonian(n: usize, seed: usize) -> Matrix {
        // A Hamiltonian matrix built from a Hurwitz A, PSD G and PSD Q has no
        // imaginary-axis eigenvalues when (A, G, Q) is "regular enough"; use a
        // strictly Hurwitz diagonal-dominant A and definite G, Q.
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                -2.0 - (i + seed) as f64 * 0.3
            } else {
                0.1 * (((i * 3 + j * 5 + seed) % 5) as f64 - 2.0)
            }
        });
        let b = Matrix::from_fn(n, n, |i, j| (((i * 7 + j * 3 + seed) % 6) as f64) * 0.2);
        let g = &(&b * &b.transpose()) + &Matrix::identity(n).scale(0.5);
        let c = Matrix::from_fn(n, n, |i, j| (((i + 2 * j + seed) % 4) as f64) * 0.15);
        let q = &(&c.transpose() * &c) + &Matrix::identity(n).scale(0.3);
        hamiltonian_from_blocks(&a, &g.scale(-1.0), &q).unwrap()
    }

    #[test]
    fn split_of_small_hamiltonian() {
        let h = stable_hamiltonian(2, 1);
        let split = hamiltonian_split(&h, 1e-9).unwrap();
        assert_eq!(split.stable_basis.cols(), 2);
        assert!(is_orthogonal_symplectic(&split.z1, 1e-8).unwrap());
        // Stable block is Hurwitz.
        assert!(eigen::is_hurwitz(&split.stable_block, 1e-10).unwrap());
        // Invariance of the subspace.
        assert!(invariance_residual(&h, &split.stable_basis).unwrap() < 1e-8);
    }

    #[test]
    fn block_triangular_form() {
        let h = stable_hamiltonian(4, 3);
        let split = hamiltonian_split(&h, 1e-9).unwrap();
        let t = &split.z1.transpose_matmul(&h).unwrap() * &split.z1;
        let n = 4;
        // Lower-left block vanishes.
        assert!(t.block(n, 2 * n, 0, n).norm_max() < 1e-7 * h.norm_fro());
        // Lower-right block is −Ãᵀ.
        let lower_right = t.block(n, 2 * n, n, 2 * n);
        assert!(lower_right.approx_eq(
            &split.stable_block.transpose().scale(-1.0),
            1e-6 * h.norm_fro()
        ));
    }

    #[test]
    fn eigenvalues_of_stable_block_are_the_stable_half() {
        let h = stable_hamiltonian(3, 5);
        let split = hamiltonian_split(&h, 1e-9).unwrap();
        let all = eigen::eigenvalues(&h).unwrap();
        let stable_count = all.iter().filter(|z| z.re < 0.0).count();
        assert_eq!(stable_count, 3);
        let block_eigs = eigen::eigenvalues(&split.stable_block).unwrap();
        for z in block_eigs {
            assert!(z.re < 0.0);
            // Each eigenvalue of the block appears in the full spectrum.
            assert!(all
                .iter()
                .any(|w| (w.re - z.re).abs() < 1e-6 && (w.im - z.im).abs() < 1e-6));
        }
    }

    #[test]
    fn imaginary_axis_eigenvalues_rejected() {
        // J itself is Hamiltonian with eigenvalues ±i.
        let j = structure::j_matrix(2);
        assert!(matches!(
            hamiltonian_split(&j, 1e-9),
            Err(ShhError::ImaginaryAxisEigenvalues) | Err(ShhError::Numerical(_))
        ));
    }

    #[test]
    fn non_hamiltonian_rejected() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        assert!(matches!(
            hamiltonian_split(&m, 1e-9),
            Err(ShhError::StructureViolation { .. })
        ));
        assert!(hamiltonian_split(&Matrix::identity(3), 1e-9).is_err());
    }
}
