//! PRIMA-style block-Krylov congruence projection for sparse MNA systems.
//!
//! The paper cites the isotropic Arnoldi process of Mehrmann & Watkins as the
//! large-scale analogue of the dense PVL reduction in [`crate::pvl`]; this
//! module is the circuit-side counterpart.  Given the PRIMA form
//!
//! ```text
//! C x' = −G x + B u,    y = Bᵀ x
//! ```
//!
//! with sparse `C, G` (from `ds-circuits::mna::stamp_sparse`), it builds an
//! orthonormal `V ∈ ℝ^{n×q}` spanning the block Krylov subspace
//! `K_q((G + s₀C)⁻¹C, (G + s₀C)⁻¹B)` and projects by congruence:
//!
//! ```text
//! Ĉ = VᵀCV,  Ĝ = VᵀGV,  B̂ = VᵀB.
//! ```
//!
//! For a passive RLC netlist `C ⪰ 0` and `G + Gᵀ ⪰ 0`, both properties are
//! inherited by any congruence, so the reduced model is again passive — the
//! classic PRIMA argument — and the *exact* dense passivity test can be run
//! on the order-`q` model in place of the order-`10⁴` original.  The caveat
//! (documented at the public API): congruence preserves passivity only when
//! the original matrices have this semidefinite structure; for a general
//! (non-RLC) descriptor model the reduced verdict is a heuristic.
//!
//! The shifted solves `(G + s₀C)⁻¹·v` use the sparse LU of
//! [`ds_linalg::sparse::SparseLu`] after an RCM reordering, so one
//! factorization is reused across all `q` Arnoldi steps.

use crate::error::ShhError;
use ds_descriptor::DescriptorSystem;
use ds_linalg::sparse::{rcm_order, Csr, SparseLu};
use ds_linalg::Matrix;

/// Deflation threshold: a candidate whose orthogonal component is below this
/// fraction of its original norm is linearly dependent on the basis.
const DEFLATION_TOL: f64 = 1e-10;

/// Knobs for the Krylov reduction, surfaced as the `reduce` option of the
/// check pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReduceSpec {
    /// Target reduced order `q` (the projection stops once the basis reaches
    /// it, or earlier on Krylov-space exhaustion).
    pub target_order: usize,
    /// Real expansion point `s₀ > 0` of the shifted system `G + s₀·C`.
    pub shift: f64,
}

impl Default for ReduceSpec {
    fn default() -> Self {
        ReduceSpec {
            target_order: 48,
            shift: 1.0,
        }
    }
}

/// The reduced model plus the reduction diagnostics the sweep records.
#[derive(Debug, Clone)]
pub struct KrylovReduction {
    /// The reduced dense descriptor system `(Ĉ, −Ĝ, B̂, B̂ᵀ, 0)`, ready for
    /// the existing passivity checks.
    pub system: DescriptorSystem,
    /// Achieved reduced order (`≤ target_order`; smaller on exhaustion).
    pub reduced_order: usize,
    /// `‖(I − VVᵀ)w‖ / ‖w‖` for the first discarded Krylov candidate `w` —
    /// `0` when the Krylov space was exhausted (the projection is exact).
    pub residual: f64,
}

/// Solves `K·x = rhs` through the RCM-permuted factorization.
struct ShiftedSolver {
    lu: SparseLu,
    perm: Vec<usize>,
    scratch_rhs: Vec<f64>,
    scratch_x: Vec<f64>,
}

impl ShiftedSolver {
    fn factor(k: &Csr) -> Result<ShiftedSolver, ShhError> {
        let perm = rcm_order(k);
        let permuted = k.permute_symmetric(&perm)?;
        let lu = SparseLu::factor(&permuted)?;
        let n = k.rows();
        Ok(ShiftedSolver {
            lu,
            perm,
            scratch_rhs: vec![0.0; n],
            scratch_x: vec![0.0; n],
        })
    }

    fn solve(&mut self, rhs: &[f64], x: &mut [f64]) {
        for (i, &p) in self.perm.iter().enumerate() {
            self.scratch_rhs[i] = rhs[p];
        }
        self.lu.solve(&self.scratch_rhs, &mut self.scratch_x);
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = self.scratch_x[i];
        }
    }
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Two-pass modified Gram–Schmidt of `w` against `basis`; returns the norm of
/// the remaining orthogonal component.
fn orthogonalize(basis: &[Vec<f64>], w: &mut [f64]) -> f64 {
    for _ in 0..2 {
        for v in basis {
            let dot: f64 = v.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
            for (wi, vi) in w.iter_mut().zip(v.iter()) {
                *wi -= dot * vi;
            }
        }
    }
    norm2(w)
}

/// Reduces the sparse PRIMA system `(C, G, B)` to a dense order-`q`
/// descriptor model by block-Arnoldi congruence projection.
///
/// When `n ≤ target_order` the system is densified unprojected (exact,
/// residual `0`).  Passivity of the reduced model is guaranteed only for
/// inputs with the RLC semidefinite structure (see the module docs).
///
/// # Errors
///
/// Returns [`ShhError::InvalidInput`] on shape mismatches, a non-positive or
/// non-finite shift, or an empty input block; propagates factorization
/// failures (e.g. a singular shifted system) and descriptor-construction
/// errors.
pub fn reduce_prima(
    c: &Csr,
    g: &Csr,
    b: &Matrix,
    spec: &ReduceSpec,
) -> Result<KrylovReduction, ShhError> {
    let n = c.rows();
    if c.cols() != n || g.rows() != n || g.cols() != n {
        return Err(ShhError::invalid_input(format!(
            "reduce_prima needs square C and G of equal order, got C {}x{} and G {}x{}",
            c.rows(),
            c.cols(),
            g.rows(),
            g.cols()
        )));
    }
    if b.rows() != n {
        return Err(ShhError::invalid_input(format!(
            "input map B has {} rows for an order-{n} system",
            b.rows()
        )));
    }
    let m = b.cols();
    if m == 0 || n == 0 {
        return Err(ShhError::invalid_input(
            "reduce_prima needs at least one state and one port",
        ));
    }
    if !spec.shift.is_finite() || spec.shift <= 0.0 {
        return Err(ShhError::invalid_input(format!(
            "expansion shift must be positive and finite, got {}",
            spec.shift
        )));
    }

    // Small systems: densify without projecting — the verdict is then exactly
    // the dense path's verdict on the same matrices.
    if n <= spec.target_order.max(m) {
        let system = assemble(c.to_dense(), g.to_dense(), b.clone())?;
        return Ok(KrylovReduction {
            system,
            reduced_order: n,
            residual: 0.0,
        });
    }
    let q_target = spec.target_order.max(m);

    let k = g.add_scaled(c, spec.shift)?;
    let mut solver = ShiftedSolver::factor(&k)?;

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(q_target);
    let mut candidate = vec![0.0; n];
    let mut rhs = vec![0.0; n];
    let mut residual = 0.0;

    // Start block: K⁻¹·b_j for each port column.
    let mut block: Vec<Vec<f64>> = Vec::with_capacity(m);
    for j in 0..m {
        for (slot, i) in rhs.iter_mut().zip(0..n) {
            *slot = b[(i, j)];
        }
        solver.solve(&rhs, &mut candidate);
        if let Some(v) = accept(&basis, &mut candidate) {
            basis.push(v.clone());
            block.push(v);
        }
    }
    if basis.is_empty() {
        return Err(ShhError::invalid_input(
            "Krylov start block vanished: B is zero or K⁻¹B is rank-deficient",
        ));
    }

    // Arnoldi blocks: w = K⁻¹·C·v for each v of the previous block.
    while basis.len() < q_target && !block.is_empty() {
        let mut next_block: Vec<Vec<f64>> = Vec::with_capacity(block.len());
        for v in &block {
            if basis.len() == q_target {
                break;
            }
            c.spmv_into(v, &mut rhs);
            solver.solve(&rhs, &mut candidate);
            if let Some(w) = accept(&basis, &mut candidate) {
                basis.push(w.clone());
                next_block.push(w);
            }
        }
        block = next_block;
    }
    // Truncation residual: the orthogonal fraction of the first candidate
    // beyond the basis (0 when the Krylov space was exhausted).
    if basis.len() == q_target {
        if let Some(v) = block.last() {
            c.spmv_into(v, &mut rhs);
            solver.solve(&rhs, &mut candidate);
            let original = norm2(&candidate);
            if original > 0.0 {
                let remaining = orthogonalize(&basis, &mut candidate);
                residual = (remaining / original).min(1.0);
            }
        }
    }

    let q = basis.len();
    let mut v_mat = Matrix::zeros(n, q);
    for (j, v) in basis.iter().enumerate() {
        for (i, &vi) in v.iter().enumerate() {
            v_mat[(i, j)] = vi;
        }
    }

    // Congruence projection: Ĉ = VᵀCV (symmetrized — C is symmetric, so the
    // asymmetry is pure roundoff), Ĝ = VᵀGV (NOT symmetrized: G carries the
    // skew incidence coupling), B̂ = Vᵀ·B.
    let mut scratch = vec![0.0; n];
    let mut cv = Matrix::zeros(n, q);
    let mut gv = Matrix::zeros(n, q);
    for (j, v) in basis.iter().enumerate() {
        c.spmv_into(v, &mut scratch);
        for (i, &s) in scratch.iter().enumerate() {
            cv[(i, j)] = s;
        }
        g.spmv_into(v, &mut scratch);
        for (i, &s) in scratch.iter().enumerate() {
            gv[(i, j)] = s;
        }
    }
    let c_hat = v_mat.transpose_matmul(&cv)?;
    let c_hat = Matrix::from_fn(q, q, |i, j| 0.5 * (c_hat[(i, j)] + c_hat[(j, i)]));
    let g_hat = v_mat.transpose_matmul(&gv)?;
    let b_hat = v_mat.transpose_matmul(b)?;

    let system = assemble(c_hat, g_hat, b_hat)?;
    Ok(KrylovReduction {
        system,
        reduced_order: q,
        residual,
    })
}

/// Orthogonalizes `candidate` against the basis; on survival, returns the
/// normalized vector (deflated candidates return `None`).
fn accept(basis: &[Vec<f64>], candidate: &mut [f64]) -> Option<Vec<f64>> {
    let original = norm2(candidate);
    if original == 0.0 {
        return None;
    }
    let remaining = orthogonalize(basis, candidate);
    if remaining <= DEFLATION_TOL * original {
        return None;
    }
    Some(candidate.iter().map(|&x| x / remaining).collect())
}

/// `(C, G, B)` → descriptor `(E, A, B, C, D) = (C, −G, B, Bᵀ, 0)`.
fn assemble(c: Matrix, g: Matrix, b: Matrix) -> Result<DescriptorSystem, ShhError> {
    let m = b.cols();
    let bt = b.transpose();
    Ok(DescriptorSystem::new(
        c,
        g.scale(-1.0),
        b,
        bt,
        Matrix::zeros(m, m),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_descriptor::transfer;
    use ds_linalg::sparse::Coo;
    use ds_linalg::Complex;

    /// Hand-stamped PRIMA form of an RLC ladder with `sections` sections:
    /// nodes `0..=sections`, port at node 0, series R‖L per section, shunt C,
    /// resistive termination — the same topology the circuit generators use.
    fn ladder(sections: usize) -> (Csr, Csr, Matrix) {
        let nodes = sections + 1;
        let n = nodes + sections;
        let mut c = Coo::new(n, n);
        let mut g = Coo::new(n, n);
        for k in 0..sections {
            let (a, b) = (k, k + 1);
            let cond = 1.0 / (1.0 + 0.02 * k as f64);
            g.push(a, a, cond);
            g.push(b, b, cond);
            g.push(a, b, -cond);
            g.push(b, a, -cond);
            c.push(b, b, 1.0 + 0.01 * k as f64);
            let l_col = nodes + k;
            c.push(l_col, l_col, 0.5 * (1.0 + 0.04 * k as f64));
            g.push(a, l_col, 1.0);
            g.push(b, l_col, -1.0);
            g.push(l_col, a, -1.0);
            g.push(l_col, b, 1.0);
        }
        g.push(nodes - 1, nodes - 1, 0.1);
        let mut b = Matrix::zeros(n, 1);
        b[(0, 0)] = 1.0;
        (c.to_csr(), g.to_csr(), b)
    }

    #[test]
    fn small_systems_pass_through_unprojected() {
        let (c, g, b) = ladder(4);
        let spec = ReduceSpec::default();
        let red = reduce_prima(&c, &g, &b, &spec).unwrap();
        assert_eq!(red.reduced_order, 9);
        assert_eq!(red.system.order(), 9);
        assert_eq!(red.residual, 0.0);
    }

    #[test]
    fn reduction_matches_the_full_transfer_function_near_the_shift() {
        let (c, g, b) = ladder(40); // order 81
        let full = assemble(c.to_dense(), g.to_dense(), b.clone()).unwrap();
        let spec = ReduceSpec {
            target_order: 16,
            shift: 1.0,
        };
        let red = reduce_prima(&c, &g, &b, &spec).unwrap();
        assert_eq!(red.reduced_order, 16);
        assert!(red.residual > 0.0 && red.residual <= 1.0);
        // Moment matching makes the expansion point s₀ = 1 machine-exact and
        // its neighbourhood tight; the error grows away from the shift.
        let tolerances = [(1.0, 1e-12), (0.8, 1e-4), (1.25, 1e-4), (2.0, 1e-2)];
        for &(sigma, tol) in &tolerances {
            let zf = transfer::evaluate(&full, Complex::new(sigma, 0.0)).unwrap();
            let zr = transfer::evaluate(&red.system, Complex::new(sigma, 0.0)).unwrap();
            let err = (zf.re[(0, 0)] - zr.re[(0, 0)]).abs();
            assert!(err < tol, "transfer mismatch {err:.3e} at s = {sigma}");
        }
    }

    #[test]
    fn reduced_model_stays_passive_on_samples() {
        let (c, g, b) = ladder(60);
        let spec = ReduceSpec {
            target_order: 20,
            shift: 1.0,
        };
        let red = reduce_prima(&c, &g, &b, &spec).unwrap();
        for &w in &[0.0, 0.1, 1.0, 10.0, 100.0] {
            let z = transfer::evaluate_jomega(&red.system, w).unwrap();
            assert!(
                z.popov_min_eigenvalue().unwrap() >= -1e-9,
                "reduced model not passive at ω = {w}"
            );
        }
    }

    #[test]
    fn exhaustion_stops_early_with_zero_residual() {
        // A diagonal system whose Krylov space from one port has dimension 1:
        // C = I restricted to the port direction reproduces the same vector.
        let n = 10;
        let mut c = Coo::new(n, n);
        let mut g = Coo::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
            g.push(i, i, 2.0);
        }
        let mut b = Matrix::zeros(n, 1);
        b[(0, 0)] = 1.0;
        let spec = ReduceSpec {
            target_order: 5,
            shift: 1.0,
        };
        let red = reduce_prima(&c.to_csr(), &g.to_csr(), &b, &spec).unwrap();
        assert_eq!(red.reduced_order, 1);
        assert_eq!(red.residual, 0.0);
    }

    #[test]
    fn input_validation() {
        let (c, g, b) = ladder(4);
        let bad_b = Matrix::zeros(3, 1);
        assert!(reduce_prima(&c, &g, &bad_b, &ReduceSpec::default()).is_err());
        let bad_spec = ReduceSpec {
            target_order: 8,
            shift: -1.0,
        };
        assert!(reduce_prima(&c, &g, &b, &bad_spec).is_err());
        let wide = Csr::zeros(4, 5);
        assert!(reduce_prima(&wide, &g, &b, &ReduceSpec::default()).is_err());
    }
}
