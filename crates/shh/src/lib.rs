//! # ds-shh
//!
//! Skew-Hamiltonian/Hamiltonian (SHH) matrix-pencil substrate for the DAC 2006
//! descriptor-system passivity test.
//!
//! With `J = [[0, I], [−I, 0]]`, a matrix `H` is *Hamiltonian* when `(JH)ᵀ = JH`
//! and `W` is *skew-Hamiltonian* when `(JW)ᵀ = −JW`.  The paper builds the
//! pencil `(E_Φ, A_Φ)` of `Φ(s) = G(s) + G~(s)` so that `E_Φ` is
//! skew-Hamiltonian and `A_Φ` is Hamiltonian (eq. (10)), and then only ever
//! applies structure-preserving (orthogonal-symplectic or symplectic-adjoint)
//! transformations.  This crate provides:
//!
//! * structure predicates and the `J` matrix ([`structure`]),
//! * the Van-Loan-style PVL block-triangularization of skew-Hamiltonian
//!   matrices by orthogonal-symplectic similarity ([`pvl`]) — the dense
//!   equivalent of the isotropic Arnoldi process referenced by the paper,
//! * construction of the Φ-system / SHH pencil from a descriptor system
//!   ([`pencil`]),
//! * stable/antistable invariant-subspace splitting of Hamiltonian matrices and
//!   the orthogonal-symplectic basis built from it ([`stable_subspace`]),
//! * the Hamiltonian-eigenvalue positive-realness test for proper systems
//!   ([`positive_real`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod krylov;
pub mod pencil;
pub mod positive_real;
pub mod pvl;
pub mod stable_subspace;
pub mod structure;

pub use error::ShhError;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::error::ShhError;
    pub use crate::krylov::{KrylovReduction, ReduceSpec};
    pub use crate::pencil::PhiSystem;
    pub use crate::positive_real::PositiveRealVerdict;
}
