//! Positive-realness tests for proper (regular state-space) systems.
//!
//! The paper's final step tests the extracted proper part with "standard
//! techniques (e.g. [9, 10])": the Hamiltonian-matrix eigenvalue test.  For a
//! stable `G(s) = D + C (sI − A)⁻¹ B` with `R = D + Dᵀ ≻ 0`, the Popov function
//! `Φ(jω) = G(jω) + G(jω)ᴴ` is singular at `ω` exactly when `jω` is an
//! eigenvalue of the Hamiltonian matrix
//!
//! ```text
//! M = [ A − B R⁻¹ C        −B R⁻¹ Bᵀ      ]
//!     [ Cᵀ R⁻¹ C         −(A − B R⁻¹ C)ᵀ ]
//! ```
//!
//! so strict positive realness ⇔ no purely imaginary eigenvalues of `M`.
//! Imaginary-axis eigenvalues are classified by sampling the Popov function in
//! the frequency intervals they delimit (touching ⇒ still positive real,
//! crossing ⇒ not).

use crate::error::ShhError;
use crate::structure;
use ds_descriptor::system::StateSpace;
use ds_descriptor::transfer;
use ds_linalg::decomp::{lu, symmetric};
use ds_linalg::eigen;

/// Outcome of a positive-realness test.
#[derive(Debug, Clone, PartialEq)]
pub enum PositiveRealVerdict {
    /// The transfer function is positive real with margin: `Φ(jω) ≻ 0` for all
    /// finite `ω` (no imaginary-axis Hamiltonian eigenvalues).
    StrictlyPositiveReal,
    /// The transfer function is positive real, but `Φ(jω)` touches singularity
    /// at the listed frequencies (non-strict case).
    PositiveReal {
        /// Frequencies (rad/s) where the Popov function is singular.
        boundary_frequencies: Vec<f64>,
    },
    /// The transfer function is not positive real; a witness frequency where
    /// `Φ(jω)` has a negative eigenvalue is provided when available.
    NotPositiveReal {
        /// Frequency (rad/s) at which the Popov function has a negative
        /// eigenvalue; `None` when the violation is at `ω = ∞` (from `D + Dᵀ`).
        witness_frequency: Option<f64>,
        /// The offending (most negative) eigenvalue found.
        min_eigenvalue: f64,
    },
}

impl PositiveRealVerdict {
    /// `true` for both the strict and non-strict positive-real outcomes.
    pub fn is_positive_real(&self) -> bool {
        !matches!(self, PositiveRealVerdict::NotPositiveReal { .. })
    }
}

/// Options for the positive-realness tests.
#[derive(Debug, Clone)]
pub struct PositiveRealOptions {
    /// Relative tolerance for eigenvalue / definiteness decisions.
    pub tolerance: f64,
    /// Frequencies used by the sampling fallback (rad/s); also used to refine
    /// boundary cases of the Hamiltonian test.
    pub sampling_frequencies: Vec<f64>,
    /// Skip the stability pre-check (an `n × n` eigensolve). Set by callers
    /// whose system is Hurwitz by construction — e.g. the passivity flow,
    /// where the proper part comes out of the stable invariant subspace of
    /// the Hamiltonian split. Defaults to `false`.
    pub assume_stable: bool,
}

impl Default for PositiveRealOptions {
    fn default() -> Self {
        let mut freqs = vec![0.0];
        let mut w = 1e-4;
        while w <= 1e6 {
            freqs.push(w);
            w *= 10.0_f64.sqrt();
        }
        PositiveRealOptions {
            tolerance: 1e-8,
            sampling_frequencies: freqs,
            assume_stable: false,
        }
    }
}

/// Tests positive realness of a proper state-space system using the
/// Hamiltonian-eigenvalue test, falling back to frequency sampling when
/// `D + Dᵀ` is singular.
///
/// The system is assumed stable (all poles in the open left half-plane), which
/// is guaranteed by the callers in the passivity flow; unstable systems are
/// reported as not positive real.
///
/// # Errors
///
/// Returns [`ShhError::NotSquareSystem`] for non-square systems and propagates
/// numerical failures.
pub fn test_positive_real(
    ss: &StateSpace,
    options: &PositiveRealOptions,
) -> Result<PositiveRealVerdict, ShhError> {
    if ss.num_inputs() != ss.num_outputs() {
        return Err(ShhError::NotSquareSystem {
            inputs: ss.num_inputs(),
            outputs: ss.num_outputs(),
        });
    }
    let tol = options.tolerance;
    // Stability prerequisite (condition 1 of positive realness for proper parts).
    if !options.assume_stable
        && ss.order() > 0
        && !ss.is_stable(0.0).map_err(ShhError::Descriptor)?
    {
        // A pole in the closed right half-plane rules out positive realness.
        return Ok(PositiveRealVerdict::NotPositiveReal {
            witness_frequency: None,
            min_eigenvalue: f64::NEG_INFINITY,
        });
    }

    let r = &ss.d + &ss.d.transpose();
    let m = r.rows();
    // Check the behaviour at ω = ∞ first: Φ(∞) = D + Dᵀ must be PSD.
    let r_min = if m > 0 {
        symmetric::min_eigenvalue(&r)?
    } else {
        0.0
    };
    let scale = ss.a.norm_fro().max(r.norm_fro()).max(1.0);
    if r_min < -tol * scale {
        return Ok(PositiveRealVerdict::NotPositiveReal {
            witness_frequency: None,
            min_eigenvalue: r_min,
        });
    }
    if ss.order() == 0 {
        // Pure feedthrough.
        return Ok(if r_min > tol * scale {
            PositiveRealVerdict::StrictlyPositiveReal
        } else {
            PositiveRealVerdict::PositiveReal {
                boundary_frequencies: vec![],
            }
        });
    }

    // If R is (numerically) singular the Hamiltonian matrix cannot be formed;
    // fall back to dense frequency sampling.
    if r_min <= tol * scale {
        return sampling_test(ss, options);
    }

    // Hamiltonian-eigenvalue test.
    let r_inv = lu::inverse(&r)?;
    let br = ss.b.matmul(&r_inv)?;
    let a_tilde = &ss.a - &br.matmul(&ss.c)?;
    let g = br.matmul(&ss.b.transpose())?.scale(-1.0);
    let q = ss.c.transpose_matmul(&r_inv.matmul(&ss.c)?)?;
    let hamiltonian = structure::hamiltonian_from_blocks(&a_tilde, &g, &q)?;
    let eigs = eigen::eigenvalues(&hamiltonian)?;
    let ham_scale = hamiltonian.norm_fro().max(1.0);
    let axis_tol = tol.max(1e-10) * ham_scale;
    let mut boundary: Vec<f64> = eigs
        .iter()
        .filter(|z| z.re.abs() <= axis_tol)
        .map(|z| z.im.abs())
        .collect();
    boundary.sort_by(f64::total_cmp);
    boundary.dedup_by(|a, b| (*a - *b).abs() <= 1e-6 * (1.0 + b.abs()));

    if boundary.is_empty() {
        return Ok(PositiveRealVerdict::StrictlyPositiveReal);
    }

    // Imaginary-axis eigenvalues exist: classify by sampling the Popov function
    // between (and beyond) the candidate frequencies.
    let mut probes: Vec<f64> = Vec::new();
    probes.push(0.0);
    for window in boundary.windows(2) {
        probes.push(0.5 * (window[0] + window[1]));
    }
    if let (Some(&first), Some(&last)) = (boundary.first(), boundary.last()) {
        probes.push(0.5 * first);
        probes.push(2.0 * last + 1.0);
    }
    probes.extend_from_slice(&options.sampling_frequencies);
    let verdict = evaluate_popov_over(ss, &probes, tol)?;
    Ok(match verdict {
        PopovSweep::AllNonNegative => PositiveRealVerdict::PositiveReal {
            boundary_frequencies: boundary,
        },
        PopovSweep::Negative { frequency, value } => PositiveRealVerdict::NotPositiveReal {
            witness_frequency: Some(frequency),
            min_eigenvalue: value,
        },
    })
}

/// Pure sampling test: checks `Φ(jω) ⪰ 0` on the option's frequency grid.
/// Less rigorous than the Hamiltonian test (it can miss narrow violations) but
/// applicable when `D + Dᵀ` is singular.
///
/// # Errors
///
/// Propagates transfer-function evaluation failures.
pub fn sampling_test(
    ss: &StateSpace,
    options: &PositiveRealOptions,
) -> Result<PositiveRealVerdict, ShhError> {
    match evaluate_popov_over(ss, &options.sampling_frequencies, options.tolerance)? {
        PopovSweep::AllNonNegative => Ok(PositiveRealVerdict::PositiveReal {
            boundary_frequencies: vec![],
        }),
        PopovSweep::Negative { frequency, value } => Ok(PositiveRealVerdict::NotPositiveReal {
            witness_frequency: Some(frequency),
            min_eigenvalue: value,
        }),
    }
}

enum PopovSweep {
    AllNonNegative,
    Negative { frequency: f64, value: f64 },
}

fn evaluate_popov_over(
    ss: &StateSpace,
    frequencies: &[f64],
    tol: f64,
) -> Result<PopovSweep, ShhError> {
    let ds = ss.to_descriptor();
    let scale = ss.a.norm_fro().max(ss.d.norm_fro()).max(1.0);
    let mut worst_freq = 0.0;
    let mut worst_val = f64::INFINITY;
    for &w in frequencies {
        let value = match transfer::evaluate_jomega(&ds, w) {
            Ok(v) => v,
            // A pole exactly on the probe frequency: skip the sample.
            Err(ds_descriptor::DescriptorError::SingularPencil) => continue,
            Err(e) => return Err(ShhError::Descriptor(e)),
        };
        let min_eig = value.popov_min_eigenvalue().map_err(ShhError::Descriptor)?;
        if min_eig < worst_val {
            worst_val = min_eig;
            worst_freq = w;
        }
    }
    if worst_val < -tol * scale {
        Ok(PopovSweep::Negative {
            frequency: worst_freq,
            value: worst_val,
        })
    } else {
        Ok(PopovSweep::AllNonNegative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_linalg::Matrix;

    fn opts() -> PositiveRealOptions {
        PositiveRealOptions::default()
    }

    /// G(s) = (s + 2) / (s + 1): strictly positive real.
    fn spr_system() -> StateSpace {
        StateSpace::new(
            Matrix::filled(1, 1, -1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
        )
        .unwrap()
    }

    /// G(s) = 1 / (s + 1): positive real but D + Dᵀ = 0 (boundary at ω = ∞).
    fn pr_no_feedthrough() -> StateSpace {
        StateSpace::new(
            Matrix::filled(1, 1, -1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::zeros(1, 1),
        )
        .unwrap()
    }

    /// G(s) = (s − 1)/(s + 1) + 1.01: Re G(jω) dips negative near ω = 0... build
    /// a genuinely non-PR example: G(s) = 1/(s+1) − 0.6 has Re G(j0) = 0.4 > 0
    /// but Re G(∞) = −0.6 < 0.
    fn not_pr_system() -> StateSpace {
        StateSpace::new(
            Matrix::filled(1, 1, -1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, -0.6),
        )
        .unwrap()
    }

    /// Non-PR with positive feedthrough: G(s) = 0.1 + 1·(s−5)/(s²+s+1)-ish.
    /// Use G(s) = 0.1 + C(sI−A)⁻¹B with a zero that pushes Re G negative at
    /// moderate frequencies.
    fn not_pr_interior() -> StateSpace {
        // G(s) = 0.1 + (−s + 1)/(s² + 0.6 s + 1).
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-1.0, -0.6]]);
        let b = Matrix::column(&[0.0, 1.0]);
        let c = Matrix::row_vector(&[1.0, -1.0]);
        let d = Matrix::filled(1, 1, 0.1);
        StateSpace::new(a, b, c, d).unwrap()
    }

    #[test]
    fn strictly_positive_real_detected() {
        let verdict = test_positive_real(&spr_system(), &opts()).unwrap();
        assert_eq!(verdict, PositiveRealVerdict::StrictlyPositiveReal);
        assert!(verdict.is_positive_real());
    }

    #[test]
    fn positive_real_without_feedthrough_uses_sampling() {
        let verdict = test_positive_real(&pr_no_feedthrough(), &opts()).unwrap();
        assert!(verdict.is_positive_real());
    }

    #[test]
    fn negative_feedthrough_rejected_at_infinity() {
        let verdict = test_positive_real(&not_pr_system(), &opts()).unwrap();
        match verdict {
            PositiveRealVerdict::NotPositiveReal {
                witness_frequency,
                min_eigenvalue,
            } => {
                assert!(witness_frequency.is_none());
                assert!(min_eigenvalue < 0.0);
            }
            other => panic!("expected NotPositiveReal, got {other:?}"),
        }
    }

    #[test]
    fn interior_violation_detected_with_witness() {
        let ss = not_pr_interior();
        // Sanity: Re G at ω = 1 is negative.
        let g = transfer::evaluate_jomega(&ss.to_descriptor(), 1.0).unwrap();
        assert!(g.re[(0, 0)] < 0.0);
        let verdict = test_positive_real(&ss, &opts()).unwrap();
        match verdict {
            PositiveRealVerdict::NotPositiveReal {
                witness_frequency,
                min_eigenvalue,
            } => {
                assert!(min_eigenvalue < 0.0);
                assert!(witness_frequency.is_some());
            }
            other => panic!("expected NotPositiveReal, got {other:?}"),
        }
    }

    #[test]
    fn unstable_system_is_not_positive_real() {
        let ss = StateSpace::new(
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
        )
        .unwrap();
        assert!(!test_positive_real(&ss, &opts()).unwrap().is_positive_real());
    }

    #[test]
    fn pure_feedthrough_cases() {
        let static_pr = StateSpace::new(
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 1),
            Matrix::zeros(1, 0),
            Matrix::filled(1, 1, 2.0),
        )
        .unwrap();
        assert_eq!(
            test_positive_real(&static_pr, &opts()).unwrap(),
            PositiveRealVerdict::StrictlyPositiveReal
        );
        let static_npr = StateSpace::new(
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 1),
            Matrix::zeros(1, 0),
            Matrix::filled(1, 1, -0.1),
        )
        .unwrap();
        assert!(!test_positive_real(&static_npr, &opts())
            .unwrap()
            .is_positive_real());
    }

    #[test]
    fn mimo_passive_rc_network() {
        // Two decoupled RC branches with series resistance: admittance matrix
        // Y(s) = diag(0.5 + 1/(s+1), 0.25 + 2/(s+2)) is strictly PR.
        let a = Matrix::diag(&[-1.0, -2.0]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let d = Matrix::diag(&[0.5, 0.25]);
        let ss = StateSpace::new(a, b, c, d).unwrap();
        assert_eq!(
            test_positive_real(&ss, &opts()).unwrap(),
            PositiveRealVerdict::StrictlyPositiveReal
        );
    }

    #[test]
    fn lossless_integrator_like_system_is_boundary_positive_real() {
        // Exercise the PositiveReal (non-strict) branch with a system whose
        // Popov function vanishes at a finite frequency:
        //   G(s) = (s² + 1)/(s² + s + 1)  ⇒  Re G(jω) = (1 − ω²)² / |·|² ≥ 0,
        // with equality exactly at ω = 1, and G(∞) = 1 so D + Dᵀ = 2 ≻ 0.
        let a = Matrix::from_rows(&[&[-1.0, -1.0], &[1.0, 0.0]]);
        let b = Matrix::column(&[1.0, 0.0]);
        // G(s) = 1 + (−s)/(s² + s + 1)
        let c = Matrix::row_vector(&[-1.0, 0.0]);
        let d = Matrix::filled(1, 1, 1.0);
        let ss = StateSpace::new(a, b, c, d).unwrap();
        let verdict = test_positive_real(&ss, &opts()).unwrap();
        match &verdict {
            PositiveRealVerdict::PositiveReal {
                boundary_frequencies,
            } => {
                assert!(!boundary_frequencies.is_empty());
                assert!(boundary_frequencies.iter().any(|w| (w - 1.0).abs() < 1e-5));
            }
            PositiveRealVerdict::StrictlyPositiveReal => {
                panic!("expected boundary case, got strict")
            }
            other => panic!("expected PositiveReal, got {other:?}"),
        }
        assert!(verdict.is_positive_real());
    }

    #[test]
    fn non_square_rejected() {
        let ss = StateSpace::new(
            Matrix::filled(1, 1, -1.0),
            Matrix::from_rows(&[&[1.0, 0.0]]),
            Matrix::filled(1, 1, 1.0),
            Matrix::from_rows(&[&[0.0, 0.0]]),
        )
        .unwrap();
        assert!(test_positive_real(&ss, &opts()).is_err());
    }
}
