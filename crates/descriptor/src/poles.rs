//! Finite-pole analysis and admissibility checks for descriptor systems.

use crate::error::DescriptorError;
use crate::impulse;
use crate::system::DescriptorSystem;
use crate::weierstrass::{decompose, WeierstrassOptions};
use ds_linalg::{eigen, Complex};

/// Finite dynamic eigenvalues of the pencil `(E, A)` (the poles of the finite
/// part of `G(s)`), computed through the Weierstrass-style decomposition.
///
/// # Errors
///
/// Propagates decomposition failures (e.g. singular pencils).
pub fn finite_eigenvalues(sys: &DescriptorSystem) -> Result<Vec<Complex>, DescriptorError> {
    let dec = decompose(sys, &WeierstrassOptions::default())?;
    Ok(eigen::eigenvalues(&dec.proper.a)?)
}

/// The number of finite dynamic modes `q = deg det(sE − A)`.
///
/// # Errors
///
/// Propagates decomposition failures.
pub fn finite_degree(sys: &DescriptorSystem) -> Result<usize, DescriptorError> {
    Ok(decompose(sys, &WeierstrassOptions::default())?.finite_dim)
}

/// Returns `true` when every finite eigenvalue of `(E, A)` has a strictly
/// negative real part (the pencil is *stable* in the paper's terminology).
///
/// # Errors
///
/// Propagates decomposition failures.
pub fn is_stable(sys: &DescriptorSystem, tol: f64) -> Result<bool, DescriptorError> {
    let eigs = finite_eigenvalues(sys)?;
    Ok(eigs.iter().all(|z| z.re < -tol.abs()))
}

/// Returns `true` when the descriptor system is *admissible*: regular, stable
/// and impulse-free.
///
/// # Errors
///
/// Propagates the underlying regularity, stability and impulse-test failures.
pub fn is_admissible(sys: &DescriptorSystem, tol: f64) -> Result<bool, DescriptorError> {
    if !sys.is_regular(tol)? {
        return Ok(false);
    }
    if !impulse::is_impulse_free(sys, tol)? {
        return Ok(false);
    }
    is_stable(sys, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_linalg::Matrix;

    fn stable_index1() -> DescriptorSystem {
        let e = Matrix::diag(&[1.0, 1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.2, 0.0], &[0.0, -3.0, 1.0], &[0.0, 0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 1.0, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::zeros(1, 1)).unwrap()
    }

    fn unstable_index1() -> DescriptorSystem {
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[0.5, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::zeros(1, 1)).unwrap()
    }

    fn impulsive_stable() -> DescriptorSystem {
        // G(s) = sL + 1/(s+1): impulsive but with stable finite mode.
        let e = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[-2.0, 0.0, 1.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::zeros(1, 1)).unwrap()
    }

    #[test]
    fn finite_eigenvalues_of_stable_system() {
        let eigs = finite_eigenvalues(&stable_index1()).unwrap();
        assert_eq!(eigs.len(), 2);
        assert!(eigs.iter().all(|z| z.re < 0.0));
        assert_eq!(finite_degree(&stable_index1()).unwrap(), 2);
    }

    #[test]
    fn stability_classification() {
        assert!(is_stable(&stable_index1(), 1e-9).unwrap());
        assert!(!is_stable(&unstable_index1(), 1e-9).unwrap());
    }

    #[test]
    fn admissibility_requires_impulse_freeness() {
        assert!(is_admissible(&stable_index1(), 1e-9).unwrap());
        // The impulsive system is stable but not impulse-free, hence not admissible.
        assert!(is_stable(&impulsive_stable(), 1e-9).unwrap());
        assert!(!is_admissible(&impulsive_stable(), 1e-9).unwrap());
    }

    #[test]
    fn admissibility_rejects_unstable() {
        assert!(!is_admissible(&unstable_index1(), 1e-9).unwrap());
    }

    #[test]
    fn purely_static_system_is_trivially_stable() {
        let sys = DescriptorSystem::new(
            Matrix::zeros(1, 1),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 1.0),
            Matrix::filled(1, 1, 2.0),
        )
        .unwrap();
        assert_eq!(finite_degree(&sys).unwrap(), 0);
        assert!(is_stable(&sys, 1e-9).unwrap());
    }
}
