//! Equivalence transformations of descriptor systems.
//!
//! *Restricted system equivalence* (r.s.e.) pre- and post-multiplies the pencil
//! by nonsingular matrices `Q`, `Z`; *strong equivalence* (s.e.) additionally
//! allows feedback-like terms `M`, `R` with `MᵀE = E R = 0` (paper eq. (6)).
//! Both preserve the transfer function.  The SVD coordinate form (paper
//! eq. (7)) is the workhorse representation for the impulse tests.

use crate::error::DescriptorError;
use crate::system::DescriptorSystem;
use ds_linalg::decomp::svd::svd;
use ds_linalg::Matrix;

/// Applies the restricted-system-equivalence transform
/// `(QᵀEZ, QᵀAZ, QᵀB, CZ, D)`.
///
/// `Q` and `Z` must be nonsingular `n x n` matrices (orthogonality is not
/// required but is numerically preferable).
///
/// # Errors
///
/// Returns [`DescriptorError::DimensionMismatch`] for incompatible shapes.
pub fn restricted_equivalence(
    sys: &DescriptorSystem,
    q: &Matrix,
    z: &Matrix,
) -> Result<DescriptorSystem, DescriptorError> {
    let n = sys.order();
    if q.shape() != (n, n) || z.shape() != (n, n) {
        return Err(DescriptorError::dimension_mismatch(format!(
            "r.s.e. transforms must be {n}x{n}, got Q {:?} and Z {:?}",
            q.shape(),
            z.shape()
        )));
    }
    let qt = q.transpose();
    DescriptorSystem::new(
        &(&qt * sys.e()) * z,
        &(&qt * sys.a()) * z,
        &qt * sys.b(),
        sys.c() * z,
        sys.d().clone(),
    )
}

/// Applies a *rectangular* projection `(LᵀEL R, LᵀAR, LᵀB, CR, D)` with left
/// projector `L` (`n x k`) and right projector `R` (`n x k`), producing a
/// reduced system of order `k`.  This is the operation used by the paper's
/// impulse-mode removal step (eq. (17)); it preserves the transfer function
/// only when the removed directions are simultaneously unobservable and
/// uncontrollable.
///
/// # Errors
///
/// Returns [`DescriptorError::DimensionMismatch`] for incompatible shapes.
pub fn project(
    sys: &DescriptorSystem,
    left: &Matrix,
    right: &Matrix,
) -> Result<DescriptorSystem, DescriptorError> {
    let n = sys.order();
    if left.rows() != n || right.rows() != n || left.cols() != right.cols() {
        return Err(DescriptorError::dimension_mismatch(format!(
            "projection matrices must be {n}xk with equal k, got {:?} and {:?}",
            left.shape(),
            right.shape()
        )));
    }
    let lt = left.transpose();
    DescriptorSystem::new(
        &(&lt * sys.e()) * right,
        &(&lt * sys.a()) * right,
        &lt * sys.b(),
        sys.c() * right,
        sys.d().clone(),
    )
}

/// The SVD coordinate form of a descriptor system (paper eq. (7)).
#[derive(Debug, Clone)]
pub struct SvdCoordinates {
    /// The transformed system `(UᵀEV, UᵀAV, UᵀB, CV, D)` where
    /// `UᵀEV = diag(Σ_r, 0)`.
    pub system: DescriptorSystem,
    /// Left orthogonal factor `U`.
    pub u: Matrix,
    /// Right orthogonal factor `V`.
    pub v: Matrix,
    /// Numerical rank `r` of `E`.
    pub rank_e: usize,
}

impl SvdCoordinates {
    /// The `A₂₂` block (rows/columns beyond `rank_e`) of the transformed `A`.
    pub fn a22(&self) -> Matrix {
        let n = self.system.order();
        self.system.a().block(self.rank_e, n, self.rank_e, n)
    }

    /// The `B₂` block (rows beyond `rank_e`) of the transformed `B`.
    pub fn b2(&self) -> Matrix {
        let n = self.system.order();
        self.system
            .b()
            .block(self.rank_e, n, 0, self.system.num_inputs())
    }

    /// The `C₂` block (columns beyond `rank_e`) of the transformed `C`.
    pub fn c2(&self) -> Matrix {
        let n = self.system.order();
        self.system
            .c()
            .block(0, self.system.num_outputs(), self.rank_e, n)
    }
}

/// Transforms a descriptor system to SVD coordinates: orthogonal `U`, `V` with
/// `UᵀEV = [[Σ_r, 0], [0, 0]]`.
///
/// # Errors
///
/// Propagates SVD failures.
pub fn to_svd_coordinates(
    sys: &DescriptorSystem,
    rel_tol: f64,
) -> Result<SvdCoordinates, DescriptorError> {
    let n = sys.order();
    let d = svd(sys.e())?;
    let r = d.rank(rel_tol);
    // Build full orthogonal U and V.  The Jacobi SVD leaves the U columns of
    // zero singular values as zero vectors, so complete the leading r columns
    // to a full orthonormal basis; V of a square matrix is already orthogonal.
    let u = ds_linalg::subspace::complete_basis(&d.u.block(0, n, 0, r), n)?;
    let v = if d.v.cols() == n {
        d.v.clone()
    } else {
        ds_linalg::subspace::complete_basis(&d.v.block(0, n, 0, r), n)?
    };
    let system = restricted_equivalence(sys, &u, &v)?;
    Ok(SvdCoordinates {
        system,
        u,
        v,
        rank_e: r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::{default_probe_points, max_deviation};

    fn sample_system() -> DescriptorSystem {
        // Mixed dynamic + algebraic states.
        let e = Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 0.0]]);
        let a = Matrix::from_rows(&[&[-1.0, 0.5, 0.0], &[0.0, -2.0, 1.0], &[1.0, 0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 1.0, 0.0]]);
        let d = Matrix::filled(1, 1, 0.1);
        DescriptorSystem::new(e, a, b, c, d).unwrap()
    }

    #[test]
    fn rse_with_orthogonal_matrices_preserves_transfer_function() {
        let sys = sample_system();
        // A deterministic orthogonal matrix from QR of a fixed matrix.
        let raw = Matrix::from_fn(3, 3, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        let q = ds_linalg::decomp::qr::factor_full(&raw).q;
        let raw2 = Matrix::from_fn(3, 3, |i, j| ((i * 5 + j * 2) % 5) as f64 - 2.0);
        let z = ds_linalg::decomp::qr::factor_full(&raw2).q;
        let transformed = restricted_equivalence(&sys, &q, &z).unwrap();
        let dev = max_deviation(&sys, &transformed, &default_probe_points()).unwrap();
        assert!(dev < 1e-10, "transfer function changed by {dev}");
    }

    #[test]
    fn rse_rejects_wrong_dimensions() {
        let sys = sample_system();
        assert!(restricted_equivalence(&sys, &Matrix::identity(2), &Matrix::identity(3)).is_err());
    }

    #[test]
    fn svd_coordinates_zero_trailing_e_block() {
        let sys = sample_system();
        let coords = to_svd_coordinates(&sys, 1e-12).unwrap();
        assert_eq!(coords.rank_e, 2);
        let n = sys.order();
        let e_t = coords.system.e();
        // Trailing block of E is zero.
        for i in coords.rank_e..n {
            for j in 0..n {
                assert!(e_t[(i, j)].abs() < 1e-12);
                assert!(e_t[(j, i)].abs() < 1e-12);
            }
        }
        // Leading block nonsingular.
        let e11 = e_t.block(0, coords.rank_e, 0, coords.rank_e);
        assert_eq!(
            ds_linalg::subspace::rank(&e11, 1e-12).unwrap(),
            coords.rank_e
        );
        // Transfer function preserved.
        let dev = max_deviation(&sys, &coords.system, &default_probe_points()).unwrap();
        assert!(dev < 1e-10);
    }

    #[test]
    fn svd_coordinate_blocks_have_expected_shapes() {
        let sys = sample_system();
        let coords = to_svd_coordinates(&sys, 1e-12).unwrap();
        assert_eq!(coords.a22().shape(), (1, 1));
        assert_eq!(coords.b2().shape(), (1, 1));
        assert_eq!(coords.c2().shape(), (1, 1));
    }

    #[test]
    fn projection_with_identity_is_identity() {
        let sys = sample_system();
        let projected = project(&sys, &Matrix::identity(3), &Matrix::identity(3)).unwrap();
        assert_eq!(&projected, &sys);
        // Wrong shapes rejected.
        assert!(project(&sys, &Matrix::zeros(3, 2), &Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn projection_reduces_order() {
        let sys = sample_system();
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]);
        let reduced = project(&sys, &l, &l).unwrap();
        assert_eq!(reduced.order(), 2);
        assert_eq!(reduced.num_inputs(), 1);
    }

    #[test]
    fn svd_coordinates_of_identity_e_is_full_rank() {
        let sys = DescriptorSystem::new(
            Matrix::identity(2),
            Matrix::diag(&[-1.0, -2.0]),
            Matrix::column(&[1.0, 1.0]),
            Matrix::row_vector(&[1.0, 0.0]),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        let coords = to_svd_coordinates(&sys, 1e-12).unwrap();
        assert_eq!(coords.rank_e, 2);
    }
}
