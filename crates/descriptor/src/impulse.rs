//! Impulse-freeness, impulse observability and impulse controllability tests
//! (paper Section 2.5, SVD-coordinate characterizations).

use crate::error::DescriptorError;
use crate::system::DescriptorSystem;
use crate::transform::{to_svd_coordinates, SvdCoordinates};
use ds_linalg::{subspace, Matrix};

/// Summary of the impulsive structure of a descriptor system.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpulseReport {
    /// Numerical rank of `E`.
    pub rank_e: usize,
    /// `true` when the pair `(E, A)` is impulse-free.
    pub impulse_free: bool,
    /// `true` when the triple `(E, A, C)` is impulse observable.
    pub impulse_observable: bool,
    /// `true` when the triple `(E, A, B)` is impulse controllable.
    pub impulse_controllable: bool,
}

/// Relative tolerance wrapper used by all tests in this module.
fn tol_for(sys: &DescriptorSystem, rel_tol: f64) -> f64 {
    rel_tol.max(f64::EPSILON * sys.order() as f64)
}

/// Computes the full impulse report for a descriptor system.
///
/// # Errors
///
/// Propagates SVD failures.
pub fn analyze(sys: &DescriptorSystem, rel_tol: f64) -> Result<ImpulseReport, DescriptorError> {
    let tol = tol_for(sys, rel_tol);
    let coords = to_svd_coordinates(sys, tol)?;
    Ok(ImpulseReport {
        rank_e: coords.rank_e,
        impulse_free: impulse_free_from_coords(&coords, tol)?,
        impulse_observable: impulse_observable_from_coords(&coords, tol)?,
        impulse_controllable: impulse_controllable_from_coords(&coords, tol)?,
    })
}

/// Returns `true` when the pair `(E, A)` is impulse-free: in SVD coordinates
/// the `A₂₂` block either vanishes (trivially, when `E` has full rank) or is
/// nonsingular (paper Section 2.5, item 5).
///
/// # Errors
///
/// Propagates SVD failures.
pub fn is_impulse_free(sys: &DescriptorSystem, rel_tol: f64) -> Result<bool, DescriptorError> {
    let tol = tol_for(sys, rel_tol);
    let coords = to_svd_coordinates(sys, tol)?;
    impulse_free_from_coords(&coords, tol)
}

/// Returns `true` when the triple `(E, A, C)` is impulse observable: the
/// stacked block `[A₂₂; C₂]` has full column rank.
///
/// # Errors
///
/// Propagates SVD failures.
pub fn is_impulse_observable(
    sys: &DescriptorSystem,
    rel_tol: f64,
) -> Result<bool, DescriptorError> {
    let tol = tol_for(sys, rel_tol);
    let coords = to_svd_coordinates(sys, tol)?;
    impulse_observable_from_coords(&coords, tol)
}

/// Returns `true` when the triple `(E, A, B)` is impulse controllable: the
/// stacked block `[A₂₂, B₂]` has full row rank.
///
/// # Errors
///
/// Propagates SVD failures.
pub fn is_impulse_controllable(
    sys: &DescriptorSystem,
    rel_tol: f64,
) -> Result<bool, DescriptorError> {
    let tol = tol_for(sys, rel_tol);
    let coords = to_svd_coordinates(sys, tol)?;
    impulse_controllable_from_coords(&coords, tol)
}

fn impulse_free_from_coords(coords: &SvdCoordinates, tol: f64) -> Result<bool, DescriptorError> {
    let n = coords.system.order();
    let k = n - coords.rank_e;
    if k == 0 {
        return Ok(true);
    }
    let a22 = coords.a22();
    Ok(subspace::rank(&a22, tol)? == k)
}

fn impulse_observable_from_coords(
    coords: &SvdCoordinates,
    tol: f64,
) -> Result<bool, DescriptorError> {
    let n = coords.system.order();
    let k = n - coords.rank_e;
    if k == 0 {
        return Ok(true);
    }
    let stacked = Matrix::vstack(&[&coords.a22(), &coords.c2()]);
    Ok(subspace::rank(&stacked, tol)? == k)
}

fn impulse_controllable_from_coords(
    coords: &SvdCoordinates,
    tol: f64,
) -> Result<bool, DescriptorError> {
    let n = coords.system.order();
    let k = n - coords.rank_e;
    if k == 0 {
        return Ok(true);
    }
    let stacked = Matrix::hstack(&[&coords.a22(), &coords.b2()]);
    Ok(subspace::rank(&stacked, tol)? == k)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Index-1 system (nondynamic mode only, impulse-free).
    fn index1() -> DescriptorSystem {
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.5], &[0.0, -2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::zeros(1, 1)).unwrap()
    }

    /// Index-2 system with an impulsive mode: nilpotent block of size 2.
    fn index2() -> DescriptorSystem {
        // E = [[1,0,0],[0,0,1],[0,0,0]], A = I gives a Jordan block at infinity
        // of size 2 plus one finite mode at 1... make the finite mode stable:
        let e = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[1.0, 1.0, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::zeros(1, 1)).unwrap()
    }

    #[test]
    fn regular_state_space_is_impulse_free() {
        let sys = DescriptorSystem::new(
            Matrix::identity(2),
            Matrix::diag(&[-1.0, -2.0]),
            Matrix::column(&[1.0, 0.0]),
            Matrix::row_vector(&[1.0, 1.0]),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        let report = analyze(&sys, 1e-10).unwrap();
        assert!(report.impulse_free);
        assert!(report.impulse_observable);
        assert!(report.impulse_controllable);
        assert_eq!(report.rank_e, 2);
    }

    #[test]
    fn index1_system_is_impulse_free() {
        let report = analyze(&index1(), 1e-10).unwrap();
        assert_eq!(report.rank_e, 1);
        assert!(report.impulse_free);
    }

    #[test]
    fn index2_system_has_impulsive_modes() {
        let sys = index2();
        let report = analyze(&sys, 1e-10).unwrap();
        assert_eq!(report.rank_e, 2);
        assert!(!report.impulse_free);
    }

    #[test]
    fn index2_system_impulse_controllability_and_observability() {
        // With B touching the impulsive chain the system is impulse
        // controllable; with C touching it, impulse observable.
        let sys = index2();
        let report = analyze(&sys, 1e-10).unwrap();
        // These specific structures are controllable/observable at infinity.
        assert!(report.impulse_controllable);
        assert!(report.impulse_observable);
    }

    #[test]
    fn unobservable_impulsive_mode_detected() {
        // Same pencil as index2 but C does not see the impulsive chain and B
        // does not excite it.
        let e = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let a = Matrix::diag(&[-1.0, 1.0, 1.0]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        let sys = DescriptorSystem::new(e, a, b, c, Matrix::zeros(1, 1)).unwrap();
        let report = analyze(&sys, 1e-10).unwrap();
        assert!(!report.impulse_free);
        assert!(!report.impulse_observable);
        assert!(!report.impulse_controllable);
    }

    #[test]
    fn individual_predicates_match_report() {
        let sys = index2();
        let report = analyze(&sys, 1e-10).unwrap();
        assert_eq!(is_impulse_free(&sys, 1e-10).unwrap(), report.impulse_free);
        assert_eq!(
            is_impulse_observable(&sys, 1e-10).unwrap(),
            report.impulse_observable
        );
        assert_eq!(
            is_impulse_controllable(&sys, 1e-10).unwrap(),
            report.impulse_controllable
        );
    }

    #[test]
    fn full_rank_e_shortcuts() {
        let sys = DescriptorSystem::new(
            Matrix::identity(3),
            Matrix::diag(&[-1.0, -2.0, -3.0]),
            Matrix::zeros(3, 1),
            Matrix::zeros(1, 3),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        // Even with zero B and C, a full-rank-E system has no impulsive modes.
        let report = analyze(&sys, 1e-10).unwrap();
        assert!(report.impulse_free && report.impulse_observable && report.impulse_controllable);
    }
}
