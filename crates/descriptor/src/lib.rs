//! # ds-descriptor
//!
//! Descriptor-system (singular state-space) substrate for the DAC 2006
//! passivity-test reproduction.
//!
//! A linear time-invariant continuous-time descriptor system (DS) is
//!
//! ```text
//! E x'(t) = A x(t) + B u(t)
//!   y(t)  = C x(t) + D u(t)
//! ```
//!
//! with `E` possibly singular, transfer function `G(s) = D + C (sE − A)⁻¹ B`.
//! This crate provides:
//!
//! * the [`DescriptorSystem`] and [`StateSpace`] types ([`system`]),
//! * transfer-function evaluation on the imaginary axis and elsewhere
//!   ([`transfer`]),
//! * restricted-system-equivalence / strong-equivalence transforms and the SVD
//!   coordinate form ([`transform`]),
//! * the impulse-freeness / impulse-observability / impulse-controllability
//!   tests of Section 2.5 of the paper ([`impulse`]),
//! * the Weierstrass-style additive decomposition into a proper part and Markov
//!   parameters ([`weierstrass`]), and
//! * finite-pole and stability analysis ([`poles`]).
//!
//! # Example
//!
//! ```
//! use ds_descriptor::system::DescriptorSystem;
//! use ds_linalg::Matrix;
//!
//! # fn main() -> Result<(), ds_descriptor::DescriptorError> {
//! // A 1-port RC shunt in index-1 descriptor form.
//! let e = Matrix::diag(&[1.0, 0.0]);
//! let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
//! let b = Matrix::from_rows(&[&[1.0], &[1.0]]);
//! let c = Matrix::from_rows(&[&[1.0, 1.0]]);
//! let d = Matrix::zeros(1, 1);
//! let sys = DescriptorSystem::new(e, a, b, c, d)?;
//! assert!(sys.is_regular(1e-9)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod impulse;
pub mod minreal;
pub mod poles;
pub mod system;
pub mod transfer;
pub mod transform;
pub mod weierstrass;

pub use error::DescriptorError;
pub use system::{DescriptorSystem, StateSpace};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::error::DescriptorError;
    pub use crate::system::{DescriptorSystem, StateSpace};
}
