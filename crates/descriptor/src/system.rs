//! The [`DescriptorSystem`] and [`StateSpace`] types.

use crate::error::DescriptorError;
use ds_linalg::{eigen, Matrix};

/// A linear time-invariant continuous-time descriptor system
/// `E x' = A x + B u`, `y = C x + D u` (paper eq. (1)).
///
/// `E` and `A` are `n x n`, `B` is `n x m_in`, `C` is `m_out x n`, `D` is
/// `m_out x m_in`. `E` may be singular; the pencil `(E, A)` is expected to be
/// regular for most operations.
#[derive(Debug, Clone, PartialEq)]
pub struct DescriptorSystem {
    e: Matrix,
    a: Matrix,
    b: Matrix,
    c: Matrix,
    d: Matrix,
}

impl DescriptorSystem {
    /// Creates a descriptor system after validating the matrix dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`DescriptorError::DimensionMismatch`] when the shapes are
    /// inconsistent.
    pub fn new(
        e: Matrix,
        a: Matrix,
        b: Matrix,
        c: Matrix,
        d: Matrix,
    ) -> Result<Self, DescriptorError> {
        let n = e.rows();
        if !e.is_square() || !a.is_square() || a.rows() != n {
            return Err(DescriptorError::dimension_mismatch(format!(
                "E is {:?} and A is {:?}; both must be square of the same order",
                e.shape(),
                a.shape()
            )));
        }
        if b.rows() != n {
            return Err(DescriptorError::dimension_mismatch(format!(
                "B has {} rows but the state dimension is {}",
                b.rows(),
                n
            )));
        }
        if c.cols() != n {
            return Err(DescriptorError::dimension_mismatch(format!(
                "C has {} columns but the state dimension is {}",
                c.cols(),
                n
            )));
        }
        if d.shape() != (c.rows(), b.cols()) {
            return Err(DescriptorError::dimension_mismatch(format!(
                "D is {:?} but C has {} rows and B has {} columns",
                d.shape(),
                c.rows(),
                b.cols()
            )));
        }
        Ok(DescriptorSystem { e, a, b, c, d })
    }

    /// Builds a descriptor system from a regular state space (`E = I`).
    pub fn from_state_space(ss: &StateSpace) -> Self {
        DescriptorSystem {
            e: Matrix::identity(ss.order()),
            a: ss.a.clone(),
            b: ss.b.clone(),
            c: ss.c.clone(),
            d: ss.d.clone(),
        }
    }

    /// The descriptor matrix `E`.
    pub fn e(&self) -> &Matrix {
        &self.e
    }

    /// The state matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// The input matrix `B`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// The output matrix `C`.
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// The feedthrough matrix `D`.
    pub fn d(&self) -> &Matrix {
        &self.d
    }

    /// State dimension `n`.
    pub fn order(&self) -> usize {
        self.e.rows()
    }

    /// Number of inputs `m_in`.
    pub fn num_inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs `m_out`.
    pub fn num_outputs(&self) -> usize {
        self.c.rows()
    }

    /// Returns `true` for a square system (as many inputs as outputs), which is
    /// the setting in which passivity is defined.
    pub fn is_square_system(&self) -> bool {
        self.num_inputs() == self.num_outputs()
    }

    /// Decomposes the system into its parts, consuming it.
    pub fn into_parts(self) -> (Matrix, Matrix, Matrix, Matrix, Matrix) {
        (self.e, self.a, self.b, self.c, self.d)
    }

    /// Numerical rank of `E`.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn rank_e(&self, rel_tol: f64) -> Result<usize, DescriptorError> {
        Ok(ds_linalg::subspace::rank(&self.e, rel_tol)?)
    }

    /// Checks regularity of the pencil `(E, A)`: `det(s₀E − A) ≠ 0` for some
    /// `s₀`.  Probes a fixed set of shift points and checks full numerical rank
    /// of `s₀E − A`; a regular pencil passes with probability 1.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn is_regular(&self, rel_tol: f64) -> Result<bool, DescriptorError> {
        let n = self.order();
        if n == 0 {
            return Ok(true);
        }
        for &s0 in &[1.0, -1.3, std::f64::consts::E, -0.314_159_265, 7.389_056] {
            let pencil = &self.e.scale(s0) - &self.a;
            if ds_linalg::subspace::rank(&pencil, rel_tol.max(1e-12))? == n {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// The adjoint (para-Hermitian conjugate) system with transfer function
    /// `G~(s) = Gᵀ(−s)`, realized as `(Eᵀ, −Aᵀ, −Cᵀ, Bᵀ, Dᵀ)`.
    pub fn adjoint(&self) -> DescriptorSystem {
        DescriptorSystem {
            e: self.e.transpose(),
            a: self.a.transpose().scale(-1.0),
            b: self.c.transpose().scale(-1.0),
            c: self.b.transpose(),
            d: self.d.transpose(),
        }
    }

    /// Parallel interconnection: the descriptor realization of `G₁(s) + G₂(s)`.
    ///
    /// # Errors
    ///
    /// Returns [`DescriptorError::DimensionMismatch`] when the port dimensions
    /// differ.
    pub fn parallel_sum(
        &self,
        other: &DescriptorSystem,
    ) -> Result<DescriptorSystem, DescriptorError> {
        if self.num_inputs() != other.num_inputs() || self.num_outputs() != other.num_outputs() {
            return Err(DescriptorError::dimension_mismatch(
                "parallel_sum requires matching input/output dimensions",
            ));
        }
        let e = Matrix::block_diag(&[&self.e, &other.e]);
        let a = Matrix::block_diag(&[&self.a, &other.a]);
        let b = Matrix::vstack(&[&self.b, &other.b]);
        let c = Matrix::hstack(&[&self.c, &other.c]);
        let d = &self.d + &other.d;
        Ok(DescriptorSystem { e, a, b, c, d })
    }

    /// Frobenius-norm scale of the system matrices, used to set tolerances.
    pub fn scale(&self) -> f64 {
        self.e
            .norm_fro()
            .max(self.a.norm_fro())
            .max(self.b.norm_fro())
            .max(self.c.norm_fro())
            .max(self.d.norm_fro())
            .max(1.0)
    }
}

/// A regular (non-singular `E = I`) state-space system `x' = A x + B u`,
/// `y = C x + D u`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpace {
    /// State matrix.
    pub a: Matrix,
    /// Input matrix.
    pub b: Matrix,
    /// Output matrix.
    pub c: Matrix,
    /// Feedthrough matrix.
    pub d: Matrix,
}

impl StateSpace {
    /// Creates a state-space system after validating dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`DescriptorError::DimensionMismatch`] when the shapes are
    /// inconsistent.
    pub fn new(a: Matrix, b: Matrix, c: Matrix, d: Matrix) -> Result<Self, DescriptorError> {
        let n = a.rows();
        if !a.is_square() {
            return Err(DescriptorError::dimension_mismatch("A must be square"));
        }
        if b.rows() != n || c.cols() != n || d.shape() != (c.rows(), b.cols()) {
            return Err(DescriptorError::dimension_mismatch(
                "B, C, D dimensions are inconsistent with A",
            ));
        }
        Ok(StateSpace { a, b, c, d })
    }

    /// State dimension.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.c.rows()
    }

    /// Poles (eigenvalues of `A`).
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue failures.
    pub fn poles(&self) -> Result<Vec<ds_linalg::Complex>, DescriptorError> {
        Ok(eigen::eigenvalues(&self.a)?)
    }

    /// Returns `true` when every pole has a strictly negative real part.
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue failures.
    pub fn is_stable(&self, tol: f64) -> Result<bool, DescriptorError> {
        Ok(eigen::is_hurwitz(&self.a, tol)?)
    }

    /// Converts to a descriptor system with `E = I`.
    pub fn to_descriptor(&self) -> DescriptorSystem {
        DescriptorSystem::from_state_space(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc_shunt() -> DescriptorSystem {
        // Node equation (C dv/dt + G v = i_in) plus a redundant algebraic state.
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0]]);
        let d = Matrix::zeros(1, 1);
        DescriptorSystem::new(e, a, b, c, d).unwrap()
    }

    #[test]
    fn construction_validates_dimensions() {
        let err = DescriptorSystem::new(
            Matrix::zeros(2, 2),
            Matrix::zeros(3, 3),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        );
        assert!(matches!(
            err,
            Err(DescriptorError::DimensionMismatch { .. })
        ));
        let err_b = DescriptorSystem::new(
            Matrix::zeros(2, 2),
            Matrix::zeros(2, 2),
            Matrix::zeros(3, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        );
        assert!(err_b.is_err());
        let err_d = DescriptorSystem::new(
            Matrix::zeros(2, 2),
            Matrix::zeros(2, 2),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(2, 2),
        );
        assert!(err_d.is_err());
    }

    #[test]
    fn accessors_and_dimensions() {
        let sys = rc_shunt();
        assert_eq!(sys.order(), 2);
        assert_eq!(sys.num_inputs(), 1);
        assert_eq!(sys.num_outputs(), 1);
        assert!(sys.is_square_system());
        assert_eq!(sys.rank_e(1e-10).unwrap(), 1);
    }

    #[test]
    fn regularity_detection() {
        let sys = rc_shunt();
        assert!(sys.is_regular(1e-12).unwrap());
        // Singular pencil: E = A = 0 row.
        let bad = DescriptorSystem::new(
            Matrix::diag(&[1.0, 0.0]),
            Matrix::diag(&[1.0, 0.0]),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert!(!bad.is_regular(1e-12).unwrap());
    }

    #[test]
    fn adjoint_realization_shape() {
        let sys = rc_shunt();
        let adj = sys.adjoint();
        assert_eq!(adj.order(), 2);
        assert_eq!(adj.num_inputs(), 1);
        assert_eq!(adj.num_outputs(), 1);
        assert_eq!(adj.e(), &sys.e().transpose());
        assert_eq!(adj.a(), &sys.a().transpose().scale(-1.0));
    }

    #[test]
    fn parallel_sum_doubles_order() {
        let sys = rc_shunt();
        let sum = sys.parallel_sum(&sys.adjoint()).unwrap();
        assert_eq!(sum.order(), 4);
        assert_eq!(sum.num_inputs(), 1);
        // Mismatched ports rejected.
        let two_port = DescriptorSystem::new(
            Matrix::identity(1),
            Matrix::identity(1).scale(-1.0),
            Matrix::zeros(1, 2),
            Matrix::zeros(2, 1),
            Matrix::zeros(2, 2),
        )
        .unwrap();
        assert!(sys.parallel_sum(&two_port).is_err());
    }

    #[test]
    fn state_space_round_trip() {
        let ss = StateSpace::new(
            Matrix::from_rows(&[&[-1.0, 0.0], &[1.0, -2.0]]),
            Matrix::column(&[1.0, 0.0]),
            Matrix::row_vector(&[0.0, 1.0]),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert_eq!(ss.order(), 2);
        assert!(ss.is_stable(1e-12).unwrap());
        let ds = ss.to_descriptor();
        assert_eq!(ds.e(), &Matrix::identity(2));
        assert!(ds.is_regular(1e-12).unwrap());
    }

    #[test]
    fn state_space_poles() {
        let ss = StateSpace::new(
            Matrix::diag(&[-1.0, -3.0]),
            Matrix::column(&[1.0, 1.0]),
            Matrix::row_vector(&[1.0, 1.0]),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        let poles = ss.poles().unwrap();
        let mut re: Vec<f64> = poles.iter().map(|z| z.re).collect();
        re.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((re[0] + 3.0).abs() < 1e-12);
        assert!((re[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn into_parts_round_trip() {
        let sys = rc_shunt();
        let (e, a, b, c, d) = sys.clone().into_parts();
        let rebuilt = DescriptorSystem::new(e, a, b, c, d).unwrap();
        assert_eq!(rebuilt, sys);
    }

    #[test]
    fn scale_is_at_least_one() {
        let sys = rc_shunt();
        assert!(sys.scale() >= 1.0);
    }

    #[test]
    fn state_space_rejects_bad_dimensions() {
        assert!(StateSpace::new(
            Matrix::zeros(2, 3),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1)
        )
        .is_err());
    }
}
