//! Error type for descriptor-system operations.

use ds_linalg::LinalgError;
use std::fmt;

/// Error returned by descriptor-system routines.
#[derive(Debug, Clone, PartialEq)]
pub enum DescriptorError {
    /// The five system matrices have inconsistent dimensions.
    DimensionMismatch {
        /// Human-readable description of the inconsistency.
        details: String,
    },
    /// The pencil `(E, A)` is singular (not regular): `det(sE − A) ≡ 0`.
    SingularPencil,
    /// The requested operation needs a square system (`m` inputs = `m` outputs).
    NotSquareSystem {
        /// Number of inputs.
        inputs: usize,
        /// Number of outputs.
        outputs: usize,
    },
    /// The operation requires an impulse-free / admissible system but the input
    /// is not.
    NotAdmissible {
        /// Explanation of the failed requirement.
        details: String,
    },
    /// A numerical kernel failed underneath.
    Numerical(LinalgError),
    /// Generic invalid input.
    InvalidInput {
        /// Explanation of the violated precondition.
        message: String,
    },
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescriptorError::DimensionMismatch { details } => {
                write!(f, "dimension mismatch: {details}")
            }
            DescriptorError::SingularPencil => {
                write!(f, "the matrix pencil (E, A) is singular (not regular)")
            }
            DescriptorError::NotSquareSystem { inputs, outputs } => write!(
                f,
                "operation requires a square system, got {inputs} inputs and {outputs} outputs"
            ),
            DescriptorError::NotAdmissible { details } => {
                write!(f, "system is not admissible: {details}")
            }
            DescriptorError::Numerical(e) => write!(f, "numerical kernel failed: {e}"),
            DescriptorError::InvalidInput { message } => write!(f, "invalid input: {message}"),
        }
    }
}

impl std::error::Error for DescriptorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DescriptorError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for DescriptorError {
    fn from(e: LinalgError) -> Self {
        DescriptorError::Numerical(e)
    }
}

impl DescriptorError {
    /// Convenience constructor for [`DescriptorError::InvalidInput`].
    pub fn invalid_input(message: impl Into<String>) -> Self {
        DescriptorError::InvalidInput {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`DescriptorError::DimensionMismatch`].
    pub fn dimension_mismatch(details: impl Into<String>) -> Self {
        DescriptorError::DimensionMismatch {
            details: details.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DescriptorError::SingularPencil
            .to_string()
            .contains("singular"));
        assert!(DescriptorError::dimension_mismatch("E is 2x3")
            .to_string()
            .contains("E is 2x3"));
        assert!(DescriptorError::NotSquareSystem {
            inputs: 2,
            outputs: 3
        }
        .to_string()
        .contains("2 inputs"));
    }

    #[test]
    fn from_linalg_error_keeps_source() {
        let inner = LinalgError::Singular { operation: "lu" };
        let err: DescriptorError = inner.clone().into();
        assert_eq!(err, DescriptorError::Numerical(inner));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<DescriptorError>();
    }
}
