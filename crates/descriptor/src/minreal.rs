//! Minimal-realization helpers for regular state-space systems.
//!
//! The necessity direction of the positive-real LMI (paper Section 2.2) and
//! the `M₁` chain construction (Section 3.4) both assume a *minimal*
//! realization.  This module provides the Kalman-style reduction that removes
//! uncontrollable and unobservable finite modes from a [`StateSpace`], plus the
//! controllability/observability subspace computations it is built on.

use crate::error::DescriptorError;
use crate::system::StateSpace;
use ds_linalg::{subspace, Matrix};

/// Orthonormal basis of the controllable subspace
/// `span[B, AB, …, A^{n−1}B]` of `(A, B)`.
///
/// # Errors
///
/// Propagates numerical failures.
pub fn controllable_subspace(
    a: &Matrix,
    b: &Matrix,
    rel_tol: f64,
) -> Result<Matrix, DescriptorError> {
    let n = a.rows();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }
    let mut basis = subspace::range_basis(b, rel_tol)?;
    loop {
        if basis.cols() == 0 || basis.cols() == n {
            return Ok(basis);
        }
        let image = a.matmul(&basis)?;
        let extended = subspace::sum(&basis, &image, rel_tol)?;
        if extended.cols() == basis.cols() {
            return Ok(basis);
        }
        basis = extended;
    }
}

/// Orthonormal basis of the observable subspace of `(A, C)` (the orthogonal
/// complement of the unobservable subspace `⋂ Ker(C Aᵏ)`).
///
/// # Errors
///
/// Propagates numerical failures.
pub fn observable_subspace(
    a: &Matrix,
    c: &Matrix,
    rel_tol: f64,
) -> Result<Matrix, DescriptorError> {
    // Observability of (A, C) is controllability of (Aᵀ, Cᵀ).
    controllable_subspace(&a.transpose(), &c.transpose(), rel_tol)
}

/// Result of a minimal-realization reduction.
#[derive(Debug, Clone)]
pub struct MinimalRealization {
    /// The reduced (controllable and observable) state space.
    pub system: StateSpace,
    /// Number of uncontrollable states removed.
    pub removed_uncontrollable: usize,
    /// Number of unobservable states removed (after the controllability pass).
    pub removed_unobservable: usize,
}

/// Removes uncontrollable and then unobservable finite modes of a state-space
/// system by orthogonal projection onto the controllable / observable
/// subspaces.  The transfer function is preserved.
///
/// # Errors
///
/// Propagates numerical failures.
pub fn minimal_realization(
    ss: &StateSpace,
    rel_tol: f64,
) -> Result<MinimalRealization, DescriptorError> {
    let n = ss.order();
    // Controllability pass.
    let vc = controllable_subspace(&ss.a, &ss.b, rel_tol)?;
    let (a1, b1, c1) = if vc.cols() < n {
        (
            vc.transpose_matmul(&ss.a.matmul(&vc)?)?,
            vc.transpose_matmul(&ss.b)?,
            ss.c.matmul(&vc)?,
        )
    } else {
        (ss.a.clone(), ss.b.clone(), ss.c.clone())
    };
    let removed_uncontrollable = n - a1.rows();

    // Observability pass on the reduced system.
    let vo = observable_subspace(&a1, &c1, rel_tol)?;
    let n1 = a1.rows();
    let (a2, b2, c2) = if vo.cols() < n1 {
        (
            vo.transpose_matmul(&a1.matmul(&vo)?)?,
            vo.transpose_matmul(&b1)?,
            c1.matmul(&vo)?,
        )
    } else {
        (a1, b1, c1)
    };
    let removed_unobservable = n1 - a2.rows();

    Ok(MinimalRealization {
        system: StateSpace::new(a2, b2, c2, ss.d.clone())?,
        removed_uncontrollable,
        removed_unobservable,
    })
}

/// Returns `true` when `(A, B)` is controllable and `(A, C)` observable,
/// i.e. the realization is already minimal.
///
/// # Errors
///
/// Propagates numerical failures.
pub fn is_minimal(ss: &StateSpace, rel_tol: f64) -> Result<bool, DescriptorError> {
    let n = ss.order();
    Ok(controllable_subspace(&ss.a, &ss.b, rel_tol)?.cols() == n
        && observable_subspace(&ss.a, &ss.c, rel_tol)?.cols() == n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer;
    use ds_linalg::Complex;

    fn probe(ss: &StateSpace, s: Complex) -> f64 {
        let v = transfer::evaluate_state_space(ss, s).unwrap();
        v.re[(0, 0)]
    }

    #[test]
    fn controllable_subspace_of_controllable_pair_is_full() {
        let a = Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, -2.0]]);
        let b = Matrix::column(&[0.0, 1.0]);
        assert_eq!(controllable_subspace(&a, &b, 1e-10).unwrap().cols(), 2);
    }

    #[test]
    fn uncontrollable_mode_detected_and_removed() {
        // Block-diagonal system where the second state never sees the input.
        let a = Matrix::diag(&[-1.0, -5.0]);
        let b = Matrix::column(&[1.0, 0.0]);
        let c = Matrix::row_vector(&[2.0, 3.0]);
        let ss = StateSpace::new(a, b, c, Matrix::zeros(1, 1)).unwrap();
        assert!(!is_minimal(&ss, 1e-10).unwrap());
        let min = minimal_realization(&ss, 1e-10).unwrap();
        assert_eq!(min.system.order(), 1);
        assert_eq!(min.removed_uncontrollable, 1);
        assert_eq!(min.removed_unobservable, 0);
        // Transfer function preserved: G(s) = 2/(s+1).
        for &w in &[0.0, 1.0, 4.0] {
            let s = Complex::new(0.0, w);
            assert!((probe(&ss, s) - probe(&min.system, s)).abs() < 1e-10);
        }
    }

    #[test]
    fn unobservable_mode_detected_and_removed() {
        let a = Matrix::diag(&[-1.0, -5.0]);
        let b = Matrix::column(&[1.0, 1.0]);
        let c = Matrix::row_vector(&[2.0, 0.0]);
        let ss = StateSpace::new(a, b, c, Matrix::zeros(1, 1)).unwrap();
        let min = minimal_realization(&ss, 1e-10).unwrap();
        assert_eq!(min.system.order(), 1);
        assert_eq!(min.removed_unobservable, 1);
        for &w in &[0.3, 2.0] {
            let s = Complex::new(0.5, w);
            assert!((probe(&ss, s) - probe(&min.system, s)).abs() < 1e-10);
        }
    }

    #[test]
    fn minimal_system_untouched() {
        let a = Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, -2.0]]);
        let b = Matrix::column(&[0.0, 1.0]);
        let c = Matrix::row_vector(&[1.0, 0.0]);
        let ss = StateSpace::new(a, b, c, Matrix::filled(1, 1, 0.5)).unwrap();
        assert!(is_minimal(&ss, 1e-10).unwrap());
        let min = minimal_realization(&ss, 1e-10).unwrap();
        assert_eq!(min.system.order(), 2);
        assert_eq!(min.removed_uncontrollable + min.removed_unobservable, 0);
    }

    #[test]
    fn duplicated_parallel_branches_collapse() {
        // Two identical RC branches in parallel share a single pole; the
        // duplicated realization is reducible to order 1.
        let a = Matrix::diag(&[-1.0, -1.0]);
        let b = Matrix::column(&[1.0, 1.0]);
        let c = Matrix::row_vector(&[0.5, 0.5]);
        let ss = StateSpace::new(a, b, c, Matrix::zeros(1, 1)).unwrap();
        let min = minimal_realization(&ss, 1e-10).unwrap();
        assert_eq!(min.system.order(), 1);
        for &w in &[0.0, 1.0, 10.0] {
            let s = Complex::new(0.0, w);
            assert!((probe(&ss, s) - probe(&min.system, s)).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_system_is_minimal() {
        let ss = StateSpace::new(
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 1),
            Matrix::zeros(1, 0),
            Matrix::filled(1, 1, 1.0),
        )
        .unwrap();
        assert!(is_minimal(&ss, 1e-10).unwrap());
        assert_eq!(minimal_realization(&ss, 1e-10).unwrap().system.order(), 0);
    }
}
