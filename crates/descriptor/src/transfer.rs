//! Transfer-function evaluation for descriptor systems.
//!
//! `G(s) = D + C (sE − A)⁻¹ B` is evaluated at complex frequencies by solving
//! the real augmented system
//!
//! ```text
//! [ Re(s)E − A   −Im(s)E ] [X_re]   [B]
//! [ Im(s)E    Re(s)E − A ] [X_im] = [0]
//! ```
//!
//! which avoids a complex matrix type.

use crate::error::DescriptorError;
use crate::system::{DescriptorSystem, StateSpace};
use ds_linalg::decomp::{lu, symmetric};
use ds_linalg::{Complex, Matrix};

/// The value of a (matrix) transfer function at one complex frequency, stored
/// as real and imaginary parts.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferValue {
    /// Real part of `G(s)`.
    pub re: Matrix,
    /// Imaginary part of `G(s)`.
    pub im: Matrix,
}

impl TransferValue {
    /// Maximum absolute entry over both parts.
    pub fn norm_max(&self) -> f64 {
        self.re.norm_max().max(self.im.norm_max())
    }

    /// Entry-wise difference `self − other` as a new [`TransferValue`].
    pub fn sub(&self, other: &TransferValue) -> TransferValue {
        TransferValue {
            re: &self.re - &other.re,
            im: &self.im - &other.im,
        }
    }

    /// The Hermitian part `(G + Gᴴ)/2 · 2 = G + Gᴴ` represented as an
    /// equivalent real symmetric matrix of twice the size:
    /// `H = S + iK ⪰ 0  ⇔  [[S, −K], [K, S]] ⪰ 0`.
    pub fn popov_real_embedding(&self) -> Matrix {
        let s = &self.re + &self.re.transpose();
        let k = &self.im - &self.im.transpose();
        Matrix::from_blocks_2x2(&s, &k.scale(-1.0), &k, &s)
    }

    /// Smallest eigenvalue of the Hermitian matrix `G + Gᴴ` (the Popov
    /// function when evaluated at `s = jω`).
    ///
    /// # Errors
    ///
    /// Propagates symmetric-eigensolver failures.
    pub fn popov_min_eigenvalue(&self) -> Result<f64, DescriptorError> {
        let embedded = self.popov_real_embedding();
        Ok(symmetric::min_eigenvalue(&embedded)?)
    }
}

/// Evaluates `G(s)` for a descriptor system at the complex point `s`.
///
/// # Errors
///
/// Returns [`DescriptorError::SingularPencil`] when `sE − A` is singular at the
/// requested point (i.e. `s` is a pole), and propagates other numerical errors.
pub fn evaluate(sys: &DescriptorSystem, s: Complex) -> Result<TransferValue, DescriptorError> {
    let n = sys.order();
    let e = sys.e();
    let a = sys.a();
    let real_block = &e.scale(s.re) - a;
    let imag_block = e.scale(s.im);
    // Augmented real system.
    let aug = Matrix::from_blocks_2x2(
        &real_block,
        &imag_block.scale(-1.0),
        &imag_block,
        &real_block,
    );
    let rhs = Matrix::vstack(&[sys.b(), &Matrix::zeros(n, sys.num_inputs())]);
    let x = lu::solve(&aug, &rhs).map_err(|err| match err {
        ds_linalg::LinalgError::Singular { .. } => DescriptorError::SingularPencil,
        other => DescriptorError::Numerical(other),
    })?;
    let x_re = x.block(0, n, 0, sys.num_inputs());
    let x_im = x.block(n, 2 * n, 0, sys.num_inputs());
    Ok(TransferValue {
        re: &(sys.c() * &x_re) + sys.d(),
        im: sys.c() * &x_im,
    })
}

/// Evaluates `G(jω)` on the imaginary axis.
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_jomega(
    sys: &DescriptorSystem,
    omega: f64,
) -> Result<TransferValue, DescriptorError> {
    evaluate(sys, Complex::new(0.0, omega))
}

/// Evaluates the transfer function of a regular state space at `s`.
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_state_space(ss: &StateSpace, s: Complex) -> Result<TransferValue, DescriptorError> {
    evaluate(&ss.to_descriptor(), s)
}

/// Compares the transfer functions of two descriptor systems on a set of probe
/// frequencies (both on and off the imaginary axis) and returns the largest
/// absolute deviation.  Used throughout the test suites to verify that system
/// transformations preserve `G(s)`.
///
/// # Errors
///
/// Propagates evaluation errors (poles at a probe point are skipped).
pub fn max_deviation(
    sys1: &DescriptorSystem,
    sys2: &DescriptorSystem,
    probes: &[Complex],
) -> Result<f64, DescriptorError> {
    let mut worst: f64 = 0.0;
    let mut evaluated = 0;
    for &s in probes {
        let g1 = match evaluate(sys1, s) {
            Ok(v) => v,
            Err(DescriptorError::SingularPencil) => continue,
            Err(e) => return Err(e),
        };
        let g2 = match evaluate(sys2, s) {
            Ok(v) => v,
            Err(DescriptorError::SingularPencil) => continue,
            Err(e) => return Err(e),
        };
        worst = worst.max(g1.sub(&g2).norm_max());
        evaluated += 1;
    }
    if evaluated == 0 {
        return Err(DescriptorError::invalid_input(
            "all probe points hit poles of the systems being compared",
        ));
    }
    Ok(worst)
}

/// A default set of probe frequencies for transfer-function comparisons:
/// a mix of imaginary-axis points and general complex points away from typical
/// pole locations.
pub fn default_probe_points() -> Vec<Complex> {
    vec![
        Complex::new(0.0, 0.1),
        Complex::new(0.0, 1.0),
        Complex::new(0.0, 10.0),
        Complex::new(0.0, 100.0),
        Complex::new(1.0, 0.5),
        Complex::new(2.5, -3.0),
        Complex::new(0.3, 7.0),
        Complex::new(5.0, 0.0),
    ]
}

/// Markov-parameter estimate `M₁ ≈ lim_{σ→∞} [G(σ) − G(−σ)] / (2σ)` evaluated
/// by sampling at a large real frequency; exact when `G` has polynomial degree
/// at most one (i.e. `M_k = 0` for `k ≥ 2`), which the passivity flow
/// guarantees for passive systems.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn sample_m1(sys: &DescriptorSystem, sigma: f64) -> Result<Matrix, DescriptorError> {
    let g_plus = evaluate(sys, Complex::from_real(sigma))?;
    let g_minus = evaluate(sys, Complex::from_real(-sigma))?;
    Ok((&g_plus.re - &g_minus.re).scale(1.0 / (2.0 * sigma)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// G(s) = 1 / (s + 1) as a descriptor system with a redundant algebraic state.
    fn first_order() -> DescriptorSystem {
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0]]);
        let c = Matrix::from_rows(&[&[1.0, 0.0]]);
        let d = Matrix::zeros(1, 1);
        DescriptorSystem::new(e, a, b, c, d).unwrap()
    }

    /// G(s) = R + sL (impedance of a series RL branch), an impulsive system.
    fn series_rl(r: f64, l: f64) -> DescriptorSystem {
        // States: current i (dynamic), auxiliary algebraic variable v_l.
        //   L di/dt = v_l            (E row with L)
        //   0       = -v_l - R i + u (algebraic)
        //   y       = v_l + R i      ... easier: use the 2x2 construction below.
        // Simpler exact realization of  G(s) = R + s L:
        //   E = [[0, L],[0, 0]], A = [[-1, 0],[0, -1]], B = [1, ?]...
        // Use the standard polynomial realization:
        //   G(s) = R + s L  =  D + C (sE - A)^{-1} B with
        //   E = [[0, 1],[0, 0]], A = I, B = [0, 1]ᵀ, C = [L, 0], D = R... check:
        //   (sE - A) = [[-1, s],[0, -1]], inverse = [[-1, -s],[0, -1]],
        //   C (sE-A)^{-1} B = [L, 0] [[-1,-s],[0,-1]] [0,1]ᵀ = [L, 0]·[-s, -1]ᵀ = -Ls.
        // So pick C = [-L, 0] to get +Ls.
        let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[-l, 0.0]]);
        let d = Matrix::filled(1, 1, r);
        DescriptorSystem::new(e, a, b, c, d).unwrap()
    }

    #[test]
    fn first_order_lowpass_values() {
        let sys = first_order();
        // G(j0) = 1
        let g0 = evaluate_jomega(&sys, 0.0).unwrap();
        assert!((g0.re[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(g0.im[(0, 0)].abs() < 1e-12);
        // G(j1) = 1/(1 + j) = 0.5 - 0.5j
        let g1 = evaluate_jomega(&sys, 1.0).unwrap();
        assert!((g1.re[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((g1.im[(0, 0)] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn series_rl_is_impulsive_but_evaluates() {
        let sys = series_rl(2.0, 3.0);
        let g = evaluate(&sys, Complex::new(0.0, 5.0)).unwrap();
        // G(j5) = 2 + 15j
        assert!((g.re[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((g.im[(0, 0)] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn evaluation_at_pole_reports_singular() {
        let sys = first_order();
        assert!(matches!(
            evaluate(&sys, Complex::from_real(-1.0)),
            Err(DescriptorError::SingularPencil)
        ));
    }

    #[test]
    fn popov_function_of_passive_rc() {
        let sys = first_order();
        for &w in &[0.0, 0.3, 1.0, 10.0, 1e3] {
            let g = evaluate_jomega(&sys, w).unwrap();
            assert!(
                g.popov_min_eigenvalue().unwrap() >= -1e-12,
                "Popov function negative at ω = {w}"
            );
        }
    }

    #[test]
    fn popov_embedding_matches_scalar_case() {
        let sys = first_order();
        let g = evaluate_jomega(&sys, 1.0).unwrap();
        // For scalar G, G + G* = 2 Re G.
        let min = g.popov_min_eigenvalue().unwrap();
        assert!((min - 2.0 * 0.5).abs() < 1e-10);
    }

    #[test]
    fn max_deviation_of_identical_systems_is_zero() {
        let sys = first_order();
        let dev = max_deviation(&sys, &sys.clone(), &default_probe_points()).unwrap();
        assert!(dev < 1e-13);
    }

    #[test]
    fn max_deviation_detects_difference() {
        let sys = first_order();
        let other = series_rl(1.0, 1.0);
        let dev = max_deviation(&sys, &other, &default_probe_points()).unwrap();
        assert!(dev > 0.1);
    }

    #[test]
    fn m1_sampling_recovers_inductance() {
        let sys = series_rl(2.0, 3.0);
        let m1 = sample_m1(&sys, 1e4).unwrap();
        assert!((m1[(0, 0)] - 3.0).abs() < 1e-6);
        // The proper first-order system has no M1.
        let m1_proper = sample_m1(&first_order(), 1e4).unwrap();
        assert!(m1_proper[(0, 0)].abs() < 1e-6);
    }

    #[test]
    fn adjoint_transfer_is_transposed_reflection() {
        let sys = series_rl(2.0, 3.0);
        let adj = sys.adjoint();
        let s = Complex::new(0.7, 2.0);
        let g = evaluate(&sys, Complex::new(-0.7, -2.0)).unwrap();
        let h = evaluate(&adj, s).unwrap();
        // H(s) = Gᵀ(−s); scalar case: H(s) = G(−s).
        assert!((g.re[(0, 0)] - h.re[(0, 0)]).abs() < 1e-10);
        assert!((g.im[(0, 0)] - h.im[(0, 0)]).abs() < 1e-10);
    }

    #[test]
    fn state_space_evaluation_agrees_with_descriptor() {
        let ss = StateSpace::new(
            Matrix::from_rows(&[&[-2.0, 1.0], &[0.0, -1.0]]),
            Matrix::column(&[0.0, 1.0]),
            Matrix::row_vector(&[1.0, 0.0]),
            Matrix::filled(1, 1, 0.5),
        )
        .unwrap();
        let s = Complex::new(0.0, 2.0);
        let v1 = evaluate_state_space(&ss, s).unwrap();
        let v2 = evaluate(&ss.to_descriptor(), s).unwrap();
        assert!(v1.sub(&v2).norm_max() < 1e-13);
    }
}
