//! Weierstrass-style additive decomposition of a descriptor system.
//!
//! A regular pencil `(E, A)` is equivalent to `(diag(I, N), diag(A_f, I))` with
//! `N` nilpotent (the Weierstrass canonical form, paper eq. (8)); the transfer
//! function then splits as
//!
//! ```text
//! G(s) = C_f (sI − A_f)⁻¹ B_f  +  M₀ + s M₁ + s² M₂ + …      (paper eq. (3)/(9))
//! ```
//!
//! This module computes that split *without* GUPTRI: a Cayley-shifted resolvent
//! `K = (αE − A)⁻¹ E` maps the infinite eigenvalues of the pencil to the zero
//! eigenvalue of `K` with the same Jordan structure, so the generalized kernel
//! and range of `K` are the right deflating subspaces of the infinite and
//! finite spectra.  The decoupling transformation `W = [E·X_f, A·X_∞]` is
//! generally **non-orthogonal**, which is exactly the conditioning caveat the
//! paper raises for Weierstrass-based passivity tests; it is retained here
//! because this module also serves as the paper's "Weierstrass approach"
//! baseline.

use crate::error::DescriptorError;
use crate::system::{DescriptorSystem, StateSpace};
use ds_linalg::decomp::lu;
use ds_linalg::{subspace, Matrix};

/// Options for the Weierstrass decomposition.
#[derive(Debug, Clone)]
pub struct WeierstrassOptions {
    /// Relative tolerance for all rank decisions.
    pub rel_tol: f64,
    /// Candidate Cayley shifts `α`; the first one making `αE − A` nonsingular
    /// and yielding a well-conditioned decoupling is used.
    pub shift_candidates: Vec<f64>,
}

impl Default for WeierstrassOptions {
    fn default() -> Self {
        WeierstrassOptions {
            rel_tol: 1e-9,
            shift_candidates: vec![
                1.0,
                -1.618,
                std::f64::consts::E,
                -0.577,
                7.389,
                -13.2,
                0.123,
            ],
        }
    }
}

/// The additive decomposition `G(s) = G_p(s) + s M₁ + s² M₂ + …` where
/// `G_p(s) = M₀ + C_f (sI − A_f)⁻¹ B_f` is the proper part.
#[derive(Debug, Clone)]
pub struct WeierstrassDecomposition {
    /// Proper part as a regular state space `(A_f, B_f, C_f, M₀)`.
    pub proper: StateSpace,
    /// Polynomial Markov parameters `[M₁, M₂, …]` (empty for proper systems).
    /// Trailing (numerically) zero coefficients are trimmed.
    pub markov: Vec<Matrix>,
    /// Dimension `q` of the finite spectrum (`deg det(sE − A)`).
    pub finite_dim: usize,
    /// Dimension `n − q` of the infinite spectral structure
    /// (nondynamic + impulsive modes).
    pub infinite_dim: usize,
    /// Index of nilpotency `ν` of the infinite structure (0 when `E` is
    /// nonsingular, 1 for impulse-free singular systems, ≥ 2 when impulsive
    /// modes are present).
    pub nilpotent_index: usize,
    /// The Cayley shift that was used.
    pub shift: f64,
}

impl WeierstrassDecomposition {
    /// The first-order Markov parameter `M₁` (zero matrix if absent).
    pub fn m1(&self, outputs: usize, inputs: usize) -> Matrix {
        self.markov
            .first()
            .cloned()
            .unwrap_or_else(|| Matrix::zeros(outputs, inputs))
    }

    /// Degree of the polynomial part (0 when there is none).
    pub fn polynomial_degree(&self) -> usize {
        self.markov.len()
    }

    /// `true` when the transfer function is proper (no `s^k`, `k ≥ 1`, terms).
    pub fn is_proper(&self) -> bool {
        self.markov.is_empty()
    }
}

/// Computes the Weierstrass-style additive decomposition of a regular
/// descriptor system.
///
/// # Errors
///
/// * [`DescriptorError::SingularPencil`] when no candidate shift makes
///   `αE − A` invertible or the deflating subspaces do not decouple (both are
///   symptoms of a singular pencil or extreme ill-conditioning).
/// * Propagates numerical errors from the underlying kernels.
pub fn decompose(
    sys: &DescriptorSystem,
    options: &WeierstrassOptions,
) -> Result<WeierstrassDecomposition, DescriptorError> {
    let n = sys.order();
    let m_in = sys.num_inputs();
    let m_out = sys.num_outputs();
    if n == 0 {
        return Ok(WeierstrassDecomposition {
            proper: StateSpace::new(
                Matrix::zeros(0, 0),
                Matrix::zeros(0, m_in),
                Matrix::zeros(m_out, 0),
                sys.d().clone(),
            )?,
            markov: vec![],
            finite_dim: 0,
            infinite_dim: 0,
            nilpotent_index: 0,
            shift: 0.0,
        });
    }

    let mut last_error = DescriptorError::SingularPencil;
    for &alpha in &options.shift_candidates {
        match try_decompose_with_shift(sys, alpha, options.rel_tol) {
            Ok(result) => return Ok(result),
            Err(err) => last_error = err,
        }
    }
    Err(last_error)
}

fn try_decompose_with_shift(
    sys: &DescriptorSystem,
    alpha: f64,
    rel_tol: f64,
) -> Result<WeierstrassDecomposition, DescriptorError> {
    let n = sys.order();
    let m_in = sys.num_inputs();
    let m_out = sys.num_outputs();

    // K = (αE − A)⁻¹ E maps finite eigenvalues λ to 1/(α − λ) and infinite
    // eigenvalues to 0, preserving Jordan structure.
    let shifted = &sys.e().scale(alpha) - sys.a();
    let factor = lu::factor(&shifted)?;
    if factor.singular {
        return Err(DescriptorError::SingularPencil);
    }
    let k = factor.solve(sys.e())?;

    // Generalized kernel of K: iterate powers until the nullity stagnates.
    let mut power = k.clone();
    let mut prev_nullity = 0usize;
    let mut nu = 0usize;
    let mut kernel = Matrix::zeros(n, 0);
    for step in 1..=n {
        let ns = subspace::null_space(&power, rel_tol)?;
        if ns.cols() == prev_nullity {
            break;
        }
        prev_nullity = ns.cols();
        kernel = ns;
        nu = step;
        if prev_nullity == n {
            break;
        }
        power = power.matmul(&k)?;
    }
    let infinite_dim = prev_nullity;
    let q = n - infinite_dim;

    // Deflating subspaces.
    let (x_f, x_inf) = if infinite_dim == 0 {
        (Matrix::identity(n), Matrix::zeros(n, 0))
    } else {
        // range(K^ν) for the finite part; `power` currently holds K^ν or K^{ν+1}
        // depending on where the loop stopped, so recompute K^ν cleanly.
        let mut k_nu = Matrix::identity(n);
        for _ in 0..nu {
            k_nu = k_nu.matmul(&k)?;
        }
        let range = subspace::range_basis(&k_nu, rel_tol)?;
        (range, kernel)
    };
    if x_f.cols() != q {
        return Err(DescriptorError::invalid_input(format!(
            "deflating-subspace dimensions disagree: range gives {}, kernel gives {}",
            x_f.cols(),
            infinite_dim
        )));
    }

    // Decoupling transformation.
    let z = Matrix::hstack(&[&x_f, &x_inf]);
    let e_xf = sys.e().matmul(&x_f)?;
    let a_xinf = sys.a().matmul(&x_inf)?;
    let w = Matrix::hstack(&[&e_xf, &a_xinf]);
    let w_factor = lu::factor(&w)?;
    if w_factor.singular {
        return Err(DescriptorError::SingularPencil);
    }

    let e_tilde = w_factor.solve(&sys.e().matmul(&z)?)?;
    let a_tilde = w_factor.solve(&sys.a().matmul(&z)?)?;
    let b_tilde = w_factor.solve(sys.b())?;
    let c_tilde = sys.c().matmul(&z)?;

    // Verify the expected block-diagonal structure (the off-diagonal blocks
    // must vanish for true deflating subspaces).
    let scale = e_tilde.norm_max().max(a_tilde.norm_max()).max(1.0);
    let coupling_tol = 1e-6 * scale;
    let e_off = e_tilde
        .block(q, n, 0, q)
        .norm_max()
        .max(e_tilde.block(0, q, q, n).norm_max());
    let a_off = a_tilde
        .block(q, n, 0, q)
        .norm_max()
        .max(a_tilde.block(0, q, q, n).norm_max());
    if e_off > coupling_tol || a_off > coupling_tol {
        return Err(DescriptorError::invalid_input(format!(
            "deflating subspaces failed to decouple the pencil (residual {:.2e})",
            e_off.max(a_off)
        )));
    }

    // Finite part: E block is identity by construction, A block is A_f.
    let e_f = e_tilde.block(0, q, 0, q);
    let a_f_raw = a_tilde.block(0, q, 0, q);
    // Guard against mild departure of E_f from identity by solving E_f A_f = raw.
    let a_f = if q > 0 {
        lu::solve(&e_f, &a_f_raw)?
    } else {
        a_f_raw
    };
    let b_f = if q > 0 {
        lu::solve(&e_f, &b_tilde.block(0, q, 0, m_in))?
    } else {
        Matrix::zeros(0, m_in)
    };
    let c_f = c_tilde.block(0, m_out, 0, q);

    // Infinite part: A block is identity, E block is the nilpotent N.
    let nilpotent = e_tilde.block(q, n, q, n);
    let a_inf = a_tilde.block(q, n, q, n);
    let b_inf_raw = b_tilde.block(q, n, 0, m_in);
    let b_inf = if infinite_dim > 0 {
        lu::solve(&a_inf, &b_inf_raw)?
    } else {
        b_inf_raw
    };
    let c_inf = c_tilde.block(0, m_out, q, n);

    // Markov parameters: G_poly(s) = −Σ_k s^k C_∞ N^k B_∞.
    let m0 = if infinite_dim > 0 {
        sys.d() - &c_inf.matmul(&b_inf)?
    } else {
        sys.d().clone()
    };
    let mut markov = Vec::new();
    if infinite_dim > 0 {
        let mut n_power = nilpotent.clone();
        let markov_tol = 1e-10 * sys.scale();
        for _ in 1..nu.max(1) {
            let mk = c_inf.matmul(&n_power.matmul(&b_inf)?)?.scale(-1.0);
            markov.push(mk);
            n_power = n_power.matmul(&nilpotent)?;
        }
        // Trim trailing zero coefficients.
        while markov
            .last()
            .map(|m: &Matrix| m.norm_max() <= markov_tol)
            .unwrap_or(false)
        {
            markov.pop();
        }
    }

    Ok(WeierstrassDecomposition {
        proper: StateSpace::new(a_f, b_f, c_f, m0)?,
        markov,
        finite_dim: q,
        infinite_dim,
        nilpotent_index: if infinite_dim == 0 { 0 } else { nu },
        shift: alpha,
    })
}

/// Evaluates the decomposition at a complex point and compares against the
/// original transfer function; returns the maximum deviation over the probes.
/// Intended for validation in tests and examples.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn validation_error(
    sys: &DescriptorSystem,
    decomposition: &WeierstrassDecomposition,
    probes: &[ds_linalg::Complex],
) -> Result<f64, DescriptorError> {
    use crate::transfer;
    let mut worst: f64 = 0.0;
    for &s in probes {
        let g = match transfer::evaluate(sys, s) {
            Ok(v) => v,
            Err(DescriptorError::SingularPencil) => continue,
            Err(e) => return Err(e),
        };
        let gp = transfer::evaluate_state_space(&decomposition.proper, s)?;
        // Add the polynomial part sᵏ Mₖ.
        let mut total_re = gp.re.clone();
        let mut total_im = gp.im.clone();
        let mut s_pow = s;
        for mk in &decomposition.markov {
            total_re = &total_re + &mk.scale(s_pow.re);
            total_im = &total_im + &mk.scale(s_pow.im);
            s_pow = s_pow * s;
        }
        let dev_re = (&g.re - &total_re).norm_max();
        let dev_im = (&g.im - &total_im).norm_max();
        worst = worst.max(dev_re.max(dev_im));
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transfer::default_probe_points;

    fn proper_index1() -> DescriptorSystem {
        // G(s) = 1/(s+1) + 2 with a nondynamic mode.
        let e = Matrix::diag(&[1.0, 0.0]);
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let c = Matrix::from_rows(&[&[1.0, 1.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::zeros(1, 1)).unwrap()
    }

    /// G(s) = R + sL realized with an index-2 pencil.
    fn series_rl(r: f64, l: f64) -> DescriptorSystem {
        let e = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let c = Matrix::from_rows(&[&[-l, 0.0]]);
        DescriptorSystem::new(e, a, b, c, Matrix::filled(1, 1, r)).unwrap()
    }

    #[test]
    fn proper_system_has_no_markov_parameters() {
        let sys = proper_index1();
        let dec = decompose(&sys, &WeierstrassOptions::default()).unwrap();
        assert!(dec.is_proper());
        assert_eq!(dec.finite_dim, 1);
        assert_eq!(dec.infinite_dim, 1);
        assert_eq!(dec.nilpotent_index, 1);
        // M0 absorbs the nondynamic feedthrough: G(∞) = 0 + (−C2B2) = 2? The
        // algebraic state contributes −(1)(2)·(−1) = +2 ... validate via G.
        let err = validation_error(&sys, &dec, &default_probe_points()).unwrap();
        assert!(err < 1e-8, "decomposition deviates by {err}");
    }

    #[test]
    fn series_rl_yields_m1_equal_to_inductance() {
        let sys = series_rl(2.0, 3.0);
        let dec = decompose(&sys, &WeierstrassOptions::default()).unwrap();
        assert_eq!(dec.finite_dim, 0);
        assert_eq!(dec.infinite_dim, 2);
        assert_eq!(dec.nilpotent_index, 2);
        assert_eq!(dec.polynomial_degree(), 1);
        let m1 = dec.m1(1, 1);
        assert!((m1[(0, 0)] - 3.0).abs() < 1e-9, "M1 = {}", m1[(0, 0)]);
        // M0 = R.
        assert!((dec.proper.d[(0, 0)] - 2.0).abs() < 1e-9);
        let err = validation_error(&sys, &dec, &default_probe_points()).unwrap();
        assert!(err < 1e-8);
    }

    #[test]
    fn regular_system_passes_through() {
        let sys = DescriptorSystem::new(
            Matrix::identity(2),
            Matrix::from_rows(&[&[-1.0, 1.0], &[0.0, -2.0]]),
            Matrix::column(&[0.0, 1.0]),
            Matrix::row_vector(&[1.0, 0.0]),
            Matrix::filled(1, 1, 0.25),
        )
        .unwrap();
        let dec = decompose(&sys, &WeierstrassOptions::default()).unwrap();
        assert_eq!(dec.finite_dim, 2);
        assert_eq!(dec.infinite_dim, 0);
        assert_eq!(dec.nilpotent_index, 0);
        assert!(dec.is_proper());
        let err = validation_error(&sys, &dec, &default_probe_points()).unwrap();
        assert!(err < 1e-9);
    }

    #[test]
    fn finite_dim_matches_pencil_degree() {
        // Mixed system: one finite mode, one nondynamic, one impulsive pair.
        let e = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 0.0],
        ]);
        let a = Matrix::diag(&[-2.0, 1.0, 1.0, 1.0]);
        let b = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0], &[0.5]]);
        let c = Matrix::from_rows(&[&[1.0, 1.0, 0.0, 0.5]]);
        let sys = DescriptorSystem::new(e, a, b, c, Matrix::zeros(1, 1)).unwrap();
        let dec = decompose(&sys, &WeierstrassOptions::default()).unwrap();
        assert_eq!(dec.finite_dim, 1);
        assert_eq!(dec.infinite_dim, 3);
        let err = validation_error(&sys, &dec, &default_probe_points()).unwrap();
        assert!(err < 1e-8);
    }

    #[test]
    fn singular_pencil_rejected() {
        let sys = DescriptorSystem::new(
            Matrix::diag(&[1.0, 0.0]),
            Matrix::diag(&[1.0, 0.0]),
            Matrix::zeros(2, 1),
            Matrix::zeros(1, 2),
            Matrix::zeros(1, 1),
        )
        .unwrap();
        assert!(decompose(&sys, &WeierstrassOptions::default()).is_err());
    }

    #[test]
    fn empty_system_is_trivial() {
        let sys = DescriptorSystem::new(
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 0),
            Matrix::zeros(0, 1),
            Matrix::zeros(1, 0),
            Matrix::filled(1, 1, 4.0),
        )
        .unwrap();
        let dec = decompose(&sys, &WeierstrassOptions::default()).unwrap();
        assert_eq!(dec.finite_dim, 0);
        assert_eq!(dec.proper.d[(0, 0)], 4.0);
    }

    #[test]
    fn proper_part_poles_are_original_finite_modes() {
        let sys = proper_index1();
        let dec = decompose(&sys, &WeierstrassOptions::default()).unwrap();
        let poles = dec.proper.poles().unwrap();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re + 1.0).abs() < 1e-9);
    }
}
