//! The persistent, sharded result store.
//!
//! Verdicts for 10⁵-scenario ensembles accumulate across runs and across
//! processes: every [`SweepTask`] gets a stable content *fingerprint*
//! (family / order / ports / seed / margin / method), completed records are
//! appended to a run-stamped JSONL *segment* under the store directory, and
//! on startup the store loads every prior segment so drivers can skip
//! already-fingerprinted tasks (`--resume`) and merge old + new records into
//! the canonical sorted artifacts.
//!
//! Two levels of parallelism compose here: intra-run, the atomic-cursor
//! worker pool of [`crate::sweep`]; inter-run, [`shard_tasks`] deterministically
//! partitions one matrix across `m` independent processes (`--shard i/m`)
//! whose segments merge losslessly because each record carries its *global*
//! task index.  The merged, sorted JSONL of a 2-shard run is byte-identical
//! to the single-process run of the same matrix — pinned by the workspace
//! store tests and the CI shard-merge smoke job.
//!
//! Store layout:
//!
//! ```text
//! store-dir/
//!   segment-<stamp>.jsonl   one per completed run (same schema as sweep.jsonl)
//!   merged.jsonl            canonical artifact: all segments, deduped, sorted
//!   merged.csv              same records in the CSV schema (timings of loaded
//!                           records are zero: only deterministic fields persist)
//! ```
//!
//! Fingerprint stability: the fingerprint is a plain string over artifact-
//! stable identifiers (`FamilyKind::name`, `Method::name`) and exact values
//! (margin by its IEEE-754 bit pattern), so it never changes across processes,
//! platforms or runs, and it can be recomputed from a persisted record as well
//! as from an in-memory task.

use crate::artifacts;
use crate::json;
use crate::method::Method;
use crate::scenario::{FamilyKind, SweepTask};
use crate::sweep::{SweepRecord, TaskStatus};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Builds the stable content fingerprint from its raw components.
///
/// The margin enters by bit pattern: the JSONL serializer emits the shortest
/// round-trip decimal form, so a margin parsed back from a segment recovers
/// the exact bits it was written with.
pub fn fingerprint_parts(
    family: &str,
    order: usize,
    ports: usize,
    seed: u64,
    margin: f64,
    method: &str,
) -> String {
    format!(
        "{family}|o{order}|p{ports}|s{seed}|m{:016x}|{method}",
        margin.to_bits()
    )
}

/// The stable content fingerprint of a task.
pub fn task_fingerprint(task: &SweepTask) -> String {
    let s = &task.scenario;
    fingerprint_parts(
        s.family.name(),
        s.order(),
        s.ports,
        s.seed,
        s.margin,
        task.method.name(),
    )
}

/// The stable content fingerprint of a completed record.  For the record a
/// task produced, this equals [`task_fingerprint`] of that task.
pub fn record_fingerprint(record: &SweepRecord) -> String {
    fingerprint_parts(
        record.family,
        record.order,
        record.ports,
        record.seed,
        record.margin,
        record.method,
    )
}

/// Deterministically partitions a task list across `modulus` independent
/// processes: shard `index` takes every task whose global id `% modulus ==
/// index`, *keeping the global id*.  The shards are disjoint, cover the
/// matrix, and merge losslessly: sorting the union of their records by task
/// id reproduces the single-process artifact byte-for-byte.
///
/// # Panics
///
/// Panics if `modulus == 0` or `index >= modulus`.
pub fn shard_tasks(tasks: &[SweepTask], index: usize, modulus: usize) -> Vec<(usize, SweepTask)> {
    assert!(modulus > 0, "shard modulus must be positive");
    assert!(
        index < modulus,
        "shard index {index} out of range for modulus {modulus}"
    );
    tasks
        .iter()
        .enumerate()
        .filter(|(id, _)| id % modulus == index)
        .map(|(id, task)| (id, task.clone()))
        .collect()
}

fn field<'a>(value: &'a json::Value, key: &str) -> Result<&'a json::Value, String> {
    value.get(key).ok_or_else(|| format!("missing key '{key}'"))
}

fn usize_field(value: &json::Value, key: &str) -> Result<usize, String> {
    let n = field(value, key)?
        .as_f64()
        .ok_or_else(|| format!("key '{key}' is not a number"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("key '{key}' is not a non-negative integer: {n}"));
    }
    Ok(n as usize)
}

fn opt_bool_field(value: &json::Value, key: &str) -> Result<Option<bool>, String> {
    match field(value, key)? {
        json::Value::Null => Ok(None),
        json::Value::Bool(b) => Ok(Some(*b)),
        _ => Err(format!("key '{key}' is not a boolean or null")),
    }
}

fn str_field<'a>(value: &'a json::Value, key: &str) -> Result<&'a str, String> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| format!("key '{key}' is not a string"))
}

/// Parses one JSONL artifact line back into a [`SweepRecord`].
///
/// Only the deterministic fields are persisted, so the nondeterministic ones
/// come back neutral: `elapsed` is zero and `worker` is 0.  Seeds and ids
/// round-trip through the JSON number representation (`f64`), which is exact
/// up to 2⁵³ — far beyond any ensemble this store will see.
///
/// # Errors
///
/// Describes the first schema violation found.
pub fn record_from_jsonl_line(line: &str) -> Result<SweepRecord, String> {
    let value = json::parse(line)?;
    let family_name = str_field(&value, "family")?;
    let family =
        FamilyKind::parse(family_name).ok_or_else(|| format!("unknown family '{family_name}'"))?;
    let method_name = str_field(&value, "method")?;
    let method =
        Method::parse(method_name).ok_or_else(|| format!("unknown method '{method_name}'"))?;
    let status_name = str_field(&value, "status")?;
    let status =
        TaskStatus::parse(status_name).ok_or_else(|| format!("unknown status '{status_name}'"))?;
    let violation_count = match field(&value, "violation_count")? {
        json::Value::Null => None,
        other => Some(
            other
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| "key 'violation_count' is not a count or null".to_string())?
                as usize,
        ),
    };
    // Added in schema v2; segments written by older builds lack the key, so
    // it is optional rather than required — missing reads as "no witness".
    let witness_frequency = match value.get("witness_frequency") {
        None | Some(json::Value::Null) => None,
        Some(other) => Some(
            other
                .as_f64()
                .ok_or_else(|| "key 'witness_frequency' is not a number or null".to_string())?,
        ),
    };
    // Added in schema v3 (the reduce-then-verify path); older segments lack
    // the keys, which reads as "not a reduced task".
    let reduced_order = match value.get("reduced_order") {
        None | Some(json::Value::Null) => None,
        Some(other) => Some(
            other
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| "key 'reduced_order' is not a count or null".to_string())?
                as usize,
        ),
    };
    let residual = match value.get("residual") {
        None | Some(json::Value::Null) => None,
        Some(other) => Some(
            other
                .as_f64()
                .ok_or_else(|| "key 'residual' is not a number or null".to_string())?,
        ),
    };
    let reduction_ns = match value.get("reduction_ns") {
        None | Some(json::Value::Null) => None,
        Some(other) => Some(
            other
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| "key 'reduction_ns' is not a count or null".to_string())?
                as u64,
        ),
    };
    Ok(SweepRecord {
        task_id: usize_field(&value, "task")?,
        family: family.name(),
        scenario: str_field(&value, "scenario")?.to_string(),
        order: usize_field(&value, "order")?,
        ports: usize_field(&value, "ports")?,
        seed: usize_field(&value, "seed")? as u64,
        // JSON cannot represent non-finite numbers, so the serializer emits
        // `null` for them; map it back to NaN rather than rejecting the line
        // — one odd record must not make every future open of the store fail.
        margin: match field(&value, "margin")? {
            json::Value::Null => f64::NAN,
            other => other
                .as_f64()
                .ok_or_else(|| "key 'margin' is not a number".to_string())?,
        },
        method: method.name(),
        status,
        passive: opt_bool_field(&value, "passive")?,
        strict: field(&value, "strict")?
            .as_bool()
            .ok_or_else(|| "key 'strict' is not a boolean".to_string())?,
        reason: str_field(&value, "reason")?.to_string(),
        expected_passive: opt_bool_field(&value, "expected_passive")?,
        agrees: opt_bool_field(&value, "agrees")?,
        violation_count,
        witness_frequency,
        reduced_order,
        residual,
        reduction_ns,
        stage_ns: None,
        elapsed: Duration::ZERO,
        worker: 0,
    })
}

/// The persistent result store: a directory of append-only JSONL segments
/// plus the canonical merged artifacts.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    records: Vec<SweepRecord>,
    fingerprints: HashMap<String, usize>,
}

impl ResultStore {
    /// Opens (creating if necessary) a store directory and loads every prior
    /// `segment-*.jsonl`, in sorted filename order.
    ///
    /// # Errors
    ///
    /// Reports I/O failures and the first malformed segment line.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("creating store dir {}: {e}", dir.display()))?;
        let mut segment_paths = Vec::new();
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| format!("reading store dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading store dir entry: {e}"))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("segment-") && name.ends_with(".jsonl") {
                segment_paths.push(entry.path());
            }
        }
        segment_paths.sort();
        let mut store = ResultStore {
            dir,
            records: Vec::new(),
            fingerprints: HashMap::new(),
        };
        for path in segment_paths {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading segment {}: {e}", path.display()))?;
            for (lineno, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let record = record_from_jsonl_line(line)
                    .map_err(|e| format!("{} line {}: {e}", path.display(), lineno + 1))?;
                store.insert(record);
            }
        }
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of distinct fingerprinted records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether a record with this fingerprint is already stored.
    pub fn contains(&self, fingerprint: &str) -> bool {
        self.fingerprints.contains_key(fingerprint)
    }

    /// The stored record with this fingerprint, if any — the persistent cache
    /// tier of the `ds-serve` daemon: a verdict computed in any earlier run
    /// (or by any earlier server process) is answered from here without
    /// recomputation.
    pub fn get(&self, fingerprint: &str) -> Option<&SweepRecord> {
        self.fingerprints
            .get(fingerprint)
            .map(|&index| &self.records[index])
    }

    /// Inserts a record unless its fingerprint is already present (duplicate
    /// fingerprints carry identical deterministic fields, so first-wins is
    /// lossless).  Returns whether the record was new.
    fn insert(&mut self, record: SweepRecord) -> bool {
        let fingerprint = record_fingerprint(&record);
        if let std::collections::hash_map::Entry::Vacant(entry) =
            self.fingerprints.entry(fingerprint)
        {
            entry.insert(self.records.len());
            self.records.push(record);
            true
        } else {
            false
        }
    }

    /// Splits `(global id, task)` pairs into those whose fingerprints are not
    /// yet stored (to run) and the count of already-fingerprinted ones (to
    /// skip) — the `--resume` pre-pass, O(tasks) thanks to the hash set.
    pub fn partition_pending(
        &self,
        tasks: Vec<(usize, SweepTask)>,
    ) -> (Vec<(usize, SweepTask)>, usize) {
        let total = tasks.len();
        let pending: Vec<(usize, SweepTask)> = tasks
            .into_iter()
            .filter(|(_, task)| !self.contains(&task_fingerprint(task)))
            .collect();
        let skipped = total - pending.len();
        (pending, skipped)
    }

    /// Appends completed records as a new run-stamped segment
    /// (`segment-<stamp>.jsonl`) and folds them into the in-memory view.
    /// Writing is atomic-ish: the segment is written to a temp name first and
    /// renamed into place, so a crashed run never leaves a half-parsable
    /// segment behind.  Returns the segment path (`None` when `records` is
    /// empty — nothing to persist).
    ///
    /// # Errors
    ///
    /// Reports I/O failures, including a stamp collision (two runs must not
    /// share a segment file).
    pub fn append_segment(
        &mut self,
        stamp: &str,
        records: &[SweepRecord],
    ) -> Result<Option<PathBuf>, String> {
        if records.is_empty() {
            return Ok(None);
        }
        let path = self.dir.join(format!("segment-{stamp}.jsonl"));
        if path.exists() {
            return Err(format!("segment {} already exists", path.display()));
        }
        let text = artifacts::render_segment_jsonl(records);
        let tmp = self.dir.join(format!(".segment-{stamp}.jsonl.tmp"));
        std::fs::write(&tmp, &text).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("renaming {} into place: {e}", path.display()))?;
        for record in records {
            self.insert(record.clone());
        }
        Ok(Some(path))
    }

    /// All stored records, deduped by fingerprint and sorted by
    /// `(task id, fingerprint)` — the canonical merge order.  With a stable
    /// matrix the ids alone are a total order; the fingerprint tiebreak keeps
    /// the merge deterministic even if segments from different matrices ever
    /// share a store.
    pub fn merged_records(&self) -> Vec<SweepRecord> {
        let mut records = self.records.clone();
        // Cached keys: one fingerprint allocation per record, not two per
        // comparison — this runs after every sharded run at 10⁵+ records.
        records.sort_by_cached_key(|r| (r.task_id, record_fingerprint(r)));
        records
    }

    /// Writes (and self-validates) the canonical merged artifacts
    /// `merged.jsonl` and `merged.csv` in the store directory, returning their
    /// paths and the record count.
    ///
    /// # Errors
    ///
    /// Reports I/O failures and validation failures of the just-written
    /// artifacts.
    pub fn write_merged(&self) -> Result<(PathBuf, PathBuf, usize), String> {
        let records = self.merged_records();
        let jsonl_path = self.dir.join("merged.jsonl");
        let csv_path = self.dir.join("merged.csv");
        let jsonl = artifacts::render_jsonl(&records);
        let csv = artifacts::render_csv(&records);
        std::fs::write(&jsonl_path, &jsonl)
            .map_err(|e| format!("writing {}: {e}", jsonl_path.display()))?;
        std::fs::write(&csv_path, &csv)
            .map_err(|e| format!("writing {}: {e}", csv_path.display()))?;
        let n =
            artifacts::validate_jsonl(&jsonl).map_err(|e| format!("merged JSONL invalid: {e}"))?;
        let n_csv =
            artifacts::validate_csv(&csv).map_err(|e| format!("merged CSV invalid: {e}"))?;
        if n != records.len() || n_csv != records.len() {
            return Err(format!(
                "merged artifact record counts diverge: jsonl={n} csv={n_csv} expected={}",
                records.len()
            ));
        }
        Ok((jsonl_path, csv_path, records.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::scenario::{scenario_matrix, FamilyKind, Scenario};
    use crate::sweep::{run_sweep, SweepSpec};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_store_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ds-harness-store-{}-{tag}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_tasks() -> Vec<SweepTask> {
        let scenarios = vec![
            Scenario::new(FamilyKind::RcLadder, 3),
            Scenario::new(FamilyKind::NonpassiveLadder, 6),
            Scenario::new(FamilyKind::PerturbedBoundary, 4)
                .with_margin(0.5)
                .with_seed(3),
        ];
        scenario_matrix(&scenarios, &[Method::Proposed, Method::Weierstrass])
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let tasks = small_tasks();
        let fingerprints: HashSet<String> = tasks.iter().map(task_fingerprint).collect();
        assert_eq!(fingerprints.len(), tasks.len(), "fingerprint collision");
        // Stability: the exact format is part of the on-disk contract.
        assert_eq!(
            task_fingerprint(&tasks[0]),
            format!("rc_ladder|o4|p1|s0|m{:016x}|proposed", 0f64.to_bits())
        );
    }

    #[test]
    fn record_fingerprint_matches_task_fingerprint() {
        let tasks = small_tasks();
        let result = run_sweep(&SweepSpec::new(tasks.clone(), 2));
        for (task, record) in tasks.iter().zip(&result.records) {
            assert_eq!(task_fingerprint(task), record_fingerprint(record));
        }
    }

    #[test]
    fn jsonl_line_roundtrips_to_an_equal_record() {
        let result = run_sweep(&SweepSpec::new(small_tasks(), 2));
        for record in &result.records {
            let line = artifacts::jsonl_line(record);
            let parsed = record_from_jsonl_line(&line).unwrap();
            // Re-rendering the parsed record must reproduce the line exactly:
            // that is what makes merged artifacts byte-stable across loads.
            assert_eq!(artifacts::jsonl_line(&parsed), line);
        }
        assert!(record_from_jsonl_line("{\"task\":0}").is_err());
        assert!(record_from_jsonl_line("nope").is_err());
    }

    #[test]
    fn null_margin_loads_as_nan_instead_of_poisoning_the_store() {
        // A non-finite margin serializes as `"margin":null`; a segment
        // containing such a record must still load (NaN round-trips back to
        // null on re-render, so merged artifacts stay byte-stable).
        let result = run_sweep(&SweepSpec::new(small_tasks(), 1));
        let mut record = result.records[0].clone();
        record.margin = f64::NAN;
        let line = artifacts::jsonl_line(&record);
        assert!(line.contains("\"margin\":null"));
        let parsed = record_from_jsonl_line(&line).unwrap();
        assert!(parsed.margin.is_nan());
        assert_eq!(artifacts::jsonl_line(&parsed), line);
    }

    #[test]
    fn shard_partition_is_disjoint_and_covering() {
        let tasks = small_tasks();
        let a = shard_tasks(&tasks, 0, 2);
        let b = shard_tasks(&tasks, 1, 2);
        assert_eq!(a.len() + b.len(), tasks.len());
        let mut ids: Vec<usize> = a.iter().chain(&b).map(|(id, _)| *id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..tasks.len()).collect::<Vec<_>>());
        for (id, task) in a.iter().chain(&b) {
            assert_eq!(task, &tasks[*id]);
        }
    }

    #[test]
    fn store_accumulates_segments_and_resumes() {
        let dir = temp_store_dir("resume");
        let tasks = small_tasks();
        {
            let mut store = ResultStore::open(&dir).unwrap();
            assert!(store.is_empty());
            let shard = shard_tasks(&tasks, 0, 2);
            let ids: Vec<usize> = shard.iter().map(|(id, _)| *id).collect();
            let list: Vec<SweepTask> = shard.into_iter().map(|(_, t)| t).collect();
            let result = run_sweep(&SweepSpec::new(list, 1).with_task_ids(ids));
            store.append_segment("run-a", &result.records).unwrap();
        }
        // A fresh open sees the first shard's records and only schedules the
        // second shard's tasks.
        let mut store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), tasks.len().div_ceil(2));
        let indexed: Vec<(usize, SweepTask)> = tasks.iter().cloned().enumerate().collect();
        let (pending, skipped) = store.partition_pending(indexed.clone());
        assert_eq!(skipped, store.len());
        assert_eq!(pending.len(), tasks.len() - skipped);
        let ids: Vec<usize> = pending.iter().map(|(id, _)| *id).collect();
        let list: Vec<SweepTask> = pending.into_iter().map(|(_, t)| t).collect();
        let result = run_sweep(&SweepSpec::new(list, 2).with_task_ids(ids));
        store.append_segment("run-b", &result.records).unwrap();
        // Now everything is fingerprinted: resume runs zero tasks.
        let (pending, skipped) = store.partition_pending(indexed);
        assert!(pending.is_empty());
        assert_eq!(skipped, tasks.len());
        // Appending an empty record set writes no segment.
        assert_eq!(store.append_segment("run-c", &[]).unwrap(), None);
        // Duplicate stamps are rejected.
        let result = run_sweep(&SweepSpec::new(small_tasks(), 1));
        assert!(store.append_segment("run-a", &result.records).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merged_artifacts_match_single_process_run() {
        let dir = temp_store_dir("merge");
        let tasks = small_tasks();
        let single = run_sweep(&SweepSpec::new(tasks.clone(), 1));
        let reference = artifacts::render_jsonl(&single.records);

        let mut store = ResultStore::open(&dir).unwrap();
        // Shards run out of order (1 before 0) on different thread counts.
        for shard_index in [1usize, 0] {
            let shard = shard_tasks(&tasks, shard_index, 2);
            let ids: Vec<usize> = shard.iter().map(|(id, _)| *id).collect();
            let list: Vec<SweepTask> = shard.into_iter().map(|(_, t)| t).collect();
            let result = run_sweep(&SweepSpec::new(list, 1 + shard_index).with_task_ids(ids));
            store
                .append_segment(&format!("shard-{shard_index}"), &result.records)
                .unwrap();
        }
        let (jsonl_path, _, n) = store.write_merged().unwrap();
        assert_eq!(n, tasks.len());
        let merged = std::fs::read_to_string(&jsonl_path).unwrap();
        assert_eq!(merged, reference, "merged JSONL diverged from single run");

        // Re-opening and re-merging (records now come from disk) is stable too.
        let reopened = ResultStore::open(&dir).unwrap();
        let (jsonl_path, _, _) = reopened.write_merged().unwrap();
        assert_eq!(std::fs::read_to_string(&jsonl_path).unwrap(), reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
