//! Artifact rendering: JSONL and CSV serialization of sweep records,
//! self-validation of the emitted artifacts, and aggregate summaries.
//!
//! The JSONL lines contain only *deterministic* fields (no wall-clock
//! timings, no worker ids), so the sorted JSONL artifact of a sweep is
//! byte-identical no matter how many threads produced it — the property the
//! determinism test pins.  Timings live in the CSV artifact.

use crate::json;
use crate::sweep::{SweepRecord, SweepResult, TaskStatus};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Renders the deterministic JSONL line for one record (no trailing newline).
pub fn jsonl_line(record: &SweepRecord) -> String {
    format!(
        concat!(
            "{{\"task\":{},\"family\":{},\"scenario\":{},\"order\":{},\"ports\":{},",
            "\"seed\":{},\"margin\":{},\"method\":{},\"status\":{},\"passive\":{},",
            "\"strict\":{},\"reason\":{},\"expected_passive\":{},\"agrees\":{},",
            "\"violation_count\":{},\"witness_frequency\":{},",
            "\"reduced_order\":{},\"residual\":{}}}"
        ),
        record.task_id,
        json::quote(record.family),
        json::quote(&record.scenario),
        record.order,
        record.ports,
        record.seed,
        json::number(record.margin),
        json::quote(record.method),
        json::quote(record.status.name()),
        json::opt_bool(record.passive),
        record.strict,
        json::quote(&record.reason),
        json::opt_bool(record.expected_passive),
        json::opt_bool(record.agrees),
        json::opt_usize(record.violation_count),
        json::opt_number(record.witness_frequency),
        json::opt_usize(record.reduced_order),
        json::opt_number(record.residual),
    )
}

/// Renders the *segment* JSONL line for one record: the canonical line plus
/// the volatile `reduction_ns` timing.  Store segments persist the reduction
/// wall time; the canonical merged/sweep artifacts stay byte-deterministic by
/// excluding it (the parser accepts both forms).
pub fn segment_jsonl_line(record: &SweepRecord) -> String {
    let line = jsonl_line(record);
    match record.reduction_ns {
        None => line,
        Some(ns) => format!(
            "{},\"reduction_ns\":{ns}}}",
            line.strip_suffix('}').expect("jsonl_line ends with '}'")
        ),
    }
}

/// Renders the full segment JSONL text (one [`segment_jsonl_line`] per
/// record).
pub fn render_segment_jsonl(records: &[SweepRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&segment_jsonl_line(record));
        out.push('\n');
    }
    out
}

/// Renders the full sorted JSONL artifact (one line per record).
pub fn render_jsonl(records: &[SweepRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&jsonl_line(record));
        out.push('\n');
    }
    out
}

/// The CSV artifact header.
pub const CSV_HEADER: &str = "task,family,scenario,order,ports,seed,margin,method,status,passive,\
strict,reason,expected_passive,agrees,violation_count,witness_frequency,reduced_order,residual,\
reduction_ns,elapsed_seconds,worker";

fn csv_quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn opt_bool_csv(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "true",
        Some(false) => "false",
        None => "",
    }
}

/// Renders one CSV row (timing and worker columns included).
pub fn csv_line(record: &SweepRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{}",
        record.task_id,
        csv_quote(record.family),
        csv_quote(&record.scenario),
        record.order,
        record.ports,
        record.seed,
        record.margin,
        csv_quote(record.method),
        record.status.name(),
        opt_bool_csv(record.passive),
        record.strict,
        csv_quote(&record.reason),
        opt_bool_csv(record.expected_passive),
        opt_bool_csv(record.agrees),
        record
            .violation_count
            .map_or(String::new(), |v| v.to_string()),
        record
            .witness_frequency
            .map_or(String::new(), |v| v.to_string()),
        record
            .reduced_order
            .map_or(String::new(), |v| v.to_string()),
        record.residual.map_or(String::new(), |v| v.to_string()),
        record.reduction_ns.map_or(String::new(), |v| v.to_string()),
        record.elapsed.as_secs_f64(),
        record.worker,
    )
}

/// Renders the full CSV artifact.
pub fn render_csv(records: &[SweepRecord]) -> String {
    let mut out = String::with_capacity(64 * (records.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for record in records {
        out.push_str(&csv_line(record));
        out.push('\n');
    }
    out
}

/// Keys every JSONL record line must carry.
const JSONL_REQUIRED_KEYS: &[&str] = &[
    "task",
    "family",
    "scenario",
    "order",
    "ports",
    "seed",
    "margin",
    "method",
    "status",
    "passive",
    "strict",
    "reason",
    "expected_passive",
    "agrees",
    "violation_count",
    "reduced_order",
    "residual",
];

/// Validates a JSONL artifact: every line must parse as a JSON object with
/// the full record schema.  Returns the number of records.
///
/// # Errors
///
/// Describes the first offending line.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        for key in JSONL_REQUIRED_KEYS {
            if value.get(key).is_none() {
                return Err(format!("line {}: missing key '{key}'", lineno + 1));
            }
        }
        count += 1;
    }
    Ok(count)
}

/// Validates a CSV artifact: header must match and every row must have the
/// same number of fields as the header.  Quoted fields may legally contain
/// commas, escaped quotes and newlines (error texts can be multi-line), so
/// rows are split quote-aware rather than per physical line.  `\r\n` line
/// endings are tolerated outside quotes.  Returns the number of data rows.
///
/// # Errors
///
/// Describes the first offending row by the physical line it starts on.
pub fn validate_csv(text: &str) -> Result<usize, String> {
    let mut rows = split_csv_rows(text)?.into_iter();
    let header = rows.next().ok_or_else(|| "empty CSV".to_string())?;
    if header.raw != CSV_HEADER {
        return Err(format!("unexpected CSV header: {}", header.raw));
    }
    let expected_fields = CSV_HEADER.split(',').count();
    let mut count = 0usize;
    for row in rows {
        if row.raw.trim().is_empty() {
            continue;
        }
        if row.fields.len() != expected_fields {
            return Err(format!(
                "row at line {}: {} fields, expected {expected_fields}",
                row.line,
                row.fields.len()
            ));
        }
        count += 1;
    }
    Ok(count)
}

struct CsvRow {
    raw: String,
    fields: Vec<String>,
    /// 1-based physical line on which the row starts (quoted fields may span
    /// several physical lines, so this is not simply the row's index).
    line: usize,
}

/// Splits a CSV document into logical rows, honouring quoted fields (which
/// may contain commas, doubled quotes and embedded newlines).  A `\r\n`
/// sequence outside quotes terminates a row just like a bare `\n`; inside
/// quotes `\r` is preserved as field content.
fn split_csv_rows(text: &str) -> Result<Vec<CsvRow>, String> {
    let mut rows = Vec::new();
    let mut raw = String::new();
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut row_start_line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(ch) = chars.next() {
        if ch == '\r' && !in_quotes && chars.peek() == Some(&'\n') {
            // CRLF row terminator: drop the `\r`, let the `\n` end the row.
            continue;
        }
        if ch == '\n' {
            line += 1;
        }
        if ch != '\n' || in_quotes {
            raw.push(ch);
        }
        match ch {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                current.push('"');
                raw.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut current)),
            '\n' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
                rows.push(CsvRow {
                    raw: std::mem::take(&mut raw),
                    fields: std::mem::take(&mut fields),
                    line: row_start_line,
                });
                row_start_line = line;
            }
            c => current.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".to_string());
    }
    if !raw.is_empty() || !current.is_empty() || !fields.is_empty() {
        fields.push(current);
        rows.push(CsvRow {
            raw,
            fields,
            line: row_start_line,
        });
    }
    Ok(rows)
}

/// Aggregate of one (family, method) cell of the sweep.
#[derive(Debug, Clone, Default)]
pub struct FamilyMethodSummary {
    /// Number of tasks in the cell.
    pub tasks: usize,
    /// Passive verdicts.
    pub passive: usize,
    /// Non-passive verdicts.
    pub not_passive: usize,
    /// Build or method errors.
    pub errors: usize,
    /// Verdicts disagreeing with the construction ground truth.
    pub mismatches: usize,
    /// Sum of method wall-clock times.
    pub total_time: Duration,
    /// Slowest single run.
    pub max_time: Duration,
}

/// Per-family/method aggregation plus whole-sweep totals.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// `(family, method) → aggregate`, sorted by key.
    pub cells: BTreeMap<(String, String), FamilyMethodSummary>,
    /// Total number of tasks.
    pub total_tasks: usize,
    /// Total number of errored tasks.
    pub total_errors: usize,
    /// Total number of ground-truth mismatches.
    pub total_mismatches: usize,
    /// Sum of per-task method times (the "serial work" estimate).
    pub total_cpu: Duration,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
    /// Workers used.
    pub threads: usize,
}

impl SweepSummary {
    /// Aggregates a sweep result.
    pub fn from_result(result: &SweepResult) -> Self {
        let mut cells: BTreeMap<(String, String), FamilyMethodSummary> = BTreeMap::new();
        let mut total_errors = 0usize;
        let mut total_mismatches = 0usize;
        let mut total_cpu = Duration::ZERO;
        for record in &result.records {
            let cell = cells
                .entry((record.family.to_string(), record.method.to_string()))
                .or_default();
            cell.tasks += 1;
            match record.status {
                TaskStatus::Ok => match record.passive {
                    Some(true) => cell.passive += 1,
                    Some(false) => cell.not_passive += 1,
                    None => {}
                },
                _ => {
                    cell.errors += 1;
                    total_errors += 1;
                }
            }
            if record.agrees == Some(false) {
                cell.mismatches += 1;
                total_mismatches += 1;
            }
            cell.total_time += record.elapsed;
            cell.max_time = cell.max_time.max(record.elapsed);
            total_cpu += record.elapsed;
        }
        SweepSummary {
            cells,
            total_tasks: result.records.len(),
            total_errors,
            total_mismatches,
            total_cpu,
            wall: result.wall,
            threads: result.threads,
        }
    }

    /// Renders the human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>6} {:>8} {:>12} {:>7} {:>9} {:>11} {:>11}",
            "family",
            "method",
            "tasks",
            "passive",
            "not_passive",
            "errors",
            "mismatch",
            "total_s",
            "max_s"
        );
        for ((family, method), cell) in &self.cells {
            let _ = writeln!(
                out,
                "{:<28} {:>12} {:>6} {:>8} {:>12} {:>7} {:>9} {:>11.4} {:>11.4}",
                family,
                method,
                cell.tasks,
                cell.passive,
                cell.not_passive,
                cell.errors,
                cell.mismatches,
                cell.total_time.as_secs_f64(),
                cell.max_time.as_secs_f64(),
            );
        }
        let _ = writeln!(
            out,
            "# tasks: {} | errors: {} | ground-truth mismatches: {}",
            self.total_tasks, self.total_errors, self.total_mismatches
        );
        let _ = writeln!(
            out,
            "# threads: {} | wall: {:.4}s | serial method time: {:.4}s | pool efficiency: {:.2}x",
            self.threads,
            self.wall.as_secs_f64(),
            self.total_cpu.as_secs_f64(),
            if self.wall.as_secs_f64() > 0.0 {
                self.total_cpu.as_secs_f64() / self.wall.as_secs_f64()
            } else {
                0.0
            },
        );
        out
    }
}

/// Renders the speedup line printed by `ds-sweep --compare-single-thread`:
/// wall-clock of the multi-thread run vs. the single-thread rerun.
pub fn render_speedup(single: &SweepResult, multi: &SweepResult) -> String {
    let t1 = single.wall.as_secs_f64();
    let tn = multi.wall.as_secs_f64().max(1e-12);
    format!(
        "# speedup: {} tasks | threads=1: {:.4}s | threads={}: {:.4}s | speedup: {:.2}x",
        multi.records.len(),
        t1,
        multi.threads,
        tn,
        t1 / tn,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use crate::scenario::{scenario_matrix, FamilyKind, Scenario};
    use crate::sweep::{run_sweep, SweepSpec};
    use std::time::Duration;

    fn small_result() -> SweepResult {
        let scenarios = vec![
            Scenario::new(FamilyKind::RcLadder, 3),
            Scenario::new(FamilyKind::NonpassiveLadder, 6),
            Scenario::new(FamilyKind::PerturbedBoundary, 4).with_margin(0.5),
        ];
        run_sweep(&SweepSpec::new(
            scenario_matrix(&scenarios, &[Method::Proposed, Method::Weierstrass]),
            2,
        ))
    }

    #[test]
    fn jsonl_roundtrips_through_the_parser() {
        let result = small_result();
        let text = render_jsonl(&result.records);
        assert_eq!(validate_jsonl(&text).unwrap(), result.records.len());
        // Spot-check one parsed line.
        let first = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("task").unwrap().as_f64(), Some(0.0));
        assert_eq!(first.get("family").unwrap().as_str(), Some("rc_ladder"));
    }

    #[test]
    fn jsonl_contains_no_timing_fields() {
        let result = small_result();
        // The volatile fields must actually be populated before we assert
        // they are excluded — otherwise this test would pass vacuously.
        assert!(
            result
                .records
                .iter()
                .any(|r| r.stage_ns.is_some() && r.elapsed > Duration::ZERO),
            "sweep produced no volatile timings to exclude"
        );
        let text = render_jsonl(&result.records);
        assert!(!text.contains("elapsed"));
        assert!(!text.contains("worker"));
        assert!(!text.contains("stage_ns"));
    }

    #[test]
    fn jsonl_is_identical_with_and_without_volatile_timings() {
        let result = small_result();
        for record in &result.records {
            let mut stripped = record.clone();
            stripped.stage_ns = None;
            stripped.elapsed = Duration::ZERO;
            stripped.worker = 0;
            assert_eq!(jsonl_line(record), jsonl_line(&stripped));
        }
    }

    #[test]
    fn csv_roundtrips_and_counts() {
        let result = small_result();
        let text = render_csv(&result.records);
        assert_eq!(validate_csv(&text).unwrap(), result.records.len());
    }

    #[test]
    fn csv_quoting_survives_commas_and_newlines() {
        let rows = split_csv_rows("a,\"b,c\",\"d\"\"e\",f\n").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].fields, vec!["a", "b,c", "d\"e", "f"]);
        // A quoted field with an embedded newline stays one logical row.
        let rows = split_csv_rows("a,\"line1\nline2\",c\nd,e,f\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].fields[1], "line1\nline2");
        assert!(split_csv_rows("a,\"unterminated\n").is_err());
    }

    #[test]
    fn validate_csv_accepts_multiline_error_reasons() {
        let mut result = small_result();
        result.records[0].reason = "first line\nsecond, quoted \"line\"".to_string();
        let text = render_csv(&result.records);
        assert_eq!(validate_csv(&text).unwrap(), result.records.len());
    }

    #[test]
    fn validators_reject_corruption() {
        assert!(validate_jsonl("{\"task\":0}").is_err());
        assert!(validate_jsonl("not json").is_err());
        assert!(validate_csv("wrong,header\n1,2").is_err());
        let bad_row = format!("{CSV_HEADER}\n1,2,3");
        assert!(validate_csv(&bad_row).is_err());
    }

    #[test]
    fn csv_errors_report_physical_lines() {
        // A blank line and a multi-line quoted field both precede the bad
        // row; the reported line must be the row's physical position, not a
        // drifted logical count.
        let good = csv_line(&small_result().records[0]);
        let multiline = good.replacen("rc_ladder", "\"rc\nladder\"", 1);
        let doc = format!("{CSV_HEADER}\n\n{multiline}\nbad,row\n");
        let err = validate_csv(&doc).unwrap_err();
        // Header = line 1, blank = line 2, multi-line row = lines 3-4, so the
        // offending row starts on physical line 5.
        assert!(err.contains("line 5"), "got: {err}");
    }

    #[test]
    fn csv_tolerates_crlf_line_endings() {
        let result = small_result();
        let text = render_csv(&result.records).replace('\n', "\r\n");
        assert_eq!(validate_csv(&text).unwrap(), result.records.len());
        // `\r` inside a quoted field is content, not a terminator.
        let rows = split_csv_rows("a,\"x\r\ny\",b\r\n").unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].fields[1], "x\r\ny");
    }

    #[test]
    fn summary_counts_verdicts_and_mismatches() {
        let result = small_result();
        let summary = SweepSummary::from_result(&result);
        assert_eq!(summary.total_tasks, result.records.len());
        assert_eq!(summary.total_errors, 0);
        assert_eq!(summary.total_mismatches, 0);
        let rendered = summary.render();
        assert!(rendered.contains("rc_ladder"));
        assert!(rendered.contains("perturbed_boundary"));
        assert!(rendered.contains("threads"));
    }

    #[test]
    fn speedup_line_formats() {
        let result = small_result();
        let line = render_speedup(&result, &result);
        assert!(line.contains("speedup"));
        assert!(line.contains("threads=1"));
    }
}
